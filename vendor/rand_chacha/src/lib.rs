//! Offline vendored ChaCha8 random number generator.
//!
//! A from-scratch implementation of the ChaCha stream cipher with 8 rounds,
//! exposed through the vendored `rand` traits. Deterministic given a seed;
//! the stream is a faithful ChaCha8 keystream (IETF variant with a 64-bit
//! block counter and zero nonce), though seeding differs from upstream
//! `rand_chacha` only in that both use the seed as the 256-bit key.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 256-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    buf: [u8; 64],
    /// Next unread byte in `buf` (64 = exhausted).
    idx: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            SIGMA[0],
            SIGMA[1],
            SIGMA[2],
            SIGMA[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // One double round: four column rounds + four diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (i, (s, init)) in state.iter().zip(initial.iter()).enumerate() {
            self.buf[i * 4..i * 4 + 4].copy_from_slice(&s.wrapping_add(*init).to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn take(&mut self, n: usize) -> &[u8] {
        debug_assert!(n <= 64);
        if self.idx + n > 64 {
            self.refill();
        }
        let out = &self.buf[self.idx..self.idx + n];
        self.idx += n;
        out
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 64],
            idx: 64,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn next_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(64) {
            let n = chunk.len();
            chunk.copy_from_slice(self.take(n));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn matches_chacha8_test_vector() {
        // ChaCha8 keystream block 0 for the all-zero key and nonce
        // (first 16 bytes), cross-checked against published vectors.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let mut out = [0u8; 16];
        rng.fill_bytes(&mut out);
        assert_eq!(
            out,
            [
                0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
                0xa5, 0xa1
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unaligned_reads_are_consistent() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        // Mix read sizes so the buffer boundary is crossed mid-word.
        let mut total = 0u64;
        for i in 0..200 {
            total = total.wrapping_add(if i % 3 == 0 {
                a.next_u32() as u64
            } else {
                a.next_u64()
            });
        }
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut total_b = 0u64;
        for i in 0..200 {
            total_b = total_b.wrapping_add(if i % 3 == 0 {
                b.next_u32() as u64
            } else {
                b.next_u64()
            });
        }
        assert_eq!(total, total_b);
    }

    #[test]
    fn drives_range_sampling() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 6];
        for _ in 0..6000 {
            counts[rng.random_range(0..6usize)] += 1;
        }
        // Roughly uniform: each bucket within 3x of fair share.
        for &c in &counts {
            assert!(c > 300 && c < 3000, "skewed bucket counts {counts:?}");
        }
    }
}
