//! Offline vendored stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the criterion API shape
//! this workspace's bench targets use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`Throughput`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! When the binary is invoked with `--bench` (what `cargo bench` passes),
//! each benchmark is calibrated and timed over several samples and a
//! mean/min/max summary is printed. Under `cargo test` (no `--bench` flag)
//! each benchmark body runs once so the target stays fast.

use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each benchmark (across all samples).
const TARGET_MEASURE: Duration = Duration::from_millis(600);

/// Work-size hint used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Drives one benchmark body.
pub struct Bencher<'a> {
    /// Iterations to run per sample (1 in test mode).
    iters: u64,
    /// Accumulated elapsed time for this sample.
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Times `body` over this sample's iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(body());
        }
        *self.elapsed += start.elapsed();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    bench_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let bench_mode = args.iter().any(|a| a == "--bench");
        // First free (non-flag) argument filters benchmark names, like
        // criterion's substring filter.
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
        Criterion { bench_mode, filter }
    }
}

impl Criterion {
    fn should_run(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one benchmark with default settings.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, 10, None, f);
        self
    }

    /// Starts a named group whose settings apply to its benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }

    fn run<F>(&mut self, name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.should_run(name) {
            return;
        }
        if !self.bench_mode {
            // Test mode: execute once to check the benchmark still works.
            let mut elapsed = Duration::ZERO;
            f(&mut Bencher {
                iters: 1,
                elapsed: &mut elapsed,
            });
            println!("test-mode bench {name}: ok ({elapsed:?})");
            return;
        }
        // Calibrate: time one iteration, then pick a per-sample iteration
        // count aiming at TARGET_MEASURE across all samples.
        let mut elapsed = Duration::ZERO;
        f(&mut Bencher {
            iters: 1,
            elapsed: &mut elapsed,
        });
        let per_iter = elapsed.max(Duration::from_nanos(20));
        let budget = TARGET_MEASURE.as_nanos() / sample_size.max(1) as u128;
        let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut elapsed = Duration::ZERO;
            f(&mut Bencher {
                iters,
                elapsed: &mut elapsed,
            });
            samples.push(elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let (min, max) = (samples[0], samples[samples.len() - 1]);
        let thru = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.0} elem/s", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.0} B/s", n as f64 / mean)
            }
            None => String::new(),
        };
        println!(
            "bench {name}: mean {} (min {}, max {}, {} samples x {iters} iters){thru}",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            samples.len(),
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    prefix: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.prefix);
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        self.criterion.run(&full, sample_size, throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut c = Criterion {
            bench_mode: false,
            filter: None,
        };
        let mut runs = 0;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn groups_apply_settings() {
        let mut c = Criterion {
            bench_mode: true,
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        group.bench_function("fast", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            bench_mode: false,
            filter: Some("needle".into()),
        };
        let mut runs = 0;
        c.bench_function("haystack", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
        c.bench_function("a_needle_bench", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
