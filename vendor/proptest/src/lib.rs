//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, `name in strategy`
//! bindings, [`prop_assert!`]/[`prop_assert_eq!`], and strategies built from
//! numeric ranges, tuples of strategies, and [`collection::vec`].
//!
//! Cases are generated from a ChaCha8 stream seeded by the test's module
//! path and name, so runs are fully deterministic. Unlike upstream there is
//! no shrinking: on failure the offending inputs are printed as generated.

use rand_chacha::ChaCha8Rng;

pub use rand::SeedableRng;

/// A failed property check (returned early by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic per-test RNG: seeded by hashing the test's identity.
pub fn test_rng(test_name: &str) -> ChaCha8Rng {
    // FNV-1a over the test path.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    ChaCha8Rng::seed_from_u64(h)
}

pub mod strategy {
    use rand::RngExt;
    use rand_chacha::ChaCha8Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test inputs.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// A strategy that always yields the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut ChaCha8Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// `collection::vec`'s strategy: `len` elements of `elem`.
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for `Vec`s with length drawn from `len` and elements
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = [
                    $(format!("{} = {:?}", stringify!($arg), &$arg)),+
                ].join(", ");
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {case}/{}:\n  {e}\n  inputs: {inputs}",
                        stringify!($name),
                        cfg.cases,
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Fails the current property case if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current property case if the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}\n  {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 3u32..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vecs_have_requested_lengths(
            v in collection::vec(0u16..8, 1..60),
            pair in (0u32..30, 0u32..30),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 60);
            prop_assert!(v.iter().all(|&x| x < 8));
            prop_assert!(pair.0 < 30 && pair.1 < 30);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_header_is_accepted(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x::y");
        let mut b = crate::test_rng("x::y");
        use rand::RngExt;
        for _ in 0..10 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }
}
