//! Offline vendored stand-in for `serde`.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal, API-compatible subset of the serde
//! facade it actually uses:
//!
//! - `#[derive(Serialize, Deserialize)]` on structs, tuple structs and
//!   enums (unit, tuple and struct variants), including the
//!   `#[serde(with = "module")]` and `#[serde(skip)]` field attributes;
//! - the `Serialize` / `Deserialize` / `Serializer` / `Deserializer`
//!   traits as used by hand-written `with`-modules;
//! - impls for the std types the workspace serializes.
//!
//! Unlike upstream serde's visitor architecture, this implementation
//! round-trips through an owned [`Value`] tree. That is slower and less
//! general, but it is simple, dependency-free, and exactly sufficient for
//! the JSON (de)serialization this repository performs. The sibling
//! `serde_json` vendored crate renders and parses [`Value`] as JSON text.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;

/// A serialized value tree — the common interchange format between the
/// `Serialize`/`Deserialize` traits and the JSON front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key/value pairs in insertion order (callers that need canonical
    /// output sort before serializing, as the workspace's `with`-modules
    /// do).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` if this is a map containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "map",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Seq(s) => s.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    pub fn mismatch(expected: &str, got: &Value) -> Self {
        DeError(format!("expected {expected}, got {}", got.type_name()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Error trait for deserializer error types (a narrow slice of
/// `serde::de::Error`).
pub trait Error: Sized + std::fmt::Display {
    fn custom(msg: impl std::fmt::Display) -> Self;
}

impl Error for DeError {
    fn custom(msg: impl std::fmt::Display) -> Self {
        DeError::custom(msg)
    }
}

/// An error that cannot occur (serialization into a value tree is total).
#[derive(Debug)]
pub enum Impossible {}

impl std::fmt::Display for Impossible {
    fn fmt(&self, _: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {}
    }
}

impl std::error::Error for Impossible {}

/// A type that can render itself into a [`Value`].
pub trait Serialize {
    /// The value tree of `self` (total; this facade's serializers cannot
    /// fail).
    fn to_value(&self) -> Value;

    /// serde-compatible entry point: hands the value tree to `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink for a serialized [`Value`] (a narrow slice of
/// `serde::Serializer`).
pub trait Serializer: Sized {
    type Ok;
    type Error;
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
}

/// The serializer that `#[serde(with = "...")]` ser-functions receive:
/// it simply yields the value tree.
pub struct ValueSer;

impl Serializer for ValueSer {
    type Ok = Value;
    type Error = Impossible;
    fn serialize_value(self, v: Value) -> Result<Value, Impossible> {
        Ok(v)
    }
}

/// A type constructible from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// serde-compatible entry point: pulls the value tree out of `d`.
    fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        Self::from_value(&v).map_err(D::Error::custom)
    }
}

/// A source of one [`Value`] (a narrow slice of `serde::Deserializer`).
pub trait Deserializer<'de>: Sized {
    type Error: Error;
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// The deserializer that `#[serde(with = "...")]` de-functions receive.
pub struct ValueDe<'de>(pub &'de Value);

impl<'de> Deserializer<'de> for ValueDe<'de> {
    type Error = DeError;
    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0.clone())
    }
}

/// Derive-support helper: the value of field `key` in map `v`.
pub fn map_field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, DeError> {
    match v {
        Value::Map(_) => v
            .get(key)
            .ok_or_else(|| DeError(format!("missing field `{key}`"))),
        other => Err(DeError::mismatch("map", other)),
    }
}

/// Derive-support helper: like [`map_field`] but tolerating absence
/// (for `#[serde(default)]`-style semantics).
pub fn map_field_opt<'a>(v: &'a Value, key: &str) -> Result<Option<&'a Value>, DeError> {
    match v {
        Value::Map(_) => Ok(v.get(key)),
        other => Err(DeError::mismatch("map", other)),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::mismatch("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 { Value::Int(*self as i64) } else { Value::UInt(*self as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::mismatch("integer", v))?;
                <$t>::try_from(i).map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::mismatch("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::mismatch("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::mismatch("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::mismatch("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items).map_err(|_| DeError(format!("expected {N} elements, got {n}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$($idx,)+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected {expected}-tuple, got {} elements", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::mismatch("array", other)),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    /// Maps serialize as sequences of `[key, value]` pairs (the workspace
    /// convention: JSON object keys must be strings, most keys here are
    /// not). Iteration order is unspecified; callers needing canonical
    /// output sort explicitly via `with`-modules.
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<(K, V)>::from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Convenience: any serializable value's tree (used by `serde_json::json!`).
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
    t.to_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_impl_round_trips() {
        let v: Vec<(u16, usize)> = vec![(3, 1), (9, 2)];
        let tree = v.to_value();
        assert_eq!(Vec::<(u16, usize)>::from_value(&tree).unwrap(), v);
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(5u32).to_value(), Value::UInt(5));
    }

    #[test]
    fn index_by_key_and_position() {
        let v = Value::Map(vec![(
            "xs".into(),
            Value::Seq(vec![Value::UInt(1), Value::UInt(2)]),
        )]);
        assert_eq!(v["xs"][1], Value::UInt(2));
        assert_eq!(v["missing"], Value::Null);
    }
}
