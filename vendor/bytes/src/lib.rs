//! Offline vendored stand-in for `bytes`.
//!
//! [`Bytes`] and [`BytesMut`] backed by plain owned buffers. The real crate
//! provides zero-copy reference counting; this workspace only needs a byte
//! buffer it can build incrementally and freeze, so `Vec<u8>` semantics are
//! sufficient.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Box<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Box::default())
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(bytes.into())
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes(bytes.into())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v.into_boxed_slice())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.into())
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0.into_boxed_slice())
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write access to a growable buffer (a narrow slice of `bytes::BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(b"hello ");
        buf.put_slice(b"world");
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], b"hello world");
        assert_eq!(frozen.len(), 11);
        assert!(!frozen.is_empty());
        assert_eq!(std::str::from_utf8(&frozen).unwrap(), "hello world");
    }

    #[test]
    fn equality_between_buffers() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_ne!(a, Bytes::copy_from_slice(b"abd"));
    }
}
