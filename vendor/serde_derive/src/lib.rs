//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Generates impls of the vendored value-tree `serde` traits
//! (`Serialize::to_value` / `Deserialize::from_value`) by hand-parsing the
//! item's token stream — no `syn`/`quote`, so the macro builds with only the
//! standard proc-macro runtime.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields (`#[serde(with = "mod")]`, `#[serde(skip)]`,
//!   `#[serde(default)]` honoured per field)
//! - tuple structs: one field is transparent (newtype), N fields become a seq
//! - unit structs
//! - enums with unit, tuple and struct variants (externally tagged, matching
//!   upstream serde's JSON representation)
//!
//! Generics are not supported; no derived type in this workspace is generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct SerdeOpts {
    with: Option<String>,
    skip: bool,
    default: bool,
}

struct NamedField {
    name: String,
    opts: SerdeOpts,
}

enum Shape {
    Named(Vec<NamedField>),
    /// Tuple fields carry only per-field opts (names are positional).
    Tuple(Vec<SerdeOpts>),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Outer attributes (docs, other derives' leftovers) and visibility.
    skip_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);

    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;

    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }

    match kw.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde_derive: unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body for `{name}`, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: expected `struct` or `enum`, got `{other}`"),
    }
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        match toks.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("serde_derive: malformed attribute, got {other:?}"),
        }
    }
}

/// Consumes attributes, folding any `#[serde(...)]` contents into opts.
fn parse_field_attrs(toks: &[TokenTree], i: &mut usize) -> SerdeOpts {
    let mut opts = SerdeOpts::default();
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        let group = match toks.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde_derive: malformed attribute, got {other:?}"),
        };
        *i += 1;
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if is_serde {
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                other => panic!("serde_derive: malformed #[serde(...)], got {other:?}"),
            };
            parse_serde_args(args, &mut opts);
        }
    }
    opts
}

fn parse_serde_args(args: TokenStream, opts: &mut SerdeOpts) {
    let toks: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let key = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: unexpected token in #[serde(...)]: {other:?}"),
        };
        i += 1;
        let has_value = matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=');
        let value = if has_value {
            i += 1;
            match toks.get(i) {
                Some(TokenTree::Literal(lit)) => {
                    i += 1;
                    let s = lit.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                other => panic!("serde_derive: expected literal after `{key} =`, got {other:?}"),
            }
        } else {
            None
        };
        match key.as_str() {
            "with" => opts.with = Some(value.expect("serde_derive: `with` needs a value")),
            "skip" => opts.skip = true,
            "default" => opts.default = true,
            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1; // pub(crate) / pub(super)
        }
    }
}

/// Skips a type (or any expression) up to a top-level `,`, tracking `<...>`
/// nesting so commas inside generic arguments don't split fields.
fn skip_to_field_sep(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = toks.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<NamedField> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let opts = parse_field_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_to_field_sep(&toks, &mut i);
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(NamedField { name, opts });
    }
    fields
}

fn parse_tuple_fields(body: TokenStream) -> Vec<SerdeOpts> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let opts = parse_field_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        skip_to_field_sep(&toks, &mut i);
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(opts);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Optional explicit discriminant: `= <expr>` up to the next comma.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_to_field_sep(&toks, &mut i);
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn ser_field_expr(access: &str, opts: &SerdeOpts) -> String {
    match &opts.with {
        Some(path) => format!(
            "match {path}::serialize(&{access}, ::serde::ValueSer) {{ \
               Ok(v) => v, Err(e) => match e {{}} }}"
        ),
        None => format!("::serde::Serialize::to_value(&{access})"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let mut pushes = String::new();
                    for f in fields {
                        if f.opts.skip {
                            continue;
                        }
                        let expr = ser_field_expr(&format!("self.{}", f.name), &f.opts);
                        pushes.push_str(&format!(
                            "entries.push((\"{}\".to_string(), {expr}));\n",
                            f.name
                        ));
                    }
                    format!(
                        "let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(entries)"
                    )
                }
                Shape::Tuple(fields) if fields.len() == 1 => {
                    // Newtype struct: transparent, like upstream serde.
                    ser_field_expr("self.0", &fields[0])
                }
                Shape::Tuple(fields) => {
                    let items: Vec<String> = fields
                        .iter()
                        .enumerate()
                        .map(|(idx, opts)| ser_field_expr(&format!("self.{idx}"), opts))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    Shape::Tuple(fields) => {
                        let binders: Vec<String> =
                            (0..fields.len()).map(|i| format!("f{i}")).collect();
                        let payload = if fields.len() == 1 {
                            ser_field_expr("*f0", &fields[0])
                        } else {
                            let items: Vec<String> = fields
                                .iter()
                                .enumerate()
                                .map(|(i, o)| ser_field_expr(&format!("*f{i}"), o))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binders}) => ::serde::Value::Map(vec![\
                               (\"{vname}\".to_string(), {payload})]),\n",
                            binders = binders.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            if f.opts.skip {
                                continue;
                            }
                            let expr = ser_field_expr(&format!("*{}", f.name), &f.opts);
                            pushes.push_str(&format!(
                                "entries.push((\"{}\".to_string(), {expr}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binders} }} => {{\n\
                               let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                               {pushes}\
                               ::serde::Value::Map(vec![(\"{vname}\".to_string(), \
                                   ::serde::Value::Map(entries))])\n\
                             }}\n",
                            binders = binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Expression deserializing one value reference (`&::serde::Value`) into a
/// field, honouring `with`.
fn de_value_expr(value_ref: &str, opts: &SerdeOpts) -> String {
    match &opts.with {
        Some(path) => format!("{path}::deserialize(::serde::ValueDe({value_ref}))?"),
        None => format!("::serde::Deserialize::from_value({value_ref})?"),
    }
}

/// Expression deserializing a named field out of the map value `v`.
fn de_named_field_expr(field: &NamedField) -> String {
    if field.opts.skip {
        return "Default::default()".to_string();
    }
    if field.opts.default {
        let inner = de_value_expr("fv", &field.opts);
        return format!(
            "match ::serde::map_field_opt(v, \"{}\")? {{ \
               Some(fv) => {inner}, None => Default::default() }}",
            field.name
        );
    }
    de_value_expr(
        &format!("::serde::map_field(v, \"{}\")?", field.name),
        &field.opts,
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{}: {}", f.name, de_named_field_expr(f)))
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
                Shape::Tuple(fields) if fields.len() == 1 => {
                    format!("Ok({name}({}))", de_value_expr("v", &fields[0]))
                }
                Shape::Tuple(fields) => {
                    let n = fields.len();
                    let items: Vec<String> = fields
                        .iter()
                        .enumerate()
                        .map(|(i, o)| de_value_expr(&format!("&items[{i}]"), o))
                        .collect();
                    format!(
                        "let items = match v {{ \
                           ::serde::Value::Seq(items) => items, \
                           other => return Err(::serde::DeError::mismatch(\"seq\", other)) }};\n\
                         if items.len() != {n} {{ \
                           return Err(::serde::DeError::custom(format!(\
                             \"expected {n} elements for {name}, got {{}}\", items.len()))); }}\n\
                         Ok({name}({items}))",
                        items = items.join(", ")
                    )
                }
                Shape::Unit => format!("let _ = v; Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for va in variants {
                let vname = &va.name;
                match &va.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
                    }
                    Shape::Tuple(fields) if fields.len() == 1 => {
                        let expr = de_value_expr("payload", &fields[0]);
                        payload_arms
                            .push_str(&format!("\"{vname}\" => Ok({name}::{vname}({expr})),\n"));
                    }
                    Shape::Tuple(fields) => {
                        let n = fields.len();
                        let items: Vec<String> = fields
                            .iter()
                            .enumerate()
                            .map(|(i, o)| de_value_expr(&format!("&items[{i}]"), o))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                               let items = match payload {{ \
                                 ::serde::Value::Seq(items) => items, \
                                 other => return Err(::serde::DeError::mismatch(\"seq\", other)) }};\n\
                               if items.len() != {n} {{ \
                                 return Err(::serde::DeError::custom(format!(\
                                   \"expected {n} elements for {name}::{vname}, got {{}}\", \
                                   items.len()))); }}\n\
                               Ok({name}::{vname}({items}))\n\
                             }}\n",
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                // Field lookups run against the payload map.
                                let expr = de_named_field_expr(f).replace("(v, ", "(payload, ");
                                format!("{}: {expr}", f.name)
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(::serde::DeError::custom(format!(\
                                     \"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {payload_arms}\
                                     other => Err(::serde::DeError::custom(format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError::mismatch(\"enum {name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
