//! Offline vendored stand-in for `rand`.
//!
//! Implements the slice of the rand 0.10 API this workspace uses:
//! [`RngCore`], [`SeedableRng`] (with the SplitMix64-based `seed_from_u64`)
//! and [`RngExt::random_range`] over integer and float ranges. Sampling is
//! deterministic given a seed, which is all the workspace's generators and
//! tests rely on; the exact streams differ from upstream rand.

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (like upstream).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience sampling methods on any [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample from `range`. Panics if the range is empty.
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Maps a raw `u64` uniformly onto `[0, len)` with the 128-bit multiply
/// trick (bias < 2^-64 * len, negligible for this workspace's ranges).
#[inline]
fn scale_u64(raw: u64, len: u128) -> u128 {
    (raw as u128 * len) >> 64
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let len = (self.end as u128) - (self.start as u128);
                self.start + scale_u64(rng.next_u64(), len) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let len = (hi as u128) - (lo as u128) + 1;
                if len > u64::MAX as u128 {
                    // Full-width range: every raw value is in range.
                    return rng.next_u64() as $t;
                }
                lo + scale_u64(rng.next_u64(), len) as $t
            }
        }
    )*};
}

sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let len = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + scale_u64(rng.next_u64(), len) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let len = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + scale_u64(rng.next_u64(), len) as i128) as $t
            }
        }
    )*};
}

sample_range_int!(i8, i16, i32, i64, isize);

/// A uniform f64 in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingRng(u64);

    impl RngCore for CountingRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = CountingRng(42);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let v: u16 = rng.random_range(0..=4);
            assert!(v <= 4);
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i64 = rng.random_range(-10..=10);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn full_u64_range_works() {
        let mut rng = CountingRng(7);
        let _: u64 = rng.random_range(0..u64::MAX);
        let _: u64 = rng.random_range(0..=u64::MAX);
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = CountingRng(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
