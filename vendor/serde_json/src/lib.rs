//! Offline vendored stand-in for `serde_json`.
//!
//! Renders and parses the vendored [`serde::Value`] tree as JSON text. The
//! public surface mirrors the subset of upstream `serde_json` this workspace
//! uses: [`Value`], [`json!`], [`to_string`], [`to_string_pretty`] and
//! [`from_str`].

pub use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Builds a [`Value`] from JSON-literal syntax.
///
/// Supports the shapes this workspace writes: object literals with string
/// keys, array literals, `null`, and arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::value_of(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![ $( ($key.to_string(), $crate::value_of(&$val)) ),* ])
    };
    ($other:expr) => { $crate::value_of(&$other) };
}

/// `json!` support: the value tree of any serializable expression.
pub fn value_of<T: serde::Serialize + ?Sized>(t: &T) -> Value {
    t.to_value()
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Compact JSON text for any serializable value.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Pretty-printed (2-space indent) JSON text for any serializable value.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; mirror JavaScript's JSON.stringify.
        out.push_str("null");
    } else if f.fract() == 0.0 && f.abs() < 1e15 {
        // Keep a decimal point so the value parses back as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error(e.0))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error("unterminated string".into()));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad \\u escape {code:#x}")))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let tail = std::str::from_utf8(rest)
                        .map_err(|e| Error(format!("invalid utf-8: {e}")))?;
                    let c = tail.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        self.pos += 4;
        let hex = std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error(format!("bad \\u escape `{hex}`")))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| Error(format!("bad number `{text}`: {e}"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::UInt(u)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| Error(format!("bad number `{text}`: {e}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = json!({
            "name": "auric",
            "counts": [1, 2, 3],
            "nested": json!({"ok": true, "score": 0.93}),
            "nothing": json!(null),
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);

        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_their_type() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::Float(2.0));
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\nd\u{1F600}".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_unicode_escapes() {
        let back: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(back, Value::Str("A\u{1F600}".to_string()));
    }

    #[test]
    fn number_typing() {
        assert_eq!(from_str::<Value>("5").unwrap(), Value::UInt(5));
        assert_eq!(from_str::<Value>("-5").unwrap(), Value::Int(-5));
        assert_eq!(from_str::<Value>("5.5").unwrap(), Value::Float(5.5));
        assert_eq!(from_str::<Value>("1e3").unwrap(), Value::Float(1000.0));
    }
}
