//! Market study: compare the recommenders the way the paper's evaluation
//! does — rule-book baseline, global collaborative filtering, and local
//! (1-hop X2) collaborative filtering, per market — and show where the
//! accuracy comes from (vote bases, mismatch causes).
//!
//! ```text
//! cargo run --release --example market_study
//! ```

use auric_core::mismatch::analyze_mismatches;
use auric_core::{evaluate_cf, CfConfig, CfModel, MismatchLabel, Scope};
use auric_netgen::{generate, NetScale, TuningKnobs};
use auric_rulebook::mine_rulebook;

fn main() {
    let net = generate(&NetScale::small(), &TuningKnobs::default());
    let snapshot = &net.snapshot;

    // The status-quo baseline: a rule-book mined from the network itself
    // (majority value per coarse attribute combination).
    let book = mine_rulebook(snapshot);
    println!("mined rule-book: {} rules", book.len());

    println!(
        "\n{:<12} {:>10} {:>10} {:>10}",
        "market", "rulebook%", "global%", "local%"
    );
    for market in &snapshot.markets {
        let scope = Scope::market(snapshot, market.id);
        let model = CfModel::fit(snapshot, &scope, CfConfig::default());

        // Rule-book accuracy over the market's singular values.
        let mut hit = 0usize;
        let mut total = 0usize;
        for p in snapshot.catalog.singular_ids() {
            let default = snapshot.catalog.def(p).default;
            for &c in &scope.carriers {
                total += 1;
                let predicted = book.lookup(p, &snapshot.carrier(c).attrs, default);
                hit += usize::from(predicted == snapshot.config.value(p, c));
            }
        }
        let rb = hit as f64 / total.max(1) as f64;

        let global = evaluate_cf(snapshot, &scope, &model, false).micro_accuracy();
        let local = evaluate_cf(snapshot, &scope, &model, true).micro_accuracy();
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>10.2}",
            market.name,
            100.0 * rb,
            100.0 * global,
            100.0 * local
        );
    }

    // Where do the local learner's few mismatches come from? The §4.3.3
    // taxonomy over the whole network.
    let whole = Scope::whole(snapshot);
    let model = CfModel::fit(snapshot, &whole, CfConfig::default());
    let mm = analyze_mismatches(snapshot, &whole, &model);
    println!(
        "\nmismatches: {} of {} values ({:.2}%)",
        mm.mismatches,
        mm.evaluated,
        100.0 * mm.mismatch_rate()
    );
    for label in [
        MismatchLabel::GoodRecommendation,
        MismatchLabel::UpdateLearner,
        MismatchLabel::Inconclusive,
    ] {
        println!("  {:<20} {:>6.1}%", label.label(), 100.0 * mm.share(label));
    }

    // And what does the recommender base its answers on?
    let report = evaluate_cf(snapshot, &whole, &model, true);
    let mut bases = [0usize; 5];
    for pa in &report.per_param {
        for (b, n) in bases.iter_mut().zip(pa.by_basis) {
            *b += n;
        }
    }
    let total: usize = bases.iter().sum();
    println!("\nrecommendation bases (local learner):");
    for (name, n) in [
        "local vote",
        "global vote",
        "group majority",
        "global majority",
        "default",
    ]
    .iter()
    .zip(bases)
    {
        println!(
            "  {:<16} {:>6.1}%",
            name,
            100.0 * n as f64 / total.max(1) as f64
        );
    }
}
