//! The §6 extension: performance-feedback-weighted voting, closed-loop.
//!
//! "For the similar carriers with matching attributes and different
//! distribution of parameter values, we can provide higher weights (in our
//! voting approach) to configuration changes that have improved service
//! performance in the past." Here the KPI *simulator* (not an injected
//! flag) produces per-carrier health: we sabotage one eNodeB's handover
//! hysteresis, watch its KPIs degrade, and let the degraded carriers lose
//! their say in neighborhood votes.
//!
//! ```text
//! cargo run --release --example performance_feedback
//! ```

use auric_core::perf::recommend_local_weighted;
use auric_core::{CfConfig, CfModel, Scope};
use auric_kpi::{simulate, TrafficModel};
use auric_model::{CarrierId, Provenance};
use auric_netgen::{generate, NetScale, TuningKnobs};

fn main() {
    let mut net = generate(&NetScale::tiny(), &TuningKnobs::default());
    let snapshot = &mut net.snapshot;

    // Sabotage: zero out hysA3Offset on every pair sourced at one eNodeB
    // (a classic mis-tuning — §2.2's handover margin set razor thin).
    let hys = snapshot.catalog.by_name("hysA3Offset").unwrap();
    let victim_enb = snapshot.enodebs[3].clone();
    for &c in &victim_enb.carriers {
        for q in snapshot.x2.pairs_from(c) {
            snapshot.config.set_pair_value(hys, q, 0, Provenance::Noise);
        }
    }
    println!(
        "sabotaged hysA3Offset = 0 dB on {} ({} carriers)",
        victim_enb.id,
        victim_enb.carriers.len()
    );

    // Post-launch monitoring: run the traffic/handover simulator and
    // derive per-carrier health.
    let snapshot = &net.snapshot;
    let report = simulate(snapshot, &TrafficModel::default()).expect("full catalog");
    println!("network mean health: {:.3}", report.mean_health());
    for &c in &victim_enb.carriers {
        let k = report.kpi(c).expect("carrier is in the report");
        println!(
            "  {c}: health {:.2} (HO attempts {}, ping-pong {}, drops {})",
            k.health(),
            k.ho_attempts,
            k.ho_pingpong,
            k.ho_drops
        );
    }
    let watch_list = report.unhealthy(0.9);
    println!("watch list (health < 0.9): {} carriers", watch_list.len());

    // The degraded carriers now vote with reduced weight (their tuning
    // history is suspect). Compare plain vs KPI-weighted recommendations
    // around the victim.
    let scope = Scope::whole(snapshot);
    let model = CfModel::fit(snapshot, &scope, CfConfig::default());
    let mut flipped = 0usize;
    let mut compared = 0usize;
    for i in 0..snapshot.n_carriers() {
        let c = CarrierId::from_index(i);
        if !snapshot
            .x2
            .neighbors(c)
            .iter()
            .any(|n| victim_enb.carriers.contains(n))
        {
            continue;
        }
        for p in snapshot.catalog.singular_ids() {
            let plain = model.recommend_local_singular(snapshot, p, c, false);
            let weighted = recommend_local_weighted(snapshot, &model, &report, p, c);
            compared += 1;
            flipped += usize::from(plain.value != weighted.value);
        }
    }
    println!("\n{flipped} of {compared} neighbor recommendations changed under KPI weighting");
}
