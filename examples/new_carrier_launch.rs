//! SmartLaunch end to end: run a launch campaign through the full §5
//! pipeline — Auric recommendation, diff against the vendor's initial
//! configuration, vendor-template rendering, EMS push with lock/unlock
//! semantics, and fall-out accounting (Table 5).
//!
//! ```text
//! cargo run --release --example new_carrier_launch
//! ```

use auric_core::{CfConfig, CfModel, Scope};
use auric_ems::{
    sample_campaign, EmsSettings, InstanceDb, LaunchOutcome, SmartLaunch, VendorConfigSource,
    VendorTemplate,
};
use auric_model::{CarrierId, NetworkSnapshot, ParamId, ValueIdx};
use auric_netgen::tuning::singular_key;
use auric_netgen::{generate, LatentRule, NetScale, TuningKnobs};

/// Vendors configure new carriers from the current engineering rules —
/// correct everywhere except where local practice deviates, which is
/// exactly what Auric catches.
struct RuleVendor<'a> {
    snapshot: &'a NetworkSnapshot,
    rules: &'a [LatentRule],
}

impl VendorConfigSource for RuleVendor<'_> {
    fn initial_value(&self, carrier: CarrierId, param: ParamId) -> ValueIdx {
        let rule = &self.rules[param.index()];
        rule.value_for(&singular_key(rule, self.snapshot.carrier(carrier)))
    }
}

fn main() {
    let net = generate(&NetScale::small(), &TuningKnobs::default());
    let snapshot = &net.snapshot;
    let scope = Scope::whole(snapshot);
    let model = CfModel::fit(snapshot, &scope, CfConfig::default());
    let vendor = RuleVendor {
        snapshot,
        rules: &net.truth.rules,
    };

    // A two-month launch campaign: 200 carriers, a 15% chance each that an
    // engineer unlocks the carrier off-band before the pipeline finishes.
    let plans = sample_campaign(snapshot, 200, 0.15, 1);
    let mut pipeline = SmartLaunch::new(
        snapshot,
        &model,
        EmsSettings {
            max_executions_per_push: 15,
        },
    );

    // Walk one launch manually to show the artifacts.
    let first = &plans[0];
    println!("launching {} …", first.carrier);
    let outcome = pipeline.launch(first, &vendor);
    println!("  outcome: {outcome:?}");

    // Show what a rendered vendor config file looks like for a change.
    let db = InstanceDb::build(snapshot);
    let carrier = snapshot.carrier(first.carrier);
    let vendor_kind = snapshot.enodebs[carrier.enodeb.index()].vendor;
    let p = snapshot.catalog.by_name("lbCapacityThreshold").unwrap();
    let file = VendorTemplate {
        vendor: vendor_kind,
    }
    .render(
        snapshot,
        &db,
        first.carrier,
        &[auric_ems::ConfigChange {
            param: p,
            value: 70,
        }],
    );
    println!(
        "  sample {} config payload:\n    {}",
        vendor_kind.label(),
        file.as_text().trim_end()
    );

    // Run the rest of the campaign and print the Table 5 accounting.
    let report = pipeline.run_campaign(&plans[1..], &vendor);
    println!("\ncampaign report (cf. Table 5):");
    println!("  new carriers launched            {}", report.launched + 1);
    println!(
        "  changes recommended by Auric     {} ({:.1}%)",
        report.changes_recommended,
        100.0 * report.recommended_rate()
    );
    println!(
        "  changes implemented successfully {} ({:.1}%)",
        report.changes_implemented,
        100.0 * report.implemented_rate()
    );
    println!(
        "  fall-outs                        {} (off-band {}, EMS timeout {})",
        report.fallouts(),
        report.fallouts_off_band,
        report.fallouts_timeout
    );
    println!(
        "  parameters changed               {}",
        report.parameters_changed
    );
    let _ = matches!(outcome, LaunchOutcome::NoChangesNeeded);
}
