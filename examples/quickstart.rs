//! Quickstart: generate a synthetic LTE network, fit Auric, and
//! recommend a full configuration for a newly added carrier.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use auric_core::{recommend_pairwise, recommend_singular, CfConfig, CfModel, NewCarrier, Scope};
use auric_model::CarrierId;
use auric_netgen::{generate, NetScale, TuningKnobs};

fn main() {
    // 1. An operational network to learn from. In production this would
    //    be the live configuration snapshot; here the generator plays
    //    that role (deterministic in the seed).
    let net = generate(&NetScale::small(), &TuningKnobs::default());
    let snapshot = &net.snapshot;
    println!(
        "network: {} markets, {} eNodeBs, {} carriers, {} X2 pairs, {} parameter values",
        snapshot.markets.len(),
        snapshot.enodebs.len(),
        snapshot.n_carriers(),
        snapshot.x2.n_pairs(),
        snapshot.config.total_values(),
    );

    // 2. Fit the recommender: chi-square dependency selection + vote
    //    tables per parameter (paper defaults: p = 0.01, 75% support,
    //    1-hop locality).
    let scope = Scope::whole(snapshot);
    let model = CfModel::fit(snapshot, &scope, CfConfig::default());

    // 3. A new carrier about to launch: we know its static attributes and
    //    its planned X2 neighbors, nothing else (it carries no traffic
    //    yet). Here we borrow an existing carrier's identity as the
    //    template for the new one.
    let template = CarrierId(42);
    let new_carrier = NewCarrier {
        attrs: snapshot.carrier(template).attrs.clone(),
        neighbors: snapshot.x2.neighbors(template).to_vec(),
    };

    // 4. Recommend all 39 singular parameters…
    let recs = recommend_singular(snapshot, &model, &new_carrier);
    println!("\nsingular recommendations (first 10 of {}):", recs.len());
    for r in recs.iter().take(10) {
        println!(
            "  {:<24} = {:>10}   [{:?}, support {}/{}]",
            r.name, r.concrete, r.basis, r.support, r.voters
        );
    }

    // 5. …and the 26 pair-wise (handover/mobility) parameters toward one
    //    planned neighbor.
    let neighbor = new_carrier.neighbors[0];
    let pair_recs = recommend_pairwise(snapshot, &model, &new_carrier, neighbor);
    println!(
        "\npair-wise recommendations toward {neighbor} (first 5 of {}):",
        pair_recs.len()
    );
    for r in pair_recs.iter().take(5) {
        println!(
            "  {:<24} = {:>10}   [{:?}, support {}/{}]",
            r.name, r.concrete, r.basis, r.support, r.voters
        );
    }

    // 6. Every recommendation explains itself: which attributes the
    //    parameter depends on and which levels were matched.
    let example = &recs[0];
    println!("\nwhy {} = {}:", example.name, example.concrete);
    for (attr, level) in &example.matched_on {
        println!("  matched existing carriers with {attr} = {level}");
    }
}
