//! Explainability: the paper's §5 "lessons learned" stresses that
//! engineers adopted Auric because its recommendations explain
//! themselves. This example shows both explanation styles:
//!
//! - the decision-tree path (Fig. 8) for a classic learner, and
//! - the dependent-attribute/vote evidence of the CF recommender.
//!
//! ```text
//! cargo run --release --example explainability
//! ```

use auric_core::datasets::dataset_for_param;
use auric_core::{recommend_singular, CfConfig, CfModel, NewCarrier, Scope};
use auric_learners::DecisionTree;
use auric_model::CarrierId;
use auric_netgen::{generate, NetScale, TuningKnobs};

fn main() {
    let net = generate(&NetScale::tiny(), &TuningKnobs::default());
    let snapshot = &net.snapshot;
    let scope = Scope::whole(snapshot);

    // --- Decision-tree explanation (Fig. 8 style) ---------------------
    let param = snapshot.catalog.by_name("cellReselectionPriority").unwrap();
    let data = dataset_for_param(snapshot, &scope, param);
    let tree = DecisionTree::paper().fit_tree(&data);
    let probe = CarrierId(5);
    let row = snapshot.carrier(probe).attrs.as_slice();
    let predicted = {
        use auric_learners::Model;
        tree.predict(row)
    };
    println!(
        "decision tree for {} ({} nodes, depth {}):",
        snapshot.catalog.def(param).name,
        tree.n_nodes(),
        tree.depth()
    );
    println!("  explaining carrier {probe}:");
    for step in tree.decision_path(row) {
        let attr = auric_model::AttrId(step.col as u8);
        println!(
            "    {} {}= {}",
            snapshot.schema.def(attr).name,
            if step.matched { "=" } else { "!" },
            snapshot.schema.level_name(attr, step.level),
        );
    }
    let range = snapshot.catalog.def(param).range;
    println!(
        "    → {} = {}",
        snapshot.catalog.def(param).name,
        range.value(predicted)
    );

    // --- Collaborative-filtering explanation ---------------------------
    let model = CfModel::fit(snapshot, &scope, CfConfig::default());
    let new_carrier = NewCarrier {
        attrs: snapshot.carrier(probe).attrs.clone(),
        neighbors: snapshot.x2.neighbors(probe).to_vec(),
    };
    let recs = recommend_singular(snapshot, &model, &new_carrier);
    let rec = recs
        .iter()
        .find(|r| r.param == param)
        .expect("parameter recommended");
    println!("\ncollaborative filtering for the same carrier:");
    println!(
        "  {} = {}  [{:?}, {}/{} voters agreed]",
        rec.name, rec.concrete, rec.basis, rec.support, rec.voters
    );
    if rec.matched_on.is_empty() {
        println!("  (no dependent attributes: the network-wide majority value)");
    } else {
        println!("  because existing carriers matched on:");
        for (attr, level) in &rec.matched_on {
            println!("    {attr} = {level}");
        }
    }

    // The dependent attributes the chi-square tests discovered for a few
    // parameters — the learned "rule-book structure".
    println!("\ndiscovered dependency structure (first 8 parameters):");
    for pc in model.params().iter().take(8) {
        let names: Vec<String> = pc
            .dependent
            .iter()
            .map(|pa| {
                let prefix = match pa.side {
                    auric_core::Side::Src => "",
                    auric_core::Side::Dst => "neighbor.",
                };
                format!("{prefix}{}", snapshot.schema.def(pa.attr).name)
            })
            .collect();
        println!(
            "  {:<24} ← {}",
            snapshot.catalog.def(pc.param).name,
            if names.is_empty() {
                "(none)".to_string()
            } else {
                names.join(", ")
            }
        );
    }
}
