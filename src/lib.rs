//! `auric-repro` — facade crate for the Auric (SIGCOMM 2021) reproduction.
//!
//! Re-exports every workspace member under one roof so the examples and
//! integration tests read naturally. See the README for a tour and
//! DESIGN.md for the system inventory.

pub use auric_core as core;
pub use auric_ems as ems;
pub use auric_eval as eval;
pub use auric_kpi as kpi;
pub use auric_learners as learners;
pub use auric_model as model;
pub use auric_netgen as netgen;
pub use auric_rulebook as rulebook;
pub use auric_serve as serve;
pub use auric_stats as stats;
