//! Chaos suite: the SmartLaunch pipeline under seeded fault injection.
//!
//! Every test drives full campaigns through a [`FaultInjector`] and
//! audits the result with the [`InvariantChecker`]. The properties under
//! test:
//!
//! - a zero-rate fault plan is behaviorally identical to the bare EMS;
//! - across ≥ 100 seeded fault plans no invariant is ever violated and
//!   no injected fault can reach a panic;
//! - the retry/batch-split policy recovers a nonzero fraction of the
//!   fall-outs the paper-faithful pipeline would have taken;
//! - chaos runs are deterministic per seed.

use auric_repro::core::{CfConfig, CfModel, Scope};
use auric_repro::ems::fault::{FaultPlan, FaultRates};
use auric_repro::ems::{
    sample_campaign_with_post_checks, Ems, EmsBackend, EmsSettings, FaultInjector,
    InvariantChecker, LaunchPolicy, RetryPolicy, SmartLaunch, VendorConfigSource,
};
use auric_repro::model::{CarrierId, NetworkSnapshot, ParamId, ValueIdx};
use auric_repro::netgen::{generate, NetScale, TuningKnobs};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

/// Vendor ships catalog defaults — maximal disagreement with Auric, so
/// most launches carry changes and every fault has something to hit.
struct DefaultVendor<'a>(&'a NetworkSnapshot);

impl VendorConfigSource for DefaultVendor<'_> {
    fn initial_value(&self, _carrier: CarrierId, param: ParamId) -> ValueIdx {
        self.0.catalog.def(param).default
    }
}

fn fixture() -> &'static (NetworkSnapshot, CfModel) {
    static FIXTURE: OnceLock<(NetworkSnapshot, CfModel)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let scope = Scope::whole(&net.snapshot);
        let model = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        (net.snapshot, model)
    })
}

#[test]
fn zero_fault_injector_matches_bare_ems_exactly() {
    let (snap, model) = fixture();
    let vendor = DefaultVendor(snap);
    let plans = sample_campaign_with_post_checks(snap, 25, 0.1, 0.1, 3);
    let settings = EmsSettings::default();

    let mut bare = SmartLaunch::new(snap, model, settings);
    let bare_report = bare.run_campaign(&plans, &vendor);

    let injector = FaultInjector::new(Ems::new(settings), FaultPlan::none(99));
    let mut wrapped = SmartLaunch::with_backend(
        snap,
        model,
        injector,
        LaunchPolicy::default(),
        RetryPolicy::none(),
    );
    let wrapped_report = wrapped.run_campaign(&plans, &vendor);

    assert_eq!(bare_report, wrapped_report);
    assert_eq!(bare.trace, wrapped.trace);
    assert_eq!(bare.ems.audit(), wrapped.ems.audit());
    assert_eq!(wrapped.ems.fired().total(), 0);
}

#[test]
fn invariants_hold_across_120_seeded_fault_plans() {
    let (snap, model) = fixture();
    let vendor = DefaultVendor(snap);
    let mut max_total_faults = 0usize;
    for seed in 0..120u64 {
        // Independent random rates per plan, up to aggressive levels.
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let rates = FaultRates {
            transient_push: rng.random_range(0.0..0.5),
            partial_apply: rng.random_range(0.0..0.5),
            drop_inventory: rng.random_range(0.0..0.3),
            spurious_unlock: rng.random_range(0.0..0.3),
            latency_timeout: rng.random_range(0.0..0.5),
        };
        let retry = match seed % 3 {
            0 => RetryPolicy::none(),
            1 => RetryPolicy::retrying(),
            _ => RetryPolicy::resilient(),
        };
        let plans = sample_campaign_with_post_checks(snap, 15, 0.1, 0.15, seed);
        let injector = FaultInjector::new(
            Ems::new(EmsSettings {
                max_executions_per_push: 7,
            }),
            FaultPlan { seed, rates },
        );
        let mut pipeline =
            SmartLaunch::with_backend(snap, model, injector, LaunchPolicy::default(), retry);
        let report = pipeline.run_campaign(&plans, &vendor);
        let violations = InvariantChecker::check(&pipeline.trace, &report, &pipeline.ems);
        assert!(
            violations.is_empty(),
            "seed {seed}: {violations:?} (report {report:?})"
        );
        assert_eq!(report.launched, plans.len());
        max_total_faults = max_total_faults.max(pipeline.ems.fired().total());
    }
    assert!(
        max_total_faults > 10,
        "the sweep must actually inject faults (max fired {max_total_faults})"
    );
}

#[test]
fn retry_policy_recovers_timeout_fallouts() {
    let (snap, model) = fixture();
    let vendor = DefaultVendor(snap);
    let plans = sample_campaign_with_post_checks(snap, 30, 0.0, 0.0, 17);
    // A tight execution limit: the paper-faithful pipeline times out on
    // every launch whose change set exceeds it.
    let settings = EmsSettings {
        max_executions_per_push: 2,
    };

    let mut faithful = SmartLaunch::new(snap, model, settings);
    let base = faithful.run_campaign(&plans, &vendor);
    assert!(
        base.fallouts_timeout > 0,
        "need timeout fall-outs to recover from"
    );

    let injector = FaultInjector::new(Ems::new(settings), FaultPlan::none(17));
    let mut resilient = SmartLaunch::with_backend(
        snap,
        model,
        injector,
        LaunchPolicy::default(),
        RetryPolicy::resilient(),
    );
    let report = resilient.run_campaign(&plans, &vendor);
    assert_eq!(report.fallouts_timeout, 0, "batch splitting absorbs all");
    assert!(
        report.recovered >= base.fallouts_timeout,
        "recovered {} < base timeouts {}",
        report.recovered,
        base.fallouts_timeout
    );
    assert_eq!(report.changes_implemented, report.changes_recommended);
    let violations = InvariantChecker::check(&resilient.trace, &report, &resilient.ems);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn retries_beat_no_retries_under_transient_faults() {
    let (snap, model) = fixture();
    let vendor = DefaultVendor(snap);
    let plans = sample_campaign_with_post_checks(snap, 30, 0.0, 0.0, 23);
    let rates = FaultRates {
        transient_push: 0.4,
        partial_apply: 0.2,
        latency_timeout: 0.2,
        ..FaultRates::none()
    };
    let run = |retry: RetryPolicy| {
        let injector = FaultInjector::new(
            Ems::new(EmsSettings::default()),
            FaultPlan { seed: 23, rates },
        );
        let mut pipeline =
            SmartLaunch::with_backend(snap, model, injector, LaunchPolicy::default(), retry);
        let report = pipeline.run_campaign(&plans, &vendor);
        let violations = InvariantChecker::check(&pipeline.trace, &report, &pipeline.ems);
        assert!(violations.is_empty(), "{violations:?}");
        report
    };
    let without = run(RetryPolicy::none());
    let with = run(RetryPolicy::retrying());
    assert!(
        with.changes_implemented > without.changes_implemented,
        "retries {} ≤ no-retries {}",
        with.changes_implemented,
        without.changes_implemented
    );
    assert!(with.recovered > 0);
    assert!(
        with.fallouts() < without.fallouts(),
        "retries must shrink the fall-out count"
    );
}

#[test]
fn stuck_rollbacks_and_unknown_carriers_are_reported_not_panicked() {
    let (snap, model) = fixture();
    let vendor = DefaultVendor(snap);
    // Every post-check fails and the EMS constantly unlocks carriers
    // mid-flow / loses registrations: the §5 pipeline would panic on the
    // revert push or hit `unreachable!`.
    let mut plans = sample_campaign_with_post_checks(snap, 25, 0.0, 1.0, 31);
    for p in &mut plans {
        p.post_check_failed = true;
    }
    let rates = FaultRates {
        spurious_unlock: 0.6,
        drop_inventory: 0.4,
        ..FaultRates::none()
    };
    let injector = FaultInjector::new(
        Ems::new(EmsSettings::default()),
        FaultPlan { seed: 31, rates },
    );
    let mut pipeline = SmartLaunch::with_backend(
        snap,
        model,
        injector,
        LaunchPolicy::default(),
        RetryPolicy::none(),
    );
    let report = pipeline.run_campaign(&plans, &vendor);
    assert!(
        report.fallouts_unknown_carrier > 0,
        "dropped registrations must surface: {report:?}"
    );
    assert!(
        report.fallouts_stuck_rollback > 0,
        "stuck rollbacks must surface: {report:?}"
    );
    let violations = InvariantChecker::check(&pipeline.trace, &report, &pipeline.ems);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn chaos_campaigns_are_deterministic_per_seed() {
    let (snap, model) = fixture();
    let vendor = DefaultVendor(snap);
    let plans = sample_campaign_with_post_checks(snap, 20, 0.1, 0.1, 41);
    let run = |seed: u64| {
        let injector = FaultInjector::new(
            Ems::new(EmsSettings::default()),
            FaultPlan::uniform(seed, 0.3),
        );
        let mut pipeline = SmartLaunch::with_backend(
            snap,
            model,
            injector,
            LaunchPolicy::default(),
            RetryPolicy::resilient(),
        );
        let report = pipeline.run_campaign(&plans, &vendor);
        (report, pipeline.trace)
    };
    let (report_a, trace_a) = run(5);
    let (report_b, trace_b) = run(5);
    assert_eq!(report_a, report_b);
    assert_eq!(trace_a, trace_b);
    let (report_c, _) = run(6);
    assert_ne!(
        report_a, report_c,
        "different seeds should produce different chaos"
    );
}
