//! Closed-loop integration across netgen → kpi → core: the §6
//! performance-feedback chain. Misconfiguration must be *observable* in
//! the simulated KPIs, and the KPI report must plug into the weighted
//! voter.

use auric_repro::core::perf::{recommend_local_weighted, KpiSource};
use auric_repro::core::{CfConfig, CfModel, Scope};
use auric_repro::kpi::{simulate, TrafficModel};
use auric_repro::model::Provenance;
use auric_repro::netgen::{generate, NetScale, TuningKnobs};

#[test]
fn misconfiguration_is_observable_in_kpis() {
    let base = generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot;
    let healthy = simulate(&base, &TrafficModel::default()).unwrap();

    // Sabotage handover margins network-wide.
    let mut broken = base.clone();
    let hys = broken.catalog.by_name("hysA3Offset").unwrap();
    for q in 0..broken.x2.n_pairs() as u32 {
        broken.config.set_pair_value(hys, q, 0, Provenance::Noise);
    }
    let sick = simulate(&broken, &TrafficModel::default()).unwrap();

    assert!(
        sick.mean_health() < healthy.mean_health() - 0.02,
        "sabotage must show: healthy {} vs sick {}",
        healthy.mean_health(),
        sick.mean_health()
    );
    assert!(
        sick.unhealthy(0.9).len() > healthy.unhealthy(0.9).len(),
        "the watch list must grow"
    );
}

#[test]
fn kpi_report_weights_degrade_with_health() {
    let snap = generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot;
    let report = simulate(&snap, &TrafficModel::default()).unwrap();
    for k in report.per_carrier() {
        let w = report.weight(k.carrier);
        assert!((0.05..=1.0).contains(&w));
        assert!(
            (w - k.health().max(0.05)).abs() < 1e-12,
            "weight tracks health"
        );
    }
}

#[test]
fn weighted_recommendations_run_end_to_end() {
    let snap = generate(&NetScale::tiny(), &TuningKnobs::default()).snapshot;
    let report = simulate(&snap, &TrafficModel::default()).unwrap();
    let scope = Scope::whole(&snap);
    let model = CfModel::fit(&snap, &scope, CfConfig::default());
    let p = snap.catalog.singular_ids().next().unwrap();
    for i in (0..snap.n_carriers()).step_by(13) {
        let c = auric_repro::model::CarrierId::from_index(i);
        let rec = recommend_local_weighted(&snap, &model, &report, p, c);
        let def = snap.catalog.def(p);
        assert!((rec.value as usize) < def.range.n_values());
    }
}
