//! Integration tests that pin the paper's qualitative claims — the
//! "shape" DESIGN.md commits to reproducing — at unit-test scale.

use auric_repro::core::mismatch::analyze_mismatches;
use auric_repro::core::{evaluate_cf, CfConfig, CfModel, MismatchLabel, Scope};
use auric_repro::netgen::{generate, NetScale, TuningKnobs};
use auric_repro::stats::freq::distinct_count;
use auric_repro::stats::moments::{skewness, Skew};

fn default_net() -> auric_repro::netgen::GeneratedNetwork {
    generate(&NetScale::tiny(), &TuningKnobs::default())
}

#[test]
fn sec2_6_variability_is_heavy_tailed() {
    // Fig. 2's shape: most parameters take a handful of values, several
    // exceed 10, and one towers over the rest.
    let net = default_net();
    let snap = &net.snapshot;
    let distinct: Vec<usize> = snap
        .catalog
        .defs()
        .iter()
        .map(|d| match d.kind {
            auric_repro::model::ParamKind::Singular => distinct_count(snap.config.values_of(d.id)),
            auric_repro::model::ParamKind::Pairwise => {
                distinct_count(snap.config.pair_values_of(d.id))
            }
        })
        .collect();
    let over_10 = distinct.iter().filter(|&&d| d > 10).count();
    let max = *distinct.iter().max().unwrap();
    let median = {
        let mut s = distinct.clone();
        s.sort_unstable();
        s[s.len() / 2]
    };
    assert!(
        over_10 >= 4,
        "only {over_10} parameters exceed 10 distinct values"
    );
    assert!(
        max >= 3 * median,
        "no heavy tail: max {max}, median {median}"
    );
}

#[test]
fn sec2_6_many_parameters_are_skewed() {
    // Fig. 4's shape: a majority of parameters are moderately-or-highly
    // skewed (paper: 45 of 65).
    let net = default_net();
    let snap = &net.snapshot;
    let whole = Scope::whole(snap);
    let mut skewed = 0usize;
    for def in snap.catalog.defs() {
        let range = def.range;
        let values: Vec<f64> = match def.kind {
            auric_repro::model::ParamKind::Singular => whole
                .carriers
                .iter()
                .map(|&c| range.value(snap.config.value(def.id, c)))
                .collect(),
            auric_repro::model::ParamKind::Pairwise => whole
                .pairs
                .iter()
                .map(|&q| range.value(snap.config.pair_value(def.id, q)))
                .collect(),
        };
        if !matches!(Skew::classify(skewness(&values)), Skew::Symmetric) {
            skewed += 1;
        }
    }
    assert!(skewed >= 25, "only {skewed}/65 parameters skewed");
}

#[test]
fn sec4_3_1_cf_beats_the_rulebook_baseline() {
    // CF must clearly beat the mined rule-book (the operational status
    // quo) — the paper's motivation for learning at all.
    let net = default_net();
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let model = CfModel::fit(snap, &scope, CfConfig::default());
    let cf = evaluate_cf(snap, &scope, &model, true).micro_accuracy();

    let book = auric_repro::rulebook::mine_rulebook(snap);
    let mut hit = 0usize;
    let mut total = 0usize;
    for p in snap.catalog.singular_ids() {
        let default = snap.catalog.def(p).default;
        for &c in &scope.carriers {
            total += 1;
            hit += usize::from(
                book.lookup(p, &snap.carrier(c).attrs, default) == snap.config.value(p, c),
            );
        }
    }
    let rb = hit as f64 / total as f64;
    assert!(cf > rb + 0.02, "CF {cf} vs rule-book {rb}");
}

#[test]
fn sec4_3_3_mismatch_labels_have_the_paper_ordering() {
    // Fig. 12's ordering: inconclusive > good recommendation > update
    // learner (67% > 28% > 5%). Needs enough markets that a single
    // in-progress trial (which always lands in exactly one market) does
    // not dominate the update-learner share the way it would at 2-market
    // scale.
    let net = generate(
        &NetScale {
            n_markets: 8,
            enbs_per_market: 12,
            seed: 3,
        },
        &TuningKnobs::default(),
    );
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let model = CfModel::fit(snap, &scope, CfConfig::default());
    let mm = analyze_mismatches(snap, &scope, &model);
    assert!(
        mm.mismatches > 100,
        "need a mismatch population ({})",
        mm.mismatches
    );
    let good = mm.share(MismatchLabel::GoodRecommendation);
    let update = mm.share(MismatchLabel::UpdateLearner);
    let inconclusive = mm.share(MismatchLabel::Inconclusive);
    assert!(
        inconclusive > good && good > update,
        "ordering violated: inconclusive {inconclusive}, good {good}, update {update}"
    );
}

#[test]
fn sec4_2_accuracy_in_the_ninety_percent_band() {
    // All the §4 results live in a 90%+ accuracy world; the synthetic
    // substrate must land the local learner there too.
    let net = generate(
        &NetScale {
            n_markets: 2,
            enbs_per_market: 16,
            seed: 9,
        },
        &TuningKnobs::default(),
    );
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let model = CfModel::fit(snap, &scope, CfConfig::default());
    let acc = evaluate_cf(snap, &scope, &model, true).micro_accuracy();
    assert!(
        (0.90..=0.995).contains(&acc),
        "local accuracy {acc} out of band"
    );
}
