//! Property-based integration tests (proptest) over the core invariants:
//! voting semantics, value-grid round trips, one-hot structure, X2 graph
//! symmetry, and chi-square monotonicity.

use auric_repro::core::{CfConfig, CfModel, Scope};
use auric_repro::model::{CarrierId, ParamId, ValueRange, X2Graph};
use auric_repro::netgen::{generate, NetScale, TuningKnobs};
use auric_repro::stats::chi2::{chi2_cdf, chi2_critical};
use auric_repro::stats::freq::FreqTable;
use auric_repro::stats::onehot::OneHotEncoder;
use proptest::prelude::*;
use std::sync::OnceLock;

/// A serialized tiny fitted model, built once for the mutation proptest.
fn model_json() -> &'static [u8] {
    static JSON: OnceLock<Vec<u8>> = OnceLock::new();
    JSON.get_or_init(|| {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let scope = Scope::whole(&net.snapshot);
        let model = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        serde_json::to_string(&model)
            .expect("serialize fitted model")
            .into_bytes()
    })
}

proptest! {
    /// The majority under leave-one-out never reports more support than
    /// the table holds, and the winner is genuinely maximal.
    #[test]
    fn freq_table_majority_invariants(values in proptest::collection::vec(0u16..8, 1..60)) {
        let table = FreqTable::from_values(values.iter().copied());
        let exclude = values[0];
        if let Some((winner, count, total)) =
            table.majority_with_support_excluding(Some(exclude), 0.0)
        {
            prop_assert_eq!(total, values.len() - 1);
            prop_assert!(count <= total);
            // No other value has a strictly larger reduced count.
            for v in 0u16..8 {
                let c = table.count(v) - usize::from(v == exclude);
                prop_assert!(c <= count, "value {} has count {} > winner {}", v, c, count);
            }
            prop_assert!(table.count(winner) > 0);
        } else {
            prop_assert_eq!(values.len(), 1);
        }
    }

    /// Raising the support threshold can only remove recommendations,
    /// never change the winner.
    #[test]
    fn support_threshold_is_monotone(values in proptest::collection::vec(0u16..5, 1..40)) {
        let table = FreqTable::from_values(values.iter().copied());
        let mut prev: Option<(u16, usize, usize)> = table.majority_with_support_excluding(None, 0.0);
        for t in [0.25, 0.5, 0.75, 0.9, 1.0] {
            let cur = table.majority_with_support_excluding(None, t);
            match (prev, cur) {
                (None, Some(_)) => prop_assert!(false, "recommendation appeared as threshold rose"),
                (Some(p), Some(c)) => prop_assert_eq!(p.0, c.0, "winner changed with threshold"),
                _ => {}
            }
            prev = cur;
        }
    }

    /// Every grid value round-trips through `value`/`index_of`.
    #[test]
    fn value_range_round_trip(
        min in -200.0f64..200.0,
        steps in 1usize..500,
        step_q in 1u32..20,
    ) {
        let step = step_q as f64 * 0.5;
        let max = min + steps as f64 * step;
        let range = ValueRange::new(min, max, step);
        prop_assert_eq!(range.n_values(), steps + 1);
        for idx in [0, steps / 2, steps] {
            let v = range.value(idx as u16);
            prop_assert_eq!(range.index_of(v), Some(idx as u16));
        }
    }

    /// One-hot vectors have exactly one bit per column block.
    #[test]
    fn one_hot_block_structure(cards in proptest::collection::vec(1usize..12, 1..10)) {
        let enc = OneHotEncoder::new(cards.clone());
        let row: Vec<u16> = cards.iter().map(|&c| (c - 1) as u16).collect();
        let v = enc.encode(&row);
        prop_assert_eq!(v.iter().sum::<f64>() as usize, cards.len());
        prop_assert_eq!(enc.decode(&v), row);
    }

    /// X2 graphs built from arbitrary edge lists are symmetric and
    /// self-loop free, and pair indices round-trip.
    #[test]
    fn x2_graph_invariants(
        edges in proptest::collection::vec((0u32..30, 0u32..30), 0..120)
    ) {
        let edges: Vec<(CarrierId, CarrierId)> =
            edges.into_iter().map(|(a, b)| (CarrierId(a), CarrierId(b))).collect();
        let g = X2Graph::from_edges(30, &edges);
        prop_assert!(g.validate().is_ok());
        for (p, j, k) in g.pairs() {
            prop_assert_eq!(g.pair(p), (j, k));
            prop_assert!(g.pair_idx(k, j).is_some(), "asymmetric {} -> {}", j, k);
        }
        // Degree sum equals the directed pair count.
        let deg_sum: usize = (0..30).map(|i| g.degree(CarrierId(i))).sum();
        prop_assert_eq!(deg_sum, g.n_pairs());
    }

    /// Corrupting a serialized model — overwriting arbitrary bytes and/or
    /// truncating the tail — must yield `Ok` or a typed error from
    /// `CfModel::from_json_bytes`, never a panic; and any mutant that
    /// still loads must answer probes without panicking (the serving
    /// layer hot-swaps whatever loads).
    #[test]
    fn model_load_survives_byte_mutations(
        mutations in proptest::collection::vec((0usize..1_000_000, 0u16..256), 1..8),
        truncate in proptest::collection::vec(0usize..1_000_000, 0..2),
    ) {
        let mut bytes = model_json().to_vec();
        for &(idx, byte) in &mutations {
            let i = idx % bytes.len();
            bytes[i] = byte as u8;
        }
        if let Some(&t) = truncate.first() {
            bytes.truncate(t % (bytes.len() + 1));
        }
        if let Ok(model) = CfModel::from_json_bytes(&bytes) {
            for (i, pc) in model.params().iter().enumerate() {
                let param = ParamId(i as u16);
                let _ = model.market_mode(param);
                let key = vec![0u16; pc.dependent.len()];
                let _ = model.recommend_global(param, &key, None);
            }
        }
    }

    /// The chi-square CDF is monotone in x and the critical value inverts
    /// it.
    #[test]
    fn chi2_cdf_monotone(df in 1usize..60, x in 0.0f64..200.0, dx in 0.0f64..50.0) {
        prop_assert!(chi2_cdf(x + dx, df) >= chi2_cdf(x, df) - 1e-12);
        let crit = chi2_critical(df, 0.01);
        prop_assert!((chi2_cdf(crit, df) - 0.99).abs() < 1e-6);
    }
}
