//! End-to-end integration: generator → recommender → evaluation →
//! deployment, across crate boundaries.

use auric_repro::core::{
    evaluate_cf, recommend_pairwise, recommend_singular, CfConfig, CfModel, NewCarrier, Scope,
};
use auric_repro::ems::{sample_campaign, EmsSettings, SmartLaunch, VendorConfigSource};
use auric_repro::model::{CarrierId, ParamId, ValueIdx};
use auric_repro::netgen::{generate, NetScale, TuningKnobs};

#[test]
fn full_pipeline_small_network() {
    // Generate → fit → evaluate → recommend → launch, in one flow.
    let net = generate(&NetScale::tiny(), &TuningKnobs::default());
    let snap = &net.snapshot;
    snap.validate().expect("generator output is consistent");

    let scope = Scope::whole(snap);
    let model = CfModel::fit(snap, &scope, CfConfig::default());

    // Evaluation: the local learner should land in a high-accuracy band on
    // a default-tuned network (the paper's headline is ~96%; tiny scale
    // is noisier, so accept a broad band that still excludes failure).
    let local = evaluate_cf(snap, &scope, &model, true);
    let acc = local.micro_accuracy();
    assert!(acc > 0.90, "local leave-one-out accuracy {acc}");

    // Cold-start recommendation covers the whole catalog.
    let template = CarrierId(0);
    let nc = NewCarrier {
        attrs: snap.carrier(template).attrs.clone(),
        neighbors: snap.x2.neighbors(template).to_vec(),
    };
    let singular = recommend_singular(snap, &model, &nc);
    assert_eq!(singular.len(), 39);
    if let Some(&n) = nc.neighbors.first() {
        let pairwise = recommend_pairwise(snap, &model, &nc, n);
        assert_eq!(pairwise.len(), 26);
    }

    // Deployment: a small campaign completes with sane accounting.
    struct Defaults<'a>(&'a auric_repro::model::NetworkSnapshot);
    impl VendorConfigSource for Defaults<'_> {
        fn initial_value(&self, _c: CarrierId, p: ParamId) -> ValueIdx {
            self.0.catalog.def(p).default
        }
    }
    let plans = sample_campaign(snap, 20, 0.1, 5);
    let mut pipeline = SmartLaunch::new(snap, &model, EmsSettings::default());
    let report = pipeline.run_campaign(&plans, &Defaults(snap));
    assert_eq!(report.launched, 20);
    assert_eq!(
        report.changes_implemented + report.fallouts(),
        report.changes_recommended
    );
}

#[test]
fn local_beats_global_when_tuning_is_geographic() {
    // The paper's central claim, as an invariant: on a network whose only
    // deviation from the rules is geographic pockets, the local learner
    // must beat the global one.
    let knobs = TuningKnobs {
        pocket_prob: 0.9,
        max_pockets: 2,
        ..TuningKnobs::none()
    };
    let net = generate(
        &NetScale {
            n_markets: 2,
            enbs_per_market: 16,
            seed: 21,
        },
        &knobs,
    );
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let model = CfModel::fit(snap, &scope, CfConfig::default());
    let global = evaluate_cf(snap, &scope, &model, false).micro_accuracy();
    let local = evaluate_cf(snap, &scope, &model, true).micro_accuracy();
    assert!(
        local > global,
        "local {local} must beat global {global} on a pocketed network"
    );
}

#[test]
fn accuracy_degrades_gracefully_with_noise() {
    // More one-off noise → lower leave-one-out accuracy, monotonically
    // (the recommender can't predict lawless values).
    let mut last = 1.1;
    for &noise in &[0.0, 0.05, 0.15] {
        let knobs = TuningKnobs {
            noise_rate: noise,
            ..TuningKnobs::none()
        };
        let net = generate(&NetScale::tiny(), &knobs);
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let acc = evaluate_cf(snap, &scope, &model, true).micro_accuracy();
        assert!(
            acc < last + 0.005,
            "noise {noise}: accuracy {acc} vs previous {last}"
        );
        last = acc;
    }
}

#[test]
fn seeds_change_data_but_not_structure() {
    for seed in [1u64, 99, 12345] {
        let net = generate(&NetScale::tiny().with_seed(seed), &TuningKnobs::default());
        let snap = &net.snapshot;
        snap.validate().unwrap();
        assert_eq!(snap.catalog.len(), 65);
        assert_eq!(snap.markets.len(), 2);
        assert_eq!(snap.schema.n_attrs(), 14);
    }
}
