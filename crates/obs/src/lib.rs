//! Deterministic observability for the Auric pipeline.
//!
//! The paper's §5 "lessons learned" names operational visibility as a
//! precondition for adoption: operators only trusted recommendations
//! they could audit. This crate is the plumbing for that audit trail —
//! and, unlike an off-the-shelf metrics stack, it is **deterministic by
//! construction** so the chaos and replay tests stay reproducible:
//!
//! - [`Recorder`] — a cheaply cloneable handle holding monotonic
//!   counters, fixed-bucket histograms, and hierarchical [`Span`]s. A
//!   disabled recorder ([`Recorder::disabled`]) is a `None` behind an
//!   `Option<Arc<_>>`: every operation is a branch on a pointer check,
//!   so instrumented hot paths cost nothing when observability is off.
//! - [`Clock`] — the pluggable time source spans run on.
//!   [`WallClock`] reads real time for benchmarking;
//!   [`ManualClock`] is advanced explicitly (e.g. mirrored from the EMS
//!   simulation clock), so span durations — and therefore report bytes —
//!   are identical across runs regardless of thread scheduling.
//! - [`Recorder::report_json`] — the aggregate as a stable-ordered JSON
//!   document: keys sorted, no timestamps, no floats. Two runs of a
//!   deterministic workload produce byte-identical reports.
//!
//! Zero dependencies: only `std`. The JSON is rendered by hand precisely
//! because the output ordering is part of the contract.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A monotonic time source for spans, in microseconds since an arbitrary
/// origin. Implementations must be cheap and thread-safe; determinism is
/// the implementation's promise, not the trait's.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds elapsed since the clock's origin.
    fn now_us(&self) -> u64;
}

/// Real wall-clock time (monotonic). Use for overhead benchmarking and
/// interactive runs; never in determinism-sensitive tests.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A clock that only moves when told to — the deterministic time source.
///
/// Frozen at zero it makes every span duration 0 (pure structure, fully
/// reproducible); advanced in lockstep with a simulation clock (e.g.
/// `ems::retry::SimClock`) it makes span durations report *simulated*
/// time, still byte-for-byte reproducible.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_us: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `us` microseconds (saturating).
    pub fn advance_us(&self, us: u64) {
        // Saturation via CAS loop is overkill; fetch_update keeps it exact.
        let _ = self
            .now_us
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some(t.saturating_add(us))
            });
    }

    /// Advances by whole milliseconds — the unit simulation clocks use.
    pub fn advance_ms(&self, ms: u64) {
        self.advance_us(ms.saturating_mul(1_000));
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two.
const N_BUCKETS: usize = 65;

/// A fixed-bucket histogram over `u64` values: bucket 0 holds zeros,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. Also tracks count,
/// sum, min, and max exactly. All updates are relaxed atomics — counts
/// are exact, and the aggregate is schedule-independent.
#[derive(Debug)]
struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The lower bound of bucket `i` (inclusive).
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Aggregated statistics of one span path.
#[derive(Debug, Default)]
struct SpanStats {
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

type Registry<T> = RwLock<HashMap<String, T>>;

#[derive(Debug)]
struct Inner {
    clock: Arc<dyn Clock>,
    /// Present when the clock is a [`ManualClock`], so simulation code
    /// can drive span time deterministically.
    manual: Option<Arc<ManualClock>>,
    counters: Registry<AtomicU64>,
    gauges: Registry<AtomicU64>,
    histograms: Registry<Histogram>,
    spans: Registry<SpanStats>,
}

/// The observability handle. Clones share the same registries (an `Arc`
/// internally); the disabled recorder carries nothing and every method
/// returns after one pointer check.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The no-op recorder: near-zero cost, records nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recorder on real wall-clock time, for overhead measurement and
    /// interactive runs.
    pub fn wall() -> Self {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// A recorder on a [`ManualClock`] frozen at zero: fully
    /// deterministic. Span durations stay 0 unless the clock is advanced
    /// through [`Recorder::advance_sim_ms`].
    pub fn deterministic() -> Self {
        let manual = Arc::new(ManualClock::new());
        Self {
            inner: Some(Arc::new(Inner {
                clock: manual.clone(),
                manual: Some(manual),
                counters: RwLock::new(HashMap::new()),
                gauges: RwLock::new(HashMap::new()),
                histograms: RwLock::new(HashMap::new()),
                spans: RwLock::new(HashMap::new()),
            })),
        }
    }

    /// A recorder on an arbitrary clock implementation.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                clock,
                manual: None,
                counters: RwLock::new(HashMap::new()),
                gauges: RwLock::new(HashMap::new()),
                histograms: RwLock::new(HashMap::new()),
                spans: RwLock::new(HashMap::new()),
            })),
        }
    }

    /// Whether this recorder records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the deterministic clock by simulated milliseconds. No-op
    /// on disabled recorders and on non-manual clocks — simulation code
    /// calls this unconditionally.
    #[inline]
    pub fn advance_sim_ms(&self, ms: u64) {
        if let Some(inner) = &self.inner {
            if let Some(manual) = &inner.manual {
                manual.advance_ms(ms);
            }
        }
    }

    /// Increments counter `name` by 1.
    #[inline]
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name`.
    #[inline]
    pub fn add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        // Hot path: the counter already exists and a read lock suffices,
        // so concurrent recommendation sweeps never serialize on a write
        // lock after the first touch of each name.
        if let Some(c) = inner.counters.read().unwrap().get(name) {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        inner
            .counters
            .write()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises gauge `name` to `value` if it is higher (monotone
    /// max-gauge). Peaks — arena bytes, cache footprints, high-water
    /// marks — are what the reports need, and a max is deterministic
    /// under concurrent recording where a last-write-wins gauge is not.
    #[inline]
    pub fn gauge_max(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        if let Some(g) = inner.gauges.read().unwrap().get(name) {
            g.fetch_max(value, Ordering::Relaxed);
            return;
        }
        inner
            .gauges
            .write()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .fetch_max(value, Ordering::Relaxed);
    }

    /// The current gauge value (0 if never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner
                .gauges
                .read()
                .unwrap()
                .get(name)
                .map_or(0, |g| g.load(Ordering::Relaxed)),
        }
    }

    /// Records `value` into histogram `name`.
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        if let Some(h) = inner.histograms.read().unwrap().get(name) {
            h.observe(value);
            return;
        }
        inner
            .histograms
            .write()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Opens a root span. Dropping the guard records its duration on the
    /// recorder's clock.
    pub fn span(&self, name: &str) -> Span {
        Span::open(self.clone(), name.to_string())
    }

    /// The current counter value (0 if never touched). For tests and
    /// report assembly.
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner
                .counters
                .read()
                .unwrap()
                .get(name)
                .map_or(0, |c| c.load(Ordering::Relaxed)),
        }
    }

    /// Observation count of a histogram (0 if never touched).
    pub fn histogram_count(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner
                .histograms
                .read()
                .unwrap()
                .get(name)
                .map_or(0, |h| h.count.load(Ordering::Relaxed)),
        }
    }

    fn record_span(&self, path: &str, elapsed_us: u64) {
        let Some(inner) = &self.inner else { return };
        if let Some(s) = inner.spans.read().unwrap().get(path) {
            s.count.fetch_add(1, Ordering::Relaxed);
            s.total_us.fetch_add(elapsed_us, Ordering::Relaxed);
            s.max_us.fetch_max(elapsed_us, Ordering::Relaxed);
            return;
        }
        let mut map = inner.spans.write().unwrap();
        let stats = map.entry(path.to_string()).or_default();
        stats.count.fetch_add(1, Ordering::Relaxed);
        stats.total_us.fetch_add(elapsed_us, Ordering::Relaxed);
        stats.max_us.fetch_max(elapsed_us, Ordering::Relaxed);
    }

    fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_us())
    }

    /// Renders every counter, histogram, and span as a stable-ordered
    /// JSON document. Keys are sorted; a deterministic workload on a
    /// [`ManualClock`] produces byte-identical output across runs.
    pub fn report_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        match &self.inner {
            None => {
                out.push_str("},\n  \"gauges\": {},\n  \"histograms\": {},\n  \"spans\": {}\n}");
                return out;
            }
            Some(inner) => {
                let counters: BTreeMap<String, u64> = inner
                    .counters
                    .read()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                    .collect();
                for (i, (k, v)) in counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n    {}: {v}", json_string(k));
                }
                if !counters.is_empty() {
                    out.push_str("\n  ");
                }
                out.push_str("},\n  \"gauges\": {");

                let gauges: BTreeMap<String, u64> = inner
                    .gauges
                    .read()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                    .collect();
                for (i, (k, v)) in gauges.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n    {}: {v}", json_string(k));
                }
                if !gauges.is_empty() {
                    out.push_str("\n  ");
                }
                out.push_str("},\n  \"histograms\": {");

                let hists = inner.histograms.read().unwrap();
                let mut hist_keys: Vec<&String> = hists.keys().collect();
                hist_keys.sort();
                for (i, k) in hist_keys.iter().enumerate() {
                    let h = &hists[*k];
                    if i > 0 {
                        out.push(',');
                    }
                    let count = h.count.load(Ordering::Relaxed);
                    let min = h.min.load(Ordering::Relaxed);
                    let _ = write!(
                        out,
                        "\n    {}: {{\"count\": {count}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                        json_string(k),
                        h.sum.load(Ordering::Relaxed),
                        if count == 0 { 0 } else { min },
                        h.max.load(Ordering::Relaxed),
                    );
                    let mut first = true;
                    for (b, slot) in h.buckets.iter().enumerate() {
                        let n = slot.load(Ordering::Relaxed);
                        if n == 0 {
                            continue;
                        }
                        if !first {
                            out.push_str(", ");
                        }
                        first = false;
                        let _ = write!(out, "[{}, {n}]", bucket_lo(b));
                    }
                    out.push_str("]}");
                }
                if !hist_keys.is_empty() {
                    out.push_str("\n  ");
                }
                drop(hists);
                out.push_str("},\n  \"spans\": {");

                let spans = inner.spans.read().unwrap();
                let mut span_keys: Vec<&String> = spans.keys().collect();
                span_keys.sort();
                for (i, k) in span_keys.iter().enumerate() {
                    let s = &spans[*k];
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "\n    {}: {{\"count\": {}, \"total_us\": {}, \"max_us\": {}}}",
                        json_string(k),
                        s.count.load(Ordering::Relaxed),
                        s.total_us.load(Ordering::Relaxed),
                        s.max_us.load(Ordering::Relaxed),
                    );
                }
                if !span_keys.is_empty() {
                    out.push_str("\n  ");
                }
                out.push_str("}\n}");
            }
        }
        out
    }
}

/// A JSON string literal for `s` (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A hierarchical span guard: records `path` with its duration on drop.
/// Children extend the path with `/`, so the report groups naturally
/// (`exp.table5/fit`, `exp.table5/campaign`, ...). On a disabled
/// recorder the guard is inert.
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    path: String,
    start_us: u64,
    closed: bool,
}

impl Span {
    fn open(rec: Recorder, path: String) -> Self {
        let start_us = rec.now_us();
        Self {
            rec,
            path,
            start_us,
            closed: false,
        }
    }

    /// Opens a child span `parent-path/name`.
    pub fn child(&self, name: &str) -> Span {
        if !self.rec.enabled() {
            return Span::open(Recorder::disabled(), String::new());
        }
        Span::open(self.rec.clone(), format!("{}/{name}", self.path))
    }

    /// The span's full path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Closes the span now (instead of at drop), recording its duration.
    pub fn close(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.closed || !self.rec.enabled() {
            self.closed = true;
            return;
        }
        self.closed = true;
        let elapsed = self.rec.now_us().saturating_sub(self.start_us);
        self.rec.record_span(&self.path, elapsed);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.enabled());
        r.inc("a");
        r.observe("h", 9);
        r.gauge_max("g", 7);
        let s = r.span("root");
        let c = s.child("leaf");
        drop(c);
        drop(s);
        assert_eq!(r.counter("a"), 0);
        assert_eq!(r.gauge("g"), 0);
        assert_eq!(
            r.report_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {},\n  \"spans\": {}\n}"
        );
    }

    #[test]
    fn gauges_keep_the_maximum() {
        let r = Recorder::deterministic();
        r.gauge_max("peak", 10);
        r.gauge_max("peak", 4);
        let r2 = r.clone();
        r2.gauge_max("peak", 25);
        assert_eq!(r.gauge("peak"), 25);
        assert_eq!(r.gauge("never"), 0);
        let json = r.report_json();
        assert!(
            json.contains("\"gauges\": {\n    \"peak\": 25\n  }"),
            "{json}"
        );
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let r = Recorder::deterministic();
        let r2 = r.clone();
        r.inc("x");
        r2.add("x", 4);
        r2.inc("y");
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.counter("y"), 1);
        assert_eq!(r.counter("never"), 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(64), 1u64 << 63);

        let r = Recorder::deterministic();
        for v in [0, 1, 3, 3, 8] {
            r.observe("h", v);
        }
        assert_eq!(r.histogram_count("h"), 5);
        let json = r.report_json();
        assert!(
            json.contains("\"count\": 5, \"sum\": 15, \"min\": 0, \"max\": 8"),
            "{json}"
        );
        assert!(json.contains("[0, 1], [1, 1], [2, 2], [8, 1]"), "{json}");
    }

    #[test]
    fn spans_nest_and_use_the_manual_clock() {
        let r = Recorder::deterministic();
        {
            let root = r.span("exp");
            r.advance_sim_ms(3);
            {
                let child = root.child("stage");
                r.advance_sim_ms(2);
                drop(child);
            }
        }
        let json = r.report_json();
        assert!(
            json.contains("\"exp\": {\"count\": 1, \"total_us\": 5000, \"max_us\": 5000}"),
            "{json}"
        );
        assert!(
            json.contains("\"exp/stage\": {\"count\": 1, \"total_us\": 2000, \"max_us\": 2000}"),
            "{json}"
        );
    }

    #[test]
    fn deterministic_reports_are_byte_identical() {
        let run = || {
            let r = Recorder::deterministic();
            // Touch names in two different orders; the report must not care.
            for name in ["b", "a", "c"] {
                r.inc(name);
            }
            for v in [7u64, 0, 1 << 20] {
                r.observe("lat", v);
            }
            let s = r.span("root");
            s.child("z").close();
            s.child("a").close();
            drop(s);
            r.report_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.find("\"a\": 1") < a.find("\"b\": 1"), "sorted keys: {a}");
    }

    #[test]
    fn wall_clock_spans_measure_something() {
        let r = Recorder::wall();
        let s = r.span("sleep");
        std::thread::sleep(std::time::Duration::from_millis(2));
        drop(s);
        let json = r.report_json();
        assert!(json.contains("\"sleep\""), "{json}");
        // At least 1ms must have elapsed.
        let total: u64 = json
            .split("\"total_us\": ")
            .nth(1)
            .and_then(|t| t.split(',').next())
            .and_then(|t| t.trim().parse().ok())
            .unwrap();
        assert!(total >= 1_000, "slept 2ms but measured {total}us");
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let r = Recorder::deterministic();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        r.inc("n");
                        r.observe("h", 2);
                    }
                });
            }
        });
        assert_eq!(r.counter("n"), 8_000);
        assert_eq!(r.histogram_count("h"), 8_000);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn manual_clock_saturates() {
        let c = ManualClock::new();
        c.advance_us(u64::MAX - 1);
        c.advance_us(10);
        assert_eq!(c.now_us(), u64::MAX);
        c.advance_ms(5);
        assert_eq!(c.now_us(), u64::MAX);
    }
}
