//! Mixed-radix packing of categorical keys into a single `u128`.
//!
//! The voting recommender groups carriers by an exact-match key over the
//! dependent attributes. Representing that key as a `Vec<u16>` makes every
//! group lookup hash a heap allocation and every key construction allocate;
//! at leave-one-out sweep volume (every carrier × every parameter × every
//! probe) that dominates the hot path. A [`PackedKeyCodec`] instead lays
//! the key positions out as contiguous bit fields of a `u128`:
//!
//! - position `i` with cardinality `c_i` gets `ceil(log2(c_i + 1))` bits,
//!   enough for the levels `0..c_i` *plus* one reserved sentinel level
//!   `c_i` that out-of-range probe values (e.g. `u16::MAX`) collapse to.
//!   Recorded observations are always in range, so a sentinel never equals
//!   a recorded level and "unseen key" semantics are preserved exactly;
//! - position 0 is packed into the *most significant* bits and later
//!   positions descend from there, so the group key of the *first* `l`
//!   positions is just `key & prefix_mask(l)` — no re-projection — and,
//!   crucially, the integer order of packed keys equals the
//!   lexicographic order of the unpacked keys. Sorting groups by packed
//!   key therefore lays every prefix group out as one contiguous run,
//!   nested hierarchically across prefix lengths: the property the
//!   backoff recommender's sorted group storage aggregates ranges over;
//! - keys compare and hash as plain integers ([`FastHash`] below).
//!
//! The width was `u64` until paper-scale fits proved that too small: with
//! 2.2M samples the chi-square dependency selection keeps enough
//! attributes that pairwise layouts routinely cross 64 bits, and the wide
//! fallback's per-group boxed keys dominated peak RSS. 128 bits cover
//! every layout the Table-1 schema can produce (worst case ~94 bits with
//! all 14 attributes selected on both pair endpoints). When a layout
//! still exceeds 128 bits (only reachable under exotic schemas), the
//! codec reports `fits_u128() == false` and callers fall back to a wide
//! `Box<[u16]>` key representation; [`PackedKeyCodec::clamp`] applies the
//! same sentinel collapse there so both representations agree on probe
//! semantics.

use std::hash::{BuildHasher, Hasher};

/// Bit-field layout for packing one categorical key into a `u128`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedKeyCodec {
    /// Per-position cardinality; level `cards[i]` is the reserved sentinel.
    cards: Vec<u16>,
    /// Bit offset of each position, descending from the top of the `u128`
    /// (position 0 occupies the most significant field).
    shifts: Vec<u8>,
    /// `masks[l]` selects the first `l` positions (`masks[n]` = all).
    masks: Vec<u128>,
    /// Total bits required; layouts over 128 bits do not fit a `u128`.
    total_bits: u32,
}

/// Bits needed to store levels `0..=card` (the sentinel included).
#[inline]
fn field_width(card: u16) -> u32 {
    (u16::BITS - card.leading_zeros()).max(1)
}

impl PackedKeyCodec {
    /// Builds the layout for positions with the given cardinalities.
    pub fn new(cards: &[u16]) -> Self {
        let total_bits: u32 = cards.iter().map(|&c| field_width(c)).sum();
        let fits = total_bits <= 128;
        // Shifts descend from the top: position i's field ends where
        // position i+1's begins. `cum` is the width of the first i
        // positions; a non-fitting layout never packs, so its shifts are
        // pinned to 0 rather than left as out-of-range shift amounts.
        let mut shifts = Vec::with_capacity(cards.len());
        let mut masks = Vec::with_capacity(cards.len() + 1);
        let mut cum = 0u32;
        masks.push(0);
        for &c in cards {
            cum += field_width(c);
            shifts.push(if fits { (128 - cum) as u8 } else { 0 });
            masks.push(if !fits {
                0
            } else if cum >= 128 {
                u128::MAX
            } else {
                !(u128::MAX >> cum)
            });
        }
        Self {
            cards: cards.to_vec(),
            shifts,
            masks,
            total_bits,
        }
    }

    /// Number of key positions.
    pub fn n_positions(&self) -> usize {
        self.cards.len()
    }

    /// Per-position cardinalities (the layout's defining input).
    pub fn cards(&self) -> &[u16] {
        &self.cards
    }

    /// Whether the whole key fits one `u128`.
    #[inline]
    pub fn fits_u128(&self) -> bool {
        self.total_bits <= 128
    }

    /// Clamps a level to the position's range, collapsing every
    /// out-of-range probe level to the reserved sentinel `cards[i]`.
    #[inline]
    pub fn clamp_level(&self, i: usize, v: u16) -> u16 {
        if v >= self.cards[i] {
            self.cards[i]
        } else {
            v
        }
    }

    /// Packs the first `vals.len()` positions (`vals.len() <= n_positions`).
    ///
    /// # Panics
    /// Debug-panics if the layout does not fit a `u128` or `vals` is longer
    /// than the layout.
    #[inline]
    pub fn pack(&self, vals: &[u16]) -> u128 {
        debug_assert!(self.fits_u128(), "packing a wide layout");
        debug_assert!(vals.len() <= self.cards.len());
        let mut key = 0u128;
        for (i, &v) in vals.iter().enumerate() {
            key |= (self.clamp_level(i, v) as u128) << self.shifts[i];
        }
        key
    }

    /// Packs a full key reading position `i`'s level from `level(i)`.
    #[inline]
    pub fn pack_with(&self, mut level: impl FnMut(usize) -> u16) -> u128 {
        debug_assert!(self.fits_u128(), "packing a wide layout");
        let mut key = 0u128;
        for i in 0..self.cards.len() {
            key |= (self.clamp_level(i, level(i)) as u128) << self.shifts[i];
        }
        key
    }

    /// Unpacks the first `len` positions of a packed key.
    pub fn unpack(&self, key: u128, len: usize) -> Vec<u16> {
        debug_assert!(len <= self.cards.len());
        (0..len)
            .map(|i| {
                let width = field_width(self.cards[i]);
                ((key >> self.shifts[i]) & ((1u128 << width) - 1)) as u16
            })
            .collect()
    }

    /// The mask selecting the first `l` positions.
    #[inline]
    pub fn prefix_mask(&self, l: usize) -> u128 {
        self.masks[l]
    }

    /// The packed key of the first `l` positions of `key` — equivalent to
    /// re-projecting onto the prefix, without touching the attributes.
    #[inline]
    pub fn prefix(&self, key: u128, l: usize) -> u128 {
        key & self.masks[l]
    }

    /// Sentinel-clamps an unpacked key for the wide (over-128-bit) fallback
    /// representation, so out-of-range probe levels collapse identically
    /// in both representations.
    pub fn clamp(&self, vals: &[u16]) -> Vec<u16> {
        debug_assert!(vals.len() <= self.cards.len());
        vals.iter()
            .enumerate()
            .map(|(i, &v)| self.clamp_level(i, v))
            .collect()
    }
}

/// A multiply-shift hasher for already-mixed integer keys.
///
/// Packed vote keys are small dense integers; SipHash (the `HashMap`
/// default) spends more time per lookup than the whole equality scan it
/// guards. One odd-constant multiply plus a xor-shift is enough to spread
/// the low bits the hash map indexes with. Not DoS-resistant — keys come
/// from the network snapshot, not an adversary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastHash;

/// Hasher state for [`FastHash`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // Multiply-shift: golden-ratio constant, then fold the high bits
        // (where multiply mixes best) down into the index bits.
        let h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        // Two chained multiply-shifts: the first folds the high half into
        // the state, so keys differing only above bit 63 still spread.
        self.write_u64((v >> 64) as u64);
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by u64 keys): FNV-1a style fold.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
}

impl BuildHasher for FastHash {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_in_range_keys() {
        let codec = PackedKeyCodec::new(&[3, 1, 20, 5]);
        assert!(codec.fits_u128());
        let vals = [2u16, 0, 19, 4];
        let key = codec.pack(&vals);
        assert_eq!(codec.unpack(key, 4), vals);
        assert_eq!(codec.unpack(key, 2), vals[..2]);
    }

    #[test]
    fn prefix_mask_equals_prefix_packing() {
        let codec = PackedKeyCodec::new(&[4, 7, 2, 30]);
        let vals = [3u16, 6, 1, 29];
        let key = codec.pack(&vals);
        for l in 0..=vals.len() {
            assert_eq!(codec.prefix(key, l), codec.pack(&vals[..l]), "prefix {l}");
        }
    }

    #[test]
    fn out_of_range_levels_collapse_to_the_sentinel() {
        let codec = PackedKeyCodec::new(&[3, 5]);
        // Different impossible probe levels agree with each other…
        assert_eq!(codec.pack(&[u16::MAX, 2]), codec.pack(&[3, 2]));
        assert_eq!(codec.pack(&[100, 2]), codec.pack(&[u16::MAX, 2]));
        // …but never with any real level.
        for real in 0..3u16 {
            assert_ne!(codec.pack(&[real, 2]), codec.pack(&[u16::MAX, 2]));
        }
    }

    #[test]
    fn empty_layout_packs_to_zero() {
        let codec = PackedKeyCodec::new(&[]);
        assert!(codec.fits_u128());
        assert_eq!(codec.pack(&[]), 0);
        assert_eq!(codec.unpack(0, 0), Vec::<u16>::new());
    }

    #[test]
    fn oversized_layouts_report_no_fit() {
        // 22 positions × 6 bits (card 32 ⇒ levels 0..=32) = 132 bits.
        let cards = vec![32u16; 22];
        let codec = PackedKeyCodec::new(&cards);
        assert!(!codec.fits_u128());
        // Clamping still applies sentinel semantics for the wide fallback.
        assert_eq!(codec.clamp(&[u16::MAX; 22]), vec![32u16; 22]);
        // 13 positions (78 bits) overflowed the old u64 layout; they are
        // exactly why the codec moved to u128.
        assert!(PackedKeyCodec::new(&[32u16; 13]).fits_u128());
    }

    #[test]
    fn exact_128_bit_layout_fits() {
        // 16 positions × 8 bits (card 255 ⇒ levels 0..=255 need 8 bits).
        let cards = vec![255u16; 16];
        let codec = PackedKeyCodec::new(&cards);
        assert!(codec.fits_u128());
        let vals: Vec<u16> = (0..16).map(|i| 15 * i).collect();
        let key = codec.pack(&vals);
        assert_eq!(codec.unpack(key, 16), vals);
        assert_eq!(codec.prefix_mask(16), u128::MAX);
    }

    #[test]
    fn packed_order_is_lexicographic_order() {
        // The property the sorted group storage depends on: comparing
        // packed keys as integers == comparing unpacked keys position by
        // position, so prefix groups are contiguous runs after sorting.
        let codec = PackedKeyCodec::new(&[2, 300, 3]);
        let mut unpacked = Vec::new();
        for a in 0..=2u16 {
            for b in [0u16, 1, 37, 299, 300] {
                for c in 0..=3u16 {
                    unpacked.push(vec![a, b, c]);
                }
            }
        }
        let mut by_packed = unpacked.clone();
        by_packed.sort_by_key(|v| codec.pack(v));
        assert_eq!(by_packed, unpacked, "integer order must be lex order");
    }

    #[test]
    fn distinct_keys_pack_distinctly() {
        // Exhaustive over a small layout: packing is injective on the
        // (sentinel-extended) level grid.
        let codec = PackedKeyCodec::new(&[2, 3]);
        let mut seen = std::collections::HashSet::new();
        for a in 0..=2u16 {
            for b in 0..=3u16 {
                assert!(seen.insert(codec.pack(&[a, b])), "collision at {a},{b}");
            }
        }
    }

    mod proptests {
        use super::super::*;
        use proptest::prelude::*;

        /// Reference bit count, computed independently of the codec.
        fn expected_bits(cards: &[u16]) -> u32 {
            cards
                .iter()
                .map(|&c| (u16::BITS - c.leading_zeros()).max(1))
                .sum()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// pack → unpack returns the sentinel-clamped input for any
            /// layout that fits, at every prefix length.
            #[test]
            fn pack_unpack_round_trips(spec in collection::vec((1u16..40, 0u16..80), 0..12)) {
                let cards: Vec<u16> = spec.iter().map(|&(c, _)| c).collect();
                let vals: Vec<u16> = spec.iter().map(|&(_, v)| v).collect();
                let codec = PackedKeyCodec::new(&cards);
                prop_assert!(codec.fits_u128(), "12 positions × ≤6 bits always fit");
                let key = codec.pack(&vals);
                let clamped = codec.clamp(&vals);
                for l in 0..=vals.len() {
                    prop_assert_eq!(codec.unpack(codec.prefix(key, l), l), &clamped[..l]);
                }
            }

            /// Masking the packed key equals packing the projected prefix —
            /// the property the backoff tables rely on.
            #[test]
            fn prefix_mask_equals_prefix_projection(
                spec in collection::vec((1u16..300, 0u16..600), 0..9),
            ) {
                let cards: Vec<u16> = spec.iter().map(|&(c, _)| c).collect();
                let vals: Vec<u16> = spec.iter().map(|&(_, v)| v).collect();
                let codec = PackedKeyCodec::new(&cards);
                prop_assert!(codec.fits_u128(), "9 positions × ≤9 bits always fit");
                let key = codec.pack(&vals);
                for l in 0..=vals.len() {
                    prop_assert_eq!(codec.prefix(key, l), codec.pack(&vals[..l]));
                }
            }

            /// `fits_u128` agrees with an independent width computation,
            /// and wide layouts still clamp for the fallback representation.
            #[test]
            fn overflow_detection_matches_reference(
                cards in collection::vec(1u16..2000, 0..24),
            ) {
                let codec = PackedKeyCodec::new(&cards);
                prop_assert_eq!(codec.fits_u128(), expected_bits(&cards) <= 128);
                let probe: Vec<u16> = cards.iter().map(|_| u16::MAX).collect();
                let clamped = codec.clamp(&probe);
                for (i, &c) in cards.iter().enumerate() {
                    prop_assert_eq!(clamped[i], c, "sentinel at position {}", i);
                }
            }

            /// Integer comparison of packed keys agrees with
            /// lexicographic comparison of the clamped unpacked keys —
            /// the sorted-group-storage invariant, fuzzed.
            #[test]
            fn packed_comparison_is_lexicographic(
                cards in collection::vec(1u16..300, 1..9),
                a_seed in collection::vec(0u16..600, 9..10),
                b_seed in collection::vec(0u16..600, 9..10),
            ) {
                let codec = PackedKeyCodec::new(&cards);
                prop_assert!(codec.fits_u128());
                let a: Vec<u16> = a_seed[..cards.len()].to_vec();
                let b: Vec<u16> = b_seed[..cards.len()].to_vec();
                let (ca, cb) = (codec.clamp(&a), codec.clamp(&b));
                prop_assert_eq!(codec.pack(&a).cmp(&codec.pack(&b)), ca.cmp(&cb));
            }

            /// A `u16::MAX` probe level packs to the same key as the
            /// reserved sentinel and never collides with a real level.
            #[test]
            fn max_probe_level_collapses_to_the_sentinel(
                cards in collection::vec(1u16..50, 1..10),
                pos_seed in 0usize..1000,
            ) {
                let codec = PackedKeyCodec::new(&cards);
                prop_assert!(codec.fits_u128());
                let pos = pos_seed % cards.len();
                let mut probe: Vec<u16> = cards.iter().map(|&c| c / 2).collect();
                probe[pos] = u16::MAX;
                let mut sentinel = probe.clone();
                sentinel[pos] = cards[pos];
                prop_assert_eq!(codec.pack(&probe), codec.pack(&sentinel));
                for real in 0..cards[pos] {
                    let mut other = probe.clone();
                    other[pos] = real;
                    prop_assert_ne!(codec.pack(&other), codec.pack(&probe));
                }
            }
        }
    }

    #[test]
    fn fast_hash_spreads_low_bits() {
        // Sequential keys must not collide in the low bits the map uses.
        let build = FastHash;
        let mut low7 = std::collections::HashSet::new();
        for k in 0u64..128 {
            low7.insert(build.hash_one(k) & 0x7f);
        }
        let mut low7_wide = std::collections::HashSet::new();
        for k in 0u128..128 {
            // Vary only the high half: low-bit spread must survive keys
            // that differ above bit 63.
            low7_wide.insert(build.hash_one(k << 64) & 0x7f);
        }
        assert!(
            low7_wide.len() > 64,
            "only {} distinct high-half patterns",
            low7_wide.len()
        );
        assert!(
            low7.len() > 64,
            "only {} distinct low-bit patterns",
            low7.len()
        );
    }
}
