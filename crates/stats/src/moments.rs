//! Moments of a sample: mean, variance, and the paper's skewness measure.
//!
//! §2.6 computes, for each configuration parameter, the population
//! skewness of its value distribution
//!
//! ```text
//!        (1/n) Σ (X_i − X̄)³
//! g1 = ───────────────────────
//!      [(1/n) Σ (X_i − X̄)²]^(3/2)
//! ```
//!
//! and classifies: |g1| ≤ 0.5 approximately symmetric, 0.5 < |g1| ≤ 1
//! moderately skewed, |g1| > 1 highly skewed. Fig. 4 reports that 33 of
//! the 65 parameters are highly skewed and 12 moderately.

/// Arithmetic mean. Returns `None` for an empty sample.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`). Returns `None` for an empty
/// sample.
pub fn population_variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population skewness `g1` per the §2.6 formula. Returns `None` when the
/// sample is empty or has zero variance (a constant parameter has no
/// asymmetry to measure).
pub fn skewness(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let n = xs.len() as f64;
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    if m2 <= 0.0 {
        return None;
    }
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
    Some(m3 / m2.powf(1.5))
}

/// The paper's three-way skewness classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Skew {
    /// |g1| ≤ 0.5 (the paper's "approximately symmetric"), or undefined
    /// (constant distribution).
    Symmetric,
    /// 0.5 < |g1| ≤ 1.
    Moderate,
    /// |g1| > 1.
    High,
}

impl Skew {
    /// Classifies a skewness coefficient; `None` (constant sample) counts
    /// as symmetric.
    pub fn classify(g1: Option<f64>) -> Skew {
        match g1 {
            None => Skew::Symmetric,
            Some(g) if g.abs() > 1.0 => Skew::High,
            Some(g) if g.abs() > 0.5 => Skew::Moderate,
            Some(_) => Skew::Symmetric,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Skew::Symmetric => "symmetric",
            Skew::Moderate => "moderate",
            Skew::High => "high",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(population_variance(&[1.0, 1.0, 1.0]), Some(0.0));
        // Var of {1..5} (population) = 2.
        let xs: Vec<f64> = (1..=5).map(|i| i as f64).collect();
        assert!((population_variance(&xs).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_sample_has_zero_skew() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(skewness(&xs).unwrap().abs() < 1e-12);
    }

    #[test]
    fn right_tail_gives_positive_skew() {
        // Mass at 0 with one long right tail value.
        let xs = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 10.0];
        let g = skewness(&xs).unwrap();
        assert!(g > 1.0, "g1 = {g}");
        assert_eq!(Skew::classify(Some(g)), Skew::High);
        // Mirrored sample flips the sign exactly.
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((skewness(&neg).unwrap() + g).abs() < 1e-12);
    }

    #[test]
    fn constant_sample_has_no_skewness() {
        assert_eq!(skewness(&[7.0; 20]), None);
        assert_eq!(Skew::classify(None), Skew::Symmetric);
    }

    #[test]
    fn skewness_is_shift_and_scale_invariant() {
        let xs = [0.0, 0.0, 1.0, 1.0, 1.0, 5.0, 9.0];
        let base = skewness(&xs).unwrap();
        let moved: Vec<f64> = xs.iter().map(|x| 3.0 * x + 100.0).collect();
        assert!((skewness(&moved).unwrap() - base).abs() < 1e-10);
        // Negative scale flips the sign.
        let flipped: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((skewness(&flipped).unwrap() + base).abs() < 1e-10);
    }

    #[test]
    fn classification_boundaries() {
        assert_eq!(Skew::classify(Some(0.5)), Skew::Symmetric);
        assert_eq!(Skew::classify(Some(0.51)), Skew::Moderate);
        assert_eq!(Skew::classify(Some(-0.7)), Skew::Moderate);
        assert_eq!(Skew::classify(Some(1.0)), Skew::Moderate);
        assert_eq!(Skew::classify(Some(-1.2)), Skew::High);
    }
}
