//! The chi-square distribution: CDF, p-values and critical values.
//!
//! Auric's dependency learner (§3.2) compares the chi-square statistic of
//! each (attribute, parameter) contingency table against the critical value
//! at significance level 0.01 with `df = (R-1)(C-1)` degrees of freedom.
//! A chi-square with `k` degrees of freedom is Gamma(k/2, 2), so the CDF is
//! the regularized incomplete gamma function `P(k/2, x/2)`.

use crate::special::{gamma_p, gamma_q};

/// CDF of the chi-square distribution with `df` degrees of freedom.
///
/// # Panics
/// Panics if `df == 0` or `x < 0`.
pub fn chi2_cdf(x: f64, df: usize) -> f64 {
    assert!(df > 0, "chi-square needs df >= 1");
    assert!(x >= 0.0, "chi-square support is x >= 0, got {x}");
    gamma_p(df as f64 / 2.0, x / 2.0)
}

/// Upper-tail p-value: `P[X >= x]` for chi-square with `df` degrees of
/// freedom. This is what gets compared against the significance level.
pub fn chi2_p_value(x: f64, df: usize) -> f64 {
    assert!(df > 0, "chi-square needs df >= 1");
    assert!(x >= 0.0, "chi-square support is x >= 0, got {x}");
    gamma_q(df as f64 / 2.0, x / 2.0)
}

/// Critical value `x*` such that `P[X >= x*] = alpha` for chi-square with
/// `df` degrees of freedom — the threshold the paper's test compares its
/// statistic against ("the critical value from the chi-square distribution
/// table", §3.2).
///
/// Computed by bisection on the CDF; accurate to ~1e-10.
///
/// # Panics
/// Panics if `alpha` is not in `(0, 1)` or `df == 0`.
pub fn chi2_critical(df: usize, alpha: f64) -> f64 {
    assert!(df > 0, "chi-square needs df >= 1");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "significance level must be in (0,1), got {alpha}"
    );
    let target = 1.0 - alpha;
    // Bracket: mean + a few standard deviations covers any practical alpha;
    // expand until the CDF passes the target.
    let mut hi = df as f64 + 10.0 * (2.0 * df as f64).sqrt() + 10.0;
    while chi2_cdf(hi, df) < target {
        hi *= 2.0;
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi2_cdf(mid, df) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * (1.0 + hi) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook chi-square critical values (df, alpha, x*).
    const TABLE: &[(usize, f64, f64)] = &[
        (1, 0.05, 3.841),
        (1, 0.01, 6.635),
        (2, 0.05, 5.991),
        (2, 0.01, 9.210),
        (4, 0.01, 13.277),
        (10, 0.05, 18.307),
        (10, 0.01, 23.209),
        (30, 0.01, 50.892),
        (100, 0.05, 124.342),
    ];

    #[test]
    fn matches_distribution_table() {
        for &(df, alpha, expect) in TABLE {
            let got = chi2_critical(df, alpha);
            assert!(
                (got - expect).abs() < 5e-3,
                "df={df} alpha={alpha}: got {got}, table {expect}"
            );
        }
    }

    #[test]
    fn critical_value_inverts_p_value() {
        for &(df, alpha, _) in TABLE {
            let x = chi2_critical(df, alpha);
            assert!((chi2_p_value(x, df) - alpha).abs() < 1e-8);
        }
    }

    #[test]
    fn cdf_properties() {
        assert_eq!(chi2_cdf(0.0, 3), 0.0);
        assert!((chi2_cdf(1e4, 3) - 1.0).abs() < 1e-12);
        // Median of chi-square(2) is 2 ln 2.
        assert!((chi2_cdf(2.0 * 2f64.ln(), 2) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn p_value_decreases_with_statistic() {
        let mut prev = 1.0;
        for i in 0..100 {
            let p = chi2_p_value(i as f64 * 0.7, 5);
            assert!(p <= prev + 1e-15);
            prev = p;
        }
    }

    #[test]
    fn stricter_alpha_needs_larger_statistic() {
        for df in [1, 3, 8, 20] {
            let lenient = chi2_critical(df, 0.05);
            let strict = chi2_critical(df, 0.01);
            assert!(strict > lenient, "df={df}");
        }
    }

    #[test]
    #[should_panic(expected = "significance level")]
    fn rejects_bad_alpha() {
        chi2_critical(3, 1.0);
    }
}
