//! Numeric substrate for the Auric reproduction.
//!
//! Everything statistical that the paper leans on lives here, implemented
//! from scratch so the workspace has no numerics dependency:
//!
//! - [`special`] — log-gamma and the regularized incomplete gamma function,
//!   the machinery under the chi-square distribution;
//! - [`chi2`] — chi-square CDF, p-values and critical values (the paper's
//!   §3.2 test of independence uses `p = 0.01`);
//! - [`contingency`] — contingency tables between an attribute and a
//!   parameter (Fig. 9) and the chi-square statistic over them (Eq. 3/4);
//! - [`moments`] — mean/variance/skewness; skewness uses exactly the §2.6
//!   formula and the paper's symmetric/moderate/high classification;
//! - [`matrix`] — a small dense row-major matrix for the MLP and Lasso;
//! - [`onehot`] — one-hot encoding of categorical rows (§3.1);
//! - [`impurity`] — Gini impurity and entropy for the tree learners;
//! - [`distance`] — the distance metrics of the k-NN learner;
//! - [`freq`] — frequency counting and majority/mode helpers used by the
//!   voting recommender;
//! - [`packed`] — mixed-radix packing of categorical keys into a `u64`
//!   and the multiply-shift hasher the vote tables index with.

pub mod chi2;
pub mod contingency;
pub mod distance;
pub mod freq;
pub mod impurity;
pub mod matrix;
pub mod moments;
pub mod onehot;
pub mod packed;
pub mod special;

pub use chi2::{chi2_cdf, chi2_critical, chi2_p_value};
pub use contingency::ContingencyTable;
pub use matrix::Matrix;
pub use moments::{skewness, Skew};
pub use onehot::OneHotEncoder;
pub use packed::{FastHash, PackedKeyCodec};
