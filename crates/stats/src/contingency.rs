//! Contingency tables and the chi-square test of independence (§3.2,
//! Fig. 9, Eq. 3–4).
//!
//! A table lays out joint counts `O_ab` of attribute level `a` against
//! parameter value `b` over the existing carriers. Auric computes the
//! statistic `χ² = Σ (O − E)² / E` with `E` the independence expectation
//! (Eq. 4) and rejects independence when it exceeds the critical value at
//! `df = (R−1)(C−1)`.

use crate::chi2::{chi2_critical, chi2_p_value};

/// A dense R×C contingency table of observation counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyTable {
    rows: usize,
    cols: usize,
    counts: Vec<u64>,
    row_totals: Vec<u64>,
    col_totals: Vec<u64>,
    total: u64,
}

/// Outcome of the chi-square test of independence over a table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Test {
    /// The statistic of Eq. 3 (0 when the table is degenerate).
    pub statistic: f64,
    /// Degrees of freedom `(R'−1)(C'−1)` over non-empty rows/columns.
    pub df: usize,
    /// Upper-tail p-value (1.0 when the table is degenerate).
    pub p_value: f64,
    /// Critical value at the requested significance level (0 when
    /// degenerate).
    pub critical: f64,
    /// True when independence is rejected, i.e. the attribute and the
    /// parameter are *dependent*.
    pub dependent: bool,
}

impl ContingencyTable {
    /// Creates an empty `rows × cols` table.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "table must have positive shape");
        Self {
            rows,
            cols,
            counts: vec![0; rows * cols],
            row_totals: vec![0; rows],
            col_totals: vec![0; cols],
            total: 0,
        }
    }

    /// Builds a table from paired categorical observations.
    pub fn from_pairs<I>(rows: usize, cols: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut t = Self::new(rows, cols);
        for (a, b) in pairs {
            t.add(a, b, 1);
        }
        t
    }

    /// Clears all counts, keeping the shape. Stratified tests sweep one
    /// reusable table across thousands of strata instead of allocating a
    /// dense table per stratum.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.row_totals.fill(0);
        self.col_totals.fill(0);
        self.total = 0;
    }

    /// Adds `n` observations of (row level `a`, column value `b`).
    pub fn add(&mut self, a: usize, b: usize, n: u64) {
        assert!(
            a < self.rows && b < self.cols,
            "cell ({a},{b}) out of range"
        );
        self.counts[a * self.cols + b] += n;
        self.row_totals[a] += n;
        self.col_totals[b] += n;
        self.total += n;
    }

    /// Observed count `O_ab`.
    pub fn observed(&self, a: usize, b: usize) -> u64 {
        self.counts[a * self.cols + b]
    }

    /// Expected count `E_ab` under independence (Eq. 4). Zero when the
    /// table is empty.
    pub fn expected(&self, a: usize, b: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.row_totals[a] as f64 * self.col_totals[b] as f64 / self.total as f64
    }

    /// Number of rows (attribute levels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (parameter values).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The chi-square statistic of Eq. 3, summed over cells whose expected
    /// count is positive (empty rows/columns contribute nothing).
    pub fn chi2_statistic(&self) -> f64 {
        let mut stat = 0.0;
        for a in 0..self.rows {
            if self.row_totals[a] == 0 {
                continue;
            }
            for b in 0..self.cols {
                if self.col_totals[b] == 0 {
                    continue;
                }
                let e = self.expected(a, b);
                let o = self.observed(a, b) as f64;
                stat += (o - e) * (o - e) / e;
            }
        }
        stat
    }

    /// Degrees of freedom over *non-empty* rows and columns. Declared
    /// levels that never occur in the data would otherwise inflate the
    /// critical value and mask real dependence.
    pub fn effective_df(&self) -> usize {
        let r = self.row_totals.iter().filter(|&&t| t > 0).count();
        let c = self.col_totals.iter().filter(|&&t| t > 0).count();
        (r.saturating_sub(1)) * (c.saturating_sub(1))
    }

    /// Runs the chi-square test of independence at significance `alpha`.
    ///
    /// Degenerate tables (everything in one row or one column, df = 0)
    /// cannot reject independence: a constant attribute or a constant
    /// parameter carries no signal.
    pub fn independence_test(&self, alpha: f64) -> Chi2Test {
        let df = self.effective_df();
        if df == 0 || self.total == 0 {
            return Chi2Test {
                statistic: 0.0,
                df,
                p_value: 1.0,
                critical: 0.0,
                dependent: false,
            };
        }
        let statistic = self.chi2_statistic();
        let critical = chi2_critical(df, alpha);
        Chi2Test {
            statistic,
            df,
            p_value: chi2_p_value(statistic, df),
            critical,
            dependent: statistic > critical,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_margins() {
        let t = ContingencyTable::from_pairs(2, 3, vec![(0, 0), (0, 0), (0, 2), (1, 1)]);
        assert_eq!(t.observed(0, 0), 2);
        assert_eq!(t.observed(1, 1), 1);
        assert_eq!(t.observed(1, 2), 0);
        assert_eq!(t.total(), 4);
        assert!((t.expected(0, 0) - 3.0 * 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_dependent_table_rejects_independence() {
        // Attribute level fully determines the value: diagonal table.
        let mut t = ContingencyTable::new(3, 3);
        for i in 0..3 {
            t.add(i, i, 40);
        }
        let test = t.independence_test(0.01);
        assert!(test.dependent, "diagonal table must be dependent");
        assert!(test.p_value < 1e-6);
        assert_eq!(test.df, 4);
    }

    #[test]
    fn independent_table_passes() {
        // Same column distribution in every row → statistic 0.
        let mut t = ContingencyTable::new(2, 2);
        t.add(0, 0, 30);
        t.add(0, 1, 70);
        t.add(1, 0, 30);
        t.add(1, 1, 70);
        let test = t.independence_test(0.01);
        assert!(!test.dependent);
        assert!(test.statistic.abs() < 1e-9);
        assert!((test.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn textbook_statistic() {
        // Classic 2x2 example: O = [[20,30],[30,20]], E = 25 everywhere,
        // χ² = 4 * (5²/25) = 4.
        let mut t = ContingencyTable::new(2, 2);
        t.add(0, 0, 20);
        t.add(0, 1, 30);
        t.add(1, 0, 30);
        t.add(1, 1, 20);
        assert!((t.chi2_statistic() - 4.0).abs() < 1e-12);
        // df = 1, critical at 0.05 is 3.841 → dependent at 0.05 ...
        assert!(t.independence_test(0.05).dependent);
        // ... but not at 0.01 (critical 6.635).
        assert!(!t.independence_test(0.01).dependent);
    }

    #[test]
    fn empty_rows_and_columns_are_ignored() {
        // Declared shape 4x5 but only a 2x2 sub-table occupied.
        let mut t = ContingencyTable::new(4, 5);
        t.add(0, 0, 50);
        t.add(2, 3, 50);
        assert_eq!(t.effective_df(), 1);
        assert!(t.independence_test(0.01).dependent);
    }

    #[test]
    fn degenerate_tables_cannot_reject() {
        // Constant parameter: one occupied column.
        let mut t = ContingencyTable::new(3, 4);
        t.add(0, 1, 10);
        t.add(1, 1, 20);
        t.add(2, 1, 30);
        let test = t.independence_test(0.01);
        assert_eq!(test.df, 0);
        assert!(!test.dependent);
        // Empty table.
        let empty = ContingencyTable::new(2, 2);
        assert!(!empty.independence_test(0.01).dependent);
    }

    #[test]
    fn reset_clears_counts_and_margins() {
        let mut t = ContingencyTable::from_pairs(2, 3, vec![(0, 0), (1, 2)]);
        t.reset();
        assert_eq!(t, ContingencyTable::new(2, 3));
        t.add(1, 1, 7);
        assert_eq!(t.total(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_checks_bounds() {
        let mut t = ContingencyTable::new(2, 2);
        t.add(2, 0, 1);
    }
}
