//! Special functions: log-gamma and the regularized incomplete gamma
//! function, which together give the chi-square distribution its CDF.
//!
//! Implementations follow the classic series / continued-fraction split
//! (Numerical Recipes §6.2): the series converges fast for `x < a + 1`,
//! the Lentz continued fraction elsewhere. Accuracy is ~1e-12 over the
//! range the chi-square tests need (a = df/2 ≤ ~500).

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, 9 coefficients). Valid for `x > 0`.
#[allow(clippy::excessive_precision)] // published Lanczos coefficients kept verbatim
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its sweet spot.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`, i.e.
/// `γ(a, x) / Γ(a)`. Requires `a > 0`, `x >= 0`. `P(a, 0) = 0`,
/// `P(a, ∞) = 1`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, converging for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified-Lentz continued fraction for `Q(a, x)`, converging for
/// `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!((lg - f.ln()).abs() < 1e-10, "Γ({})", n + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        // Γ(3/2) = sqrt(pi)/2.
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expect).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!((gamma_p(2.0, 1e6) - 1.0).abs() < 1e-12);
        assert!((gamma_q(2.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.1, 0.9, 2.0, 9.5, 48.0, 120.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a={a} x={x} sum={s}");
            }
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^-x (exponential CDF).
        for &x in &[0.25f64, 1.0, 3.0, 7.0] {
            let expect = 1.0 - (-x).exp();
            assert!((gamma_p(1.0, x) - expect).abs() < 1e-12, "x={x}");
        }
        // P(0.5, x) = erf(sqrt(x)); check at x where erf is well known:
        // erf(1) = 0.8427007929497149.
        assert!((gamma_p(0.5, 1.0) - 0.842_700_792_949_714_9).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_is_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.5;
            let p = gamma_p(7.5, x);
            assert!(p >= prev, "P must be nondecreasing at x={x}");
            prev = p;
        }
    }
}
