//! Frequency counting over categorical values: the machinery under the
//! voting recommender (§3.2's "parameter value that has highest support")
//! and the variability analysis (§2.6).

use serde::{map_field, DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;

/// Distinct values a table holds before its counts spill from the inline
/// arrays to a heap map. Vote-table groups overwhelmingly hold one or two
/// distinct values (a group is carriers that *agree* on the dependent
/// attributes, and operators configure them consistently), so nearly every
/// group stays heap-free; the paper-scale fit keeps tens of millions of
/// these alive at once and the per-table `HashMap` allocation used to
/// dominate its RSS.
const INLINE_CAP: usize = 3;

/// A multiset of `u16` values with O(1) add/remove and majority queries.
///
/// The collaborative-filtering voter keeps one of these per carrier group;
/// leave-one-out evaluation removes the probe carrier's own value before
/// asking for the winner and re-adds it afterwards.
///
/// Counts for up to [`INLINE_CAP`] distinct values live inline (32 bytes,
/// no heap); tables wider than that spill to a boxed map and stay spilled.
/// Equality and the serialized form are representation-independent.
#[derive(Debug, Clone)]
pub struct FreqTable {
    counts: Counts,
    total: usize,
}

/// Count storage: inline arrays sorted ascending by value, or the spilled
/// heap map.
///
/// The box is load-bearing, not an accident (`clippy::box_collection`
/// assumes the latter): an unboxed map variant would put 48 bytes in every
/// *inline* table too, since an enum is as large as its largest variant.
#[allow(clippy::box_collection)]
#[derive(Debug, Clone)]
enum Counts {
    Small {
        len: u8,
        vals: [u16; INLINE_CAP],
        counts: [u32; INLINE_CAP],
    },
    Large(Box<HashMap<u16, usize>>),
}

impl Default for FreqTable {
    fn default() -> Self {
        Self {
            counts: Counts::Small {
                len: 0,
                vals: [0; INLINE_CAP],
                counts: [0; INLINE_CAP],
            },
            total: 0,
        }
    }
}

impl FreqTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table from values.
    pub fn from_values<I: IntoIterator<Item = u16>>(values: I) -> Self {
        let mut t = Self::new();
        for v in values {
            t.add(v);
        }
        t
    }

    /// Records one observation of `v`.
    pub fn add(&mut self, v: u16) {
        self.total += 1;
        let spill = match &mut self.counts {
            Counts::Small { len, vals, counts } => {
                let n = *len as usize;
                match vals[..n].binary_search(&v) {
                    Ok(i) if counts[i] < u32::MAX => {
                        counts[i] += 1;
                        false
                    }
                    Err(i) if n < INLINE_CAP => {
                        for j in (i..n).rev() {
                            vals[j + 1] = vals[j];
                            counts[j + 1] = counts[j];
                        }
                        vals[i] = v;
                        counts[i] = 1;
                        *len = (n + 1) as u8;
                        false
                    }
                    // A fourth distinct value, or an inline count at
                    // saturation: move to the heap map and count there.
                    _ => true,
                }
            }
            Counts::Large(map) => {
                *map.entry(v).or_insert(0) += 1;
                false
            }
        };
        if spill {
            self.spill();
            let Counts::Large(map) = &mut self.counts else {
                unreachable!("spill() always leaves the table spilled")
            };
            *map.entry(v).or_insert(0) += 1;
        }
    }

    /// Removes one observation of `v`.
    ///
    /// # Panics
    /// Panics if `v` has no remaining observations — removing something
    /// never added is always a logic error in the caller.
    pub fn remove(&mut self, v: u16) {
        match &mut self.counts {
            Counts::Small { len, vals, counts } => {
                let n = *len as usize;
                let i = vals[..n]
                    .binary_search(&v)
                    .unwrap_or_else(|_| panic!("removing value {v} that was never added"));
                counts[i] -= 1;
                if counts[i] == 0 {
                    for j in i..n - 1 {
                        vals[j] = vals[j + 1];
                        counts[j] = counts[j + 1];
                    }
                    *len = (n - 1) as u8;
                }
            }
            Counts::Large(map) => {
                let c = map
                    .get_mut(&v)
                    .unwrap_or_else(|| panic!("removing value {v} that was never added"));
                *c -= 1;
                if *c == 0 {
                    map.remove(&v);
                }
            }
        }
        self.total -= 1;
    }

    /// Moves inline counts to the heap map. No-op when already spilled.
    fn spill(&mut self) {
        if let Counts::Small { len, vals, counts } = &self.counts {
            let n = *len as usize;
            let map: HashMap<u16, usize> = vals[..n]
                .iter()
                .zip(&counts[..n])
                .map(|(&v, &c)| (v, c as usize))
                .collect();
            self.counts = Counts::Large(Box::new(map));
        }
    }

    /// Total observation count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count of value `v`.
    pub fn count(&self, v: u16) -> usize {
        match &self.counts {
            Counts::Small { len, vals, counts } => vals[..*len as usize]
                .binary_search(&v)
                .map(|i| counts[i] as usize)
                .unwrap_or(0),
            Counts::Large(map) => map.get(&v).copied().unwrap_or(0),
        }
    }

    /// Number of distinct values currently present (the paper's
    /// *variability*).
    pub fn distinct(&self) -> usize {
        match &self.counts {
            Counts::Small { len, .. } => *len as usize,
            Counts::Large(map) => map.len(),
        }
    }

    /// The value with the highest count and that count. Ties break toward
    /// the smallest value so results are deterministic. `None` when empty.
    pub fn majority(&self) -> Option<(u16, usize)> {
        self.iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// The majority value if its support ratio is at least `threshold`
    /// (e.g. the paper's 0.75). `None` when empty or below threshold.
    pub fn majority_with_support(&self, threshold: f64) -> Option<(u16, usize)> {
        let (v, c) = self.majority()?;
        (c as f64 >= threshold * self.total as f64).then_some((v, c))
    }

    /// Iterates `(value, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, usize)> + '_ {
        let (small, large) = match &self.counts {
            Counts::Small { len, vals, counts } => {
                let n = *len as usize;
                (Some(vals[..n].iter().zip(&counts[..n])), None)
            }
            Counts::Large(map) => (None, Some(map.iter())),
        };
        small
            .into_iter()
            .flatten()
            .map(|(&v, &c)| (v, c as usize))
            .chain(large.into_iter().flatten().map(|(&v, &c)| (v, c)))
    }

    /// Majority query with one observation of `exclude` virtually removed
    /// — the read-only leave-one-out form the recommender's evaluation
    /// uses (the table itself is shared across threads and never mutated).
    ///
    /// Returns `(value, count, total)` over the reduced table when the
    /// winner's support ratio reaches `threshold`; `None` when the reduced
    /// table is empty or support falls short. Excluding a value not in the
    /// table is a caller bug and panics.
    pub fn majority_with_support_excluding(
        &self,
        exclude: Option<u16>,
        threshold: f64,
    ) -> Option<(u16, usize, usize)> {
        let mut total = self.total;
        if let Some(e) = exclude {
            assert!(
                self.count(e) > 0,
                "excluding value {e} that was never added"
            );
            total -= 1;
        }
        if total == 0 {
            return None;
        }
        let mut best: Option<(u16, usize)> = None;
        for (v, c) in self.iter() {
            let c = if Some(v) == exclude { c - 1 } else { c };
            if c == 0 {
                continue;
            }
            best = match best {
                None => Some((v, c)),
                Some((bv, bc)) if c > bc || (c == bc && v < bv) => Some((v, c)),
                keep => keep,
            };
        }
        let (v, c) = best?;
        (c as f64 >= threshold * total as f64).then_some((v, c, total))
    }

    /// Adds `c` observations of `v` at once — the bulk form of
    /// [`FreqTable::add`], equivalent to calling it `c` times.
    ///
    /// Counts saturate at `usize::MAX` instead of wrapping (a wrap here
    /// used to corrupt the `total` invariant after weeks of incremental
    /// refits in a long-running service). Returns `true` when anything
    /// was clamped so callers can surface the event — a saturated table
    /// still answers majority queries, but its `total` is a floor, not an
    /// exact count.
    pub fn add_count(&mut self, v: u16, c: usize) -> bool {
        if c == 0 {
            return false;
        }
        let mut saturated = false;
        self.total = self.total.checked_add(c).unwrap_or_else(|| {
            saturated = true;
            usize::MAX
        });
        let spill = match &mut self.counts {
            Counts::Small { len, vals, counts } => {
                let n = *len as usize;
                match vals[..n].binary_search(&v) {
                    // checked_add: `count as usize + c` itself can wrap
                    // when `c` is huge, which is exactly the case this
                    // guard exists for.
                    Ok(i)
                        if (counts[i] as usize)
                            .checked_add(c)
                            .is_some_and(|s| s <= u32::MAX as usize) =>
                    {
                        counts[i] += c as u32;
                        false
                    }
                    Err(i) if n < INLINE_CAP && c <= u32::MAX as usize => {
                        for j in (i..n).rev() {
                            vals[j + 1] = vals[j];
                            counts[j + 1] = counts[j];
                        }
                        vals[i] = v;
                        counts[i] = c as u32;
                        *len = (n + 1) as u8;
                        false
                    }
                    _ => true,
                }
            }
            Counts::Large(map) => {
                let e = map.entry(v).or_insert(0);
                *e = e.checked_add(c).unwrap_or_else(|| {
                    saturated = true;
                    usize::MAX
                });
                false
            }
        };
        if spill {
            self.spill();
            let Counts::Large(map) = &mut self.counts else {
                unreachable!("spill() always leaves the table spilled")
            };
            let e = map.entry(v).or_insert(0);
            *e = e.checked_add(c).unwrap_or_else(|| {
                saturated = true;
                usize::MAX
            });
        }
        saturated
    }

    /// Merges another table's counts into this one — the union of the two
    /// multisets. The backoff recommender uses this to aggregate a prefix
    /// group from its full-key subgroups on demand instead of keeping an
    /// eagerly materialized table per prefix level.
    ///
    /// Saturates like [`FreqTable::add_count`]; returns `true` when any
    /// count clamped.
    pub fn merge(&mut self, other: &FreqTable) -> bool {
        let mut saturated = false;
        for (v, c) in other.iter() {
            saturated |= self.add_count(v, c);
        }
        saturated
    }

    /// The `(value, count)` pairs sorted by value — the canonical form
    /// equality and serialization are defined over.
    fn sorted_pairs(&self) -> Vec<(u16, usize)> {
        let mut pairs: Vec<(u16, usize)> = self.iter().collect();
        pairs.sort_unstable();
        pairs
    }

    /// Sets `v`'s count to exactly `c` (last write wins), mirroring the
    /// map-insert semantics the wire format deserializes with.
    fn set_count(&mut self, v: u16, c: usize) {
        let spill = match &mut self.counts {
            Counts::Small { len, vals, counts } => {
                let n = *len as usize;
                match vals[..n].binary_search(&v) {
                    Ok(i) if c <= u32::MAX as usize => {
                        counts[i] = c as u32;
                        false
                    }
                    Err(i) if n < INLINE_CAP && c <= u32::MAX as usize => {
                        for j in (i..n).rev() {
                            vals[j + 1] = vals[j];
                            counts[j + 1] = counts[j];
                        }
                        vals[i] = v;
                        counts[i] = c as u32;
                        *len = (n + 1) as u8;
                        false
                    }
                    _ => true,
                }
            }
            Counts::Large(_) => true,
        };
        if spill {
            self.spill();
            let Counts::Large(map) = &mut self.counts else {
                unreachable!("spill() always leaves the table spilled")
            };
            map.insert(v, c);
        }
    }
}

/// Representation-independent: a spilled table equals an inline table with
/// the same contents.
impl PartialEq for FreqTable {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total && self.sorted_pairs() == other.sorted_pairs()
    }
}

impl Eq for FreqTable {}

/// Wire format: `{"counts": [[value, count], ...], "total": n}` with the
/// pairs sorted by value — JSON map keys must be strings, so a map-shaped
/// encoding would not round-trip `u16` keys.
impl Serialize for FreqTable {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("counts".to_string(), self.sorted_pairs().to_value()),
            ("total".to_string(), self.total.to_value()),
        ])
    }
}

impl Deserialize for FreqTable {
    /// Strict parse: the wire pairs must be internally consistent — no
    /// duplicate values, no zero counts, and a `total` that equals the sum
    /// of the counts. The serializer can only emit such tables, so honest
    /// files round-trip unchanged; a corrupted or hand-mutated file gets a
    /// typed error here instead of an inconsistent table that trips
    /// arithmetic assertions (e.g. leave-one-out exclusion) much later.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let counts: Vec<(u16, usize)> = Deserialize::from_value(map_field(v, "counts")?)?;
        let total: usize = Deserialize::from_value(map_field(v, "total")?)?;
        let mut t = FreqTable::new();
        let mut sum = 0usize;
        for &(value, count) in &counts {
            if count == 0 {
                return Err(DeError::custom(format!(
                    "freq table: zero count for value {value}"
                )));
            }
            if t.count(value) != 0 {
                return Err(DeError::custom(format!(
                    "freq table: duplicate value {value}"
                )));
            }
            sum = sum
                .checked_add(count)
                .ok_or_else(|| DeError::custom("freq table: count sum overflows"))?;
            t.set_count(value, count);
        }
        if sum != total {
            return Err(DeError::custom(format!(
                "freq table: total {total} != sum of counts {sum}"
            )));
        }
        t.total = total;
        Ok(t)
    }
}

/// Number of distinct values in a slice (convenience for the variability
/// figures).
pub fn distinct_count(values: &[u16]) -> usize {
    let mut s: Vec<u16> = values.to_vec();
    s.sort_unstable();
    s.dedup();
    s.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trip() {
        let mut t = FreqTable::from_values([3, 3, 5]);
        assert_eq!(t.total(), 3);
        assert_eq!(t.count(3), 2);
        t.remove(3);
        assert_eq!(t.count(3), 1);
        t.remove(3);
        assert_eq!(t.count(3), 0);
        assert_eq!(t.distinct(), 1);
        assert_eq!(t.total(), 1);
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn remove_unknown_panics() {
        FreqTable::new().remove(9);
    }

    #[test]
    fn merge_equals_repeated_add_across_the_spill_boundary() {
        // Merging must match adding the other table's observations one by
        // one — including when the union's distinct count crosses the
        // inline capacity and the receiver spills mid-merge.
        let mut a = FreqTable::from_values([1, 1, 2, 3]);
        let b = FreqTable::from_values([2, 4, 4, 5, 6]);
        let mut expected = a.clone();
        for v in [2, 4, 4, 5, 6] {
            expected.add(v);
        }
        a.merge(&b);
        assert_eq!(a, expected);
        assert_eq!(a.total(), 9);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(4), 2);
        // Merging an empty table is a no-op; merging into an empty table
        // clones the source's distribution.
        let before = a.clone();
        a.merge(&FreqTable::new());
        assert_eq!(a, before);
        let mut fresh = FreqTable::new();
        fresh.merge(&b);
        assert_eq!(fresh, b);
    }

    #[test]
    fn merge_near_max_saturates_instead_of_overflowing() {
        // Regression: counts near usize::MAX used to wrap on merge (debug
        // panic, silent corruption in release). They must clamp and
        // report.
        let mut a = FreqTable::new();
        assert!(!a.add_count(7, usize::MAX - 1));
        let mut b = FreqTable::new();
        assert!(!b.add_count(7, 5));
        assert!(!b.add_count(3, 10));
        // 7's count: (MAX-1) + 5 clamps; total clamps too.
        assert!(a.merge(&b), "merge must report the clamp");
        assert_eq!(a.count(7), usize::MAX);
        assert_eq!(a.count(3), 10);
        assert_eq!(a.total(), usize::MAX);
        // The saturated table still answers queries deterministically.
        assert_eq!(a.majority(), Some((7, usize::MAX)));
        // Merging more into a saturated count stays clamped and keeps
        // reporting.
        assert!(a.merge(&b));
        assert_eq!(a.count(7), usize::MAX);
        // A clamp on the inline→spill path: a huge count lands on an
        // existing inline value.
        let mut c = FreqTable::new();
        c.add(2);
        assert!(!c.add_count(2, usize::MAX - 1));
        assert!(c.add_count(2, usize::MAX / 2), "spilled count must clamp");
        assert_eq!(c.count(2), usize::MAX);
        // Ordinary merges never report saturation.
        let mut small = FreqTable::from_values([1, 2]);
        assert!(!small.merge(&FreqTable::from_values([2, 3, 4, 5])));
    }

    #[test]
    fn majority_and_ties() {
        let t = FreqTable::from_values([1, 2, 2, 3, 3]);
        // Tie between 2 and 3 at count 2 → smaller value wins.
        assert_eq!(t.majority(), Some((2, 2)));
        assert_eq!(FreqTable::new().majority(), None);
    }

    #[test]
    fn support_threshold_semantics() {
        let t = FreqTable::from_values([7, 7, 7, 1]);
        // 7 has 3/4 = exactly 75% support: threshold is inclusive.
        assert_eq!(t.majority_with_support(0.75), Some((7, 3)));
        assert_eq!(t.majority_with_support(0.76), None);
        assert_eq!(t.majority_with_support(0.5), Some((7, 3)));
        // Single value trivially has 100% support.
        let one = FreqTable::from_values([4]);
        assert_eq!(one.majority_with_support(1.0), Some((4, 1)));
    }

    #[test]
    fn leave_one_out_pattern() {
        // The voter's usage pattern: remove own value, query, re-add.
        let mut t = FreqTable::from_values([5, 5, 5, 9]);
        t.remove(9);
        assert_eq!(t.majority_with_support(0.75), Some((5, 3)));
        t.add(9);
        t.remove(5);
        // Remaining 5,5,9 → 2/3 support < 75%.
        assert_eq!(t.majority_with_support(0.75), None);
        t.add(5);
        assert_eq!(t.total(), 4);
    }

    #[test]
    fn excluding_matches_mutating_leave_one_out() {
        let t = FreqTable::from_values([5, 5, 5, 9]);
        // Excluding the odd one out: 5 has 3/3 support.
        assert_eq!(
            t.majority_with_support_excluding(Some(9), 0.75),
            Some((5, 3, 3))
        );
        // Excluding a 5: remaining 5,5,9 → 2/3 < 75%.
        assert_eq!(t.majority_with_support_excluding(Some(5), 0.75), None);
        // No exclusion behaves like majority_with_support.
        assert_eq!(
            t.majority_with_support_excluding(None, 0.75),
            Some((5, 3, 4))
        );
        // Original table untouched.
        assert_eq!(t.total(), 4);
    }

    #[test]
    fn excluding_the_only_value_empties_the_table() {
        let t = FreqTable::from_values([2]);
        assert_eq!(t.majority_with_support_excluding(Some(2), 0.5), None);
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn excluding_unknown_value_panics() {
        FreqTable::from_values([1]).majority_with_support_excluding(Some(9), 0.5);
    }

    #[test]
    fn distinct_count_helper() {
        assert_eq!(distinct_count(&[1, 1, 2, 9, 9, 9]), 3);
        assert_eq!(distinct_count(&[]), 0);
    }

    #[test]
    fn spilling_past_inline_capacity_preserves_every_query() {
        // 5 distinct values crosses INLINE_CAP mid-build.
        let t = FreqTable::from_values([4, 1, 4, 3, 2, 0, 4, 2]);
        assert_eq!(t.total(), 8);
        assert_eq!(t.distinct(), 5);
        for (v, c) in [(0, 1), (1, 1), (2, 2), (3, 1), (4, 3), (9, 0)] {
            assert_eq!(t.count(v), c, "count({v})");
        }
        assert_eq!(t.majority(), Some((4, 3)));
        assert_eq!(
            t.majority_with_support_excluding(Some(4), 0.25),
            Some((2, 2, 7))
        );
        let mut pairs: Vec<(u16, usize)> = t.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 1), (2, 2), (3, 1), (4, 3)]);
    }

    #[test]
    fn spilled_and_inline_tables_with_equal_contents_are_equal() {
        // Spill by exceeding the cap, then remove back under it: the table
        // stays spilled but must equal the never-spilled twin.
        let mut spilled = FreqTable::from_values([1, 1, 2, 3, 4]);
        spilled.remove(4);
        let inline = FreqTable::from_values([3, 2, 1, 1]);
        assert_eq!(spilled, inline);
        assert_eq!(inline, spilled);
        spilled.add(2);
        assert_ne!(spilled, inline);
    }

    #[test]
    fn remove_in_the_middle_keeps_inline_order() {
        let mut t = FreqTable::from_values([9, 5, 7]);
        t.remove(7);
        assert_eq!(t.distinct(), 2);
        assert_eq!(t.count(5), 1);
        assert_eq!(t.count(7), 0);
        assert_eq!(t.count(9), 1);
        // Insertion stays sorted after the hole closes.
        t.add(6);
        assert_eq!(t.majority(), Some((5, 1)));
    }

    #[test]
    fn serde_wire_format_is_sorted_pairs() {
        let t = FreqTable::from_values([9, 2, 2, 5, 9, 9]);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, r#"{"counts":[[2,2],[5,1],[9,3]],"total":6}"#);
        let back: FreqTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        // A spilled table serializes identically and round-trips.
        let wide = FreqTable::from_values([0, 1, 2, 3, 4, 4]);
        let back: FreqTable = serde_json::from_str(&serde_json::to_string(&wide).unwrap()).unwrap();
        assert_eq!(back, wide);
        assert_eq!(back.majority(), Some((4, 2)));
    }

    mod differential {
        use super::*;
        use proptest::prelude::*;

        /// Reference model: the plain map the table used to be built on.
        #[derive(Default)]
        struct Naive {
            counts: HashMap<u16, usize>,
            total: usize,
        }

        impl Naive {
            fn add(&mut self, v: u16) {
                *self.counts.entry(v).or_insert(0) += 1;
                self.total += 1;
            }
            fn remove(&mut self, v: u16) {
                let c = self.counts.get_mut(&v).unwrap();
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&v);
                }
                self.total -= 1;
            }
            fn majority(&self) -> Option<(u16, usize)> {
                self.counts
                    .iter()
                    .map(|(&v, &c)| (v, c))
                    .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Random add/remove interleavings: every query agrees with
            /// the naive map at every step, across the spill boundary.
            #[test]
            fn table_matches_naive_map(
                ops in proptest::collection::vec((0u16..6, 0u8..2), 1..40)
            ) {
                let mut t = FreqTable::new();
                let mut n = Naive::default();
                for (v, is_add) in ops {
                    let is_add = is_add == 1;
                    if is_add || n.counts.get(&v).copied().unwrap_or(0) == 0 {
                        t.add(v);
                        n.add(v);
                    } else {
                        t.remove(v);
                        n.remove(v);
                    }
                    prop_assert_eq!(t.total(), n.total);
                    prop_assert_eq!(t.distinct(), n.counts.len());
                    prop_assert_eq!(t.majority(), n.majority());
                    for v in 0u16..6 {
                        prop_assert_eq!(t.count(v), n.counts.get(&v).copied().unwrap_or(0));
                    }
                    let mut pairs: Vec<(u16, usize)> = t.iter().collect();
                    pairs.sort_unstable();
                    let mut naive_pairs: Vec<(u16, usize)> =
                        n.counts.iter().map(|(&v, &c)| (v, c)).collect();
                    naive_pairs.sort_unstable();
                    prop_assert_eq!(pairs, naive_pairs);
                    // Round-trip through the wire format at every step.
                    let json = serde_json::to_string(&t).unwrap();
                    let back: FreqTable = serde_json::from_str(&json).unwrap();
                    prop_assert_eq!(back, t.clone());
                }
            }
        }
    }
}
