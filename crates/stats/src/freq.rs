//! Frequency counting over categorical values: the machinery under the
//! voting recommender (§3.2's "parameter value that has highest support")
//! and the variability analysis (§2.6).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A multiset of `u16` values with O(1) add/remove and majority queries.
///
/// The collaborative-filtering voter keeps one of these per carrier group;
/// leave-one-out evaluation removes the probe carrier's own value before
/// asking for the winner and re-adds it afterwards.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreqTable {
    /// Serialized as `(value, count)` pairs: JSON map keys must be
    /// strings, so a `HashMap<u16, _>` would not round-trip.
    #[serde(with = "counts_serde")]
    counts: HashMap<u16, usize>,
    total: usize,
}

/// Vec-of-pairs (de)serialization for the count map.
mod counts_serde {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    pub fn serialize<S: Serializer>(map: &HashMap<u16, usize>, ser: S) -> Result<S::Ok, S::Error> {
        let mut pairs: Vec<(u16, usize)> = map.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        pairs.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<HashMap<u16, usize>, D::Error> {
        let pairs: Vec<(u16, usize)> = Vec::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

impl FreqTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table from values.
    pub fn from_values<I: IntoIterator<Item = u16>>(values: I) -> Self {
        let mut t = Self::new();
        for v in values {
            t.add(v);
        }
        t
    }

    /// Records one observation of `v`.
    pub fn add(&mut self, v: u16) {
        *self.counts.entry(v).or_insert(0) += 1;
        self.total += 1;
    }

    /// Removes one observation of `v`.
    ///
    /// # Panics
    /// Panics if `v` has no remaining observations — removing something
    /// never added is always a logic error in the caller.
    pub fn remove(&mut self, v: u16) {
        let c = self
            .counts
            .get_mut(&v)
            .unwrap_or_else(|| panic!("removing value {v} that was never added"));
        *c -= 1;
        if *c == 0 {
            self.counts.remove(&v);
        }
        self.total -= 1;
    }

    /// Total observation count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count of value `v`.
    pub fn count(&self, v: u16) -> usize {
        self.counts.get(&v).copied().unwrap_or(0)
    }

    /// Number of distinct values currently present (the paper's
    /// *variability*).
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The value with the highest count and that count. Ties break toward
    /// the smallest value so results are deterministic. `None` when empty.
    pub fn majority(&self) -> Option<(u16, usize)> {
        self.counts
            .iter()
            .map(|(&v, &c)| (v, c))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// The majority value if its support ratio is at least `threshold`
    /// (e.g. the paper's 0.75). `None` when empty or below threshold.
    pub fn majority_with_support(&self, threshold: f64) -> Option<(u16, usize)> {
        let (v, c) = self.majority()?;
        (c as f64 >= threshold * self.total as f64).then_some((v, c))
    }

    /// Iterates `(value, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, usize)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Majority query with one observation of `exclude` virtually removed
    /// — the read-only leave-one-out form the recommender's evaluation
    /// uses (the table itself is shared across threads and never mutated).
    ///
    /// Returns `(value, count, total)` over the reduced table when the
    /// winner's support ratio reaches `threshold`; `None` when the reduced
    /// table is empty or support falls short. Excluding a value not in the
    /// table is a caller bug and panics.
    pub fn majority_with_support_excluding(
        &self,
        exclude: Option<u16>,
        threshold: f64,
    ) -> Option<(u16, usize, usize)> {
        let mut total = self.total;
        if let Some(e) = exclude {
            assert!(
                self.count(e) > 0,
                "excluding value {e} that was never added"
            );
            total -= 1;
        }
        if total == 0 {
            return None;
        }
        let mut best: Option<(u16, usize)> = None;
        for (&v, &c) in &self.counts {
            let c = if Some(v) == exclude { c - 1 } else { c };
            if c == 0 {
                continue;
            }
            best = match best {
                None => Some((v, c)),
                Some((bv, bc)) if c > bc || (c == bc && v < bv) => Some((v, c)),
                keep => keep,
            };
        }
        let (v, c) = best?;
        (c as f64 >= threshold * total as f64).then_some((v, c, total))
    }
}

/// Number of distinct values in a slice (convenience for the variability
/// figures).
pub fn distinct_count(values: &[u16]) -> usize {
    let mut s: Vec<u16> = values.to_vec();
    s.sort_unstable();
    s.dedup();
    s.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trip() {
        let mut t = FreqTable::from_values([3, 3, 5]);
        assert_eq!(t.total(), 3);
        assert_eq!(t.count(3), 2);
        t.remove(3);
        assert_eq!(t.count(3), 1);
        t.remove(3);
        assert_eq!(t.count(3), 0);
        assert_eq!(t.distinct(), 1);
        assert_eq!(t.total(), 1);
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn remove_unknown_panics() {
        FreqTable::new().remove(9);
    }

    #[test]
    fn majority_and_ties() {
        let t = FreqTable::from_values([1, 2, 2, 3, 3]);
        // Tie between 2 and 3 at count 2 → smaller value wins.
        assert_eq!(t.majority(), Some((2, 2)));
        assert_eq!(FreqTable::new().majority(), None);
    }

    #[test]
    fn support_threshold_semantics() {
        let t = FreqTable::from_values([7, 7, 7, 1]);
        // 7 has 3/4 = exactly 75% support: threshold is inclusive.
        assert_eq!(t.majority_with_support(0.75), Some((7, 3)));
        assert_eq!(t.majority_with_support(0.76), None);
        assert_eq!(t.majority_with_support(0.5), Some((7, 3)));
        // Single value trivially has 100% support.
        let one = FreqTable::from_values([4]);
        assert_eq!(one.majority_with_support(1.0), Some((4, 1)));
    }

    #[test]
    fn leave_one_out_pattern() {
        // The voter's usage pattern: remove own value, query, re-add.
        let mut t = FreqTable::from_values([5, 5, 5, 9]);
        t.remove(9);
        assert_eq!(t.majority_with_support(0.75), Some((5, 3)));
        t.add(9);
        t.remove(5);
        // Remaining 5,5,9 → 2/3 support < 75%.
        assert_eq!(t.majority_with_support(0.75), None);
        t.add(5);
        assert_eq!(t.total(), 4);
    }

    #[test]
    fn excluding_matches_mutating_leave_one_out() {
        let t = FreqTable::from_values([5, 5, 5, 9]);
        // Excluding the odd one out: 5 has 3/3 support.
        assert_eq!(
            t.majority_with_support_excluding(Some(9), 0.75),
            Some((5, 3, 3))
        );
        // Excluding a 5: remaining 5,5,9 → 2/3 < 75%.
        assert_eq!(t.majority_with_support_excluding(Some(5), 0.75), None);
        // No exclusion behaves like majority_with_support.
        assert_eq!(
            t.majority_with_support_excluding(None, 0.75),
            Some((5, 3, 4))
        );
        // Original table untouched.
        assert_eq!(t.total(), 4);
    }

    #[test]
    fn excluding_the_only_value_empties_the_table() {
        let t = FreqTable::from_values([2]);
        assert_eq!(t.majority_with_support_excluding(Some(2), 0.5), None);
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn excluding_unknown_value_panics() {
        FreqTable::from_values([1]).majority_with_support_excluding(Some(9), 0.5);
    }

    #[test]
    fn distinct_count_helper() {
        assert_eq!(distinct_count(&[1, 1, 2, 9, 9, 9]), 3);
        assert_eq!(distinct_count(&[]), 0);
    }
}
