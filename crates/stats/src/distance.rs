//! Distance metrics for the k-NN learner (§4.2 uses Euclidean distance
//! over one-hot encoded attributes).

/// Euclidean distance between dense feature vectors.
///
/// # Panics
/// Panics on length mismatch.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance over mismatched vectors");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Hamming distance between categorical rows: the number of columns whose
/// levels differ.
///
/// For one-hot encoded categoricals, squared Euclidean distance is exactly
/// `2 ×` Hamming distance, so the k-NN learner ranks neighbors with this
/// (cheaper) form without changing the result.
///
/// # Panics
/// Panics on length mismatch.
pub fn hamming(a: &[u16], b: &[u16]) -> usize {
    assert_eq!(a.len(), b.len(), "distance over mismatched rows");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn hamming_counts_differing_columns() {
        assert_eq!(hamming(&[1, 2, 3], &[1, 0, 3]), 1);
        assert_eq!(hamming(&[0, 0], &[1, 1]), 2);
        assert_eq!(hamming(&[], &[]), 0);
    }

    #[test]
    fn one_hot_euclidean_equals_twice_hamming() {
        use crate::onehot::OneHotEncoder;
        let enc = OneHotEncoder::new(vec![3, 4, 2, 5]);
        let a = [0u16, 3, 1, 2];
        let b = [2u16, 3, 0, 2];
        let d2 = euclidean(&enc.encode(&a), &enc.encode(&b)).powi(2);
        assert!((d2 - 2.0 * hamming(&a, &b) as f64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn euclidean_checks_length() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }
}
