//! One-hot encoding of categorical rows (§3.1, §4.2).
//!
//! Attributes and parameter values are categorical, so before a row reaches
//! a numeric learner it is expanded: an attribute with levels `{a, b, c}`
//! becomes three 0/1 columns, exactly one of which is set — "the sum of the
//! one-hot numeric array for a particular carrier should be equal to 1"
//! per attribute (§4.2).

/// Encoder from categorical rows (one `u16` level per column) to dense
/// `f64` one-hot feature vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneHotEncoder {
    /// Cardinality of each categorical column.
    cards: Vec<usize>,
    /// Starting output offset of each column's block.
    offsets: Vec<usize>,
    /// Total output width.
    width: usize,
}

impl OneHotEncoder {
    /// Creates an encoder for columns with the given cardinalities.
    ///
    /// # Panics
    /// Panics if any cardinality is zero.
    pub fn new(cards: Vec<usize>) -> Self {
        assert!(cards.iter().all(|&c| c > 0), "zero-cardinality column");
        let mut offsets = Vec::with_capacity(cards.len());
        let mut width = 0;
        for &c in &cards {
            offsets.push(width);
            width += c;
        }
        Self {
            cards,
            offsets,
            width,
        }
    }

    /// Infers column cardinalities from data (`max level + 1` per column).
    ///
    /// # Panics
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<u16>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit an encoder on no rows");
        let n_cols = rows[0].len();
        let mut cards = vec![1usize; n_cols];
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged categorical rows");
            for (card, &v) in cards.iter_mut().zip(row) {
                *card = (*card).max(v as usize + 1);
            }
        }
        Self::new(cards)
    }

    /// Output feature-vector width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of input columns.
    pub fn n_columns(&self) -> usize {
        self.cards.len()
    }

    /// Cardinality of input column `i`.
    pub fn cardinality(&self, i: usize) -> usize {
        self.cards[i]
    }

    /// Encodes one categorical row into a fresh one-hot vector.
    ///
    /// # Panics
    /// Panics if the row is the wrong length or a level is out of range.
    pub fn encode(&self, row: &[u16]) -> Vec<f64> {
        let mut out = vec![0.0; self.width];
        self.encode_into(row, &mut out);
        out
    }

    /// Encodes into a caller-provided buffer of exactly [`width`] zeros or
    /// stale values (the buffer is fully overwritten).
    ///
    /// [`width`]: OneHotEncoder::width
    pub fn encode_into(&self, row: &[u16], out: &mut [f64]) {
        assert_eq!(row.len(), self.cards.len(), "row has wrong column count");
        assert_eq!(out.len(), self.width, "output buffer has wrong width");
        out.fill(0.0);
        for (i, &v) in row.iter().enumerate() {
            assert!(
                (v as usize) < self.cards[i],
                "level {v} out of range for column {i} (cardinality {})",
                self.cards[i]
            );
            out[self.offsets[i] + v as usize] = 1.0;
        }
    }

    /// Decodes a one-hot vector back to levels (argmax per block); inverse
    /// of [`encode`](OneHotEncoder::encode) on well-formed input.
    pub fn decode(&self, features: &[f64]) -> Vec<u16> {
        assert_eq!(features.len(), self.width, "feature vector has wrong width");
        self.cards
            .iter()
            .zip(&self.offsets)
            .map(|(&card, &off)| {
                let block = &features[off..off + card];
                let mut best = 0usize;
                for (i, &v) in block.iter().enumerate() {
                    if v > block[best] {
                        best = i;
                    }
                }
                best as u16
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_sum_to_one_per_column() {
        let enc = OneHotEncoder::new(vec![3, 2, 4]);
        assert_eq!(enc.width(), 9);
        let v = enc.encode(&[2, 0, 3]);
        assert_eq!(v.iter().sum::<f64>(), 3.0, "one hot bit per column");
        assert_eq!(v[2], 1.0);
        assert_eq!(v[3], 1.0);
        assert_eq!(v[8], 1.0);
        // Per-block sums are exactly 1 (§4.2's invariant).
        assert_eq!(v[0..3].iter().sum::<f64>(), 1.0);
        assert_eq!(v[3..5].iter().sum::<f64>(), 1.0);
        assert_eq!(v[5..9].iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn fit_infers_cardinalities() {
        let rows = vec![vec![0, 5], vec![2, 1], vec![1, 0]];
        let enc = OneHotEncoder::fit(&rows);
        assert_eq!(enc.cardinality(0), 3);
        assert_eq!(enc.cardinality(1), 6);
        assert_eq!(enc.width(), 9);
    }

    #[test]
    fn encode_decode_round_trip() {
        let enc = OneHotEncoder::new(vec![4, 3, 2, 5]);
        for row in [[0u16, 0, 0, 0], [3, 2, 1, 4], [1, 1, 0, 2]] {
            assert_eq!(enc.decode(&enc.encode(&row)), row.to_vec());
        }
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let enc = OneHotEncoder::new(vec![2, 2]);
        let mut buf = vec![9.0; 4];
        enc.encode_into(&[1, 0], &mut buf);
        assert_eq!(buf, vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unseen_level() {
        OneHotEncoder::new(vec![2]).encode(&[2]);
    }

    #[test]
    #[should_panic(expected = "wrong column count")]
    fn rejects_wrong_arity() {
        OneHotEncoder::new(vec![2, 2]).encode(&[0]);
    }
}
