//! A small dense row-major `f64` matrix.
//!
//! This is all the linear algebra the workspace needs: the MLP learner's
//! weight matrices and the Lasso's design matrix. Deliberately minimal —
//! see DESIGN.md for why no external numerics crate is pulled in.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length does not match shape");
        Self { rows, cols, data }
    }

    /// Builds a matrix from equal-length rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c`, copied out.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Raw data in row-major order.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `self · v` (matrix-vector product).
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// `selfᵀ · v` without materializing the transpose (backprop's
    /// gradient-through-weights step).
    ///
    /// # Panics
    /// Panics if `v.len() != rows`.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "t_matvec shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &s) in v.iter().enumerate() {
            if s == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (o, a) in out.iter_mut().zip(row) {
                *o += s * a;
            }
        }
        out
    }

    /// `self · other` (matrix product).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Adds `scale * other` element-wise in place (the optimizer update).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, scale: f64, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Frobenius norm squared (used for the L2 penalty).
    pub fn frob_sq(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        assert_eq!(m.matvec(&[1.0, 2.0, 3.0]), vec![7.0, 8.0]);
        assert_eq!(m.t_matvec(&[1.0, 1.0]), vec![0.0, 3.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut i = Matrix::zeros(3, 3);
        for k in 0..3 {
            i.set(k, k, 1.0);
        }
        let a = Matrix::from_vec(3, 3, (1..=9).map(f64::from).collect());
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let g = Matrix::from_vec(1, 3, vec![2.0, 0.0, -2.0]);
        a.axpy(-0.5, &g);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert_eq!(m.frob_sq(), 25.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matvec_checks_shape() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
