//! Split-quality measures for the tree learners (§4.2: "Gini score to
//! determine how to split").

/// Gini impurity of a label distribution given raw class counts:
/// `1 − Σ p_k²`. Zero for a pure node, approaching `1 − 1/k` for a uniform
/// node over `k` classes.
pub fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

/// Shannon entropy (bits) of a label distribution given raw class counts.
pub fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    -counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Weighted impurity of a binary split: `(n_l·i_l + n_r·i_r) / n`.
/// The tree learner minimizes this over candidate splits.
pub fn weighted_split_impurity(
    left: &[usize],
    right: &[usize],
    measure: fn(&[usize]) -> f64,
) -> f64 {
    let nl: usize = left.iter().sum();
    let nr: usize = right.iter().sum();
    let n = nl + nr;
    if n == 0 {
        return 0.0;
    }
    (nl as f64 * measure(left) + nr as f64 * measure(right)) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_node_is_zero() {
        assert_eq!(gini(&[10, 0, 0]), 0.0);
        assert_eq!(entropy(&[0, 7]), 0.0);
        assert_eq!(gini(&[]), 0.0);
    }

    #[test]
    fn uniform_node_is_maximal() {
        // Two balanced classes: gini 0.5, entropy 1 bit.
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!((entropy(&[5, 5]) - 1.0).abs() < 1e-12);
        // Four balanced classes: gini 0.75, entropy 2 bits.
        assert!((gini(&[2, 2, 2, 2]) - 0.75).abs() < 1e-12);
        assert!((entropy(&[2, 2, 2, 2]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn impurity_orders_by_mixedness() {
        let nearly_pure = gini(&[9, 1]);
        let mixed = gini(&[6, 4]);
        assert!(nearly_pure < mixed);
        assert!(entropy(&[9, 1]) < entropy(&[6, 4]));
    }

    #[test]
    fn weighted_split_prefers_separating_split() {
        // Parent: [5 of A, 5 of B]. A perfect split has impurity 0.
        let perfect = weighted_split_impurity(&[5, 0], &[0, 5], gini);
        assert_eq!(perfect, 0.0);
        // A useless split keeps parent impurity.
        let useless = weighted_split_impurity(&[3, 3], &[2, 2], gini);
        assert!((useless - 0.5).abs() < 1e-12);
        assert!(perfect < useless);
    }

    #[test]
    fn weighted_split_weighs_by_size() {
        // Left branch of 9 pure, right branch of 1 pure → 0 either way,
        // but left [8,1] vs right [1,0]: impurity dominated by big branch.
        let v = weighted_split_impurity(&[8, 1], &[1, 0], gini);
        let expect = 9.0 / 10.0 * gini(&[8, 1]);
        assert!((v - expect).abs() < 1e-12);
    }
}
