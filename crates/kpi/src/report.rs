//! Per-carrier KPIs and the health score that feeds performance-weighted
//! voting (§6).

use auric_core::perf::KpiSource;
use auric_model::CarrierId;
use serde::{Deserialize, Serialize};

/// Raw per-carrier counters from one simulation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CarrierKpi {
    pub carrier: CarrierId,
    /// Session capacity (bandwidth-derived).
    pub capacity: usize,
    /// Admission attempts this carrier was eligible for.
    pub attempts: usize,
    /// Sessions served.
    pub served: usize,
    /// Attempts this carrier (and every other candidate) had to refuse.
    pub blocked: usize,
    pub ho_attempts: usize,
    pub ho_success: usize,
    pub ho_pingpong: usize,
    pub ho_drops: usize,
}

impl CarrierKpi {
    /// An empty counter set.
    pub fn new(carrier: CarrierId, capacity: usize) -> Self {
        Self {
            carrier,
            capacity,
            attempts: 0,
            served: 0,
            blocked: 0,
            ho_attempts: 0,
            ho_success: 0,
            ho_pingpong: 0,
            ho_drops: 0,
        }
    }

    /// Fraction of admission attempts that ended in service somewhere
    /// (blocked attempts count against every eligible candidate).
    pub fn accessibility(&self) -> f64 {
        if self.attempts == 0 {
            return 1.0;
        }
        1.0 - self.blocked as f64 / self.attempts as f64
    }

    /// Fraction of served sessions not lost to handover drops.
    pub fn retainability(&self) -> f64 {
        if self.served == 0 {
            return 1.0;
        }
        1.0 - (self.ho_drops as f64 / self.served as f64).min(1.0)
    }

    /// Fraction of handover attempts that completed cleanly.
    pub fn mobility_quality(&self) -> f64 {
        if self.ho_attempts == 0 {
            return 1.0;
        }
        self.ho_success as f64 / self.ho_attempts as f64
    }

    /// Load relative to capacity.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.served as f64 / self.capacity as f64
    }

    /// Aggregate health in `[0, 1]`: the §4.3.3 monitoring verdict in one
    /// number. Weights mirror operational priorities — users who cannot
    /// attach hurt most, then dropped sessions, then sloppy mobility —
    /// with a congestion penalty near saturation.
    pub fn health(&self) -> f64 {
        let mut h =
            0.4 * self.accessibility() + 0.3 * self.retainability() + 0.3 * self.mobility_quality();
        if self.utilization() > 0.95 {
            h -= 0.1;
        }
        h.clamp(0.0, 1.0)
    }
}

/// One simulation round's KPIs, indexed by carrier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KpiReport {
    per_carrier: Vec<CarrierKpi>,
}

impl KpiReport {
    /// Wraps per-carrier counters (indexed by carrier id).
    pub fn new(per_carrier: Vec<CarrierKpi>) -> Self {
        Self { per_carrier }
    }

    /// Per-carrier counters in carrier-id order.
    pub fn per_carrier(&self) -> &[CarrierKpi] {
        &self.per_carrier
    }

    /// The KPI record of one carrier, or `None` if the report does not
    /// cover it. The feedback loop queries reports for carriers a
    /// simulation round may not have covered, so an out-of-range id is
    /// an answerable question — not an index panic.
    pub fn kpi(&self, c: CarrierId) -> Option<&CarrierKpi> {
        self.per_carrier.get(c.index())
    }

    /// Mean health over all carriers.
    pub fn mean_health(&self) -> f64 {
        if self.per_carrier.is_empty() {
            return 1.0;
        }
        self.per_carrier.iter().map(CarrierKpi::health).sum::<f64>() / self.per_carrier.len() as f64
    }

    /// The carriers below a health threshold — the §4.3.3 watch list.
    pub fn unhealthy(&self, threshold: f64) -> Vec<CarrierId> {
        self.per_carrier
            .iter()
            .filter(|k| k.health() < threshold)
            .map(|k| k.carrier)
            .collect()
    }
}

/// A KPI report is directly usable as the §6 vote-weight source: healthy
/// carriers speak with full weight, degraded ones are discounted (floored
/// so history is muffled, not erased).
impl KpiSource for KpiReport {
    fn weight(&self, c: CarrierId) -> f64 {
        self.per_carrier
            .get(c.index())
            .map(|k| k.health().max(0.05))
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kpi(carrier: u32) -> CarrierKpi {
        CarrierKpi::new(CarrierId(carrier), 100)
    }

    #[test]
    fn pristine_carrier_is_fully_healthy() {
        let mut k = kpi(0);
        k.attempts = 50;
        k.served = 50;
        k.ho_attempts = 10;
        k.ho_success = 10;
        assert_eq!(k.health(), 1.0);
        assert_eq!(k.accessibility(), 1.0);
        assert_eq!(k.retainability(), 1.0);
        assert_eq!(k.mobility_quality(), 1.0);
    }

    #[test]
    fn idle_carrier_defaults_to_healthy() {
        // No attempts, no handovers: nothing observed, nothing wrong.
        assert_eq!(kpi(0).health(), 1.0);
    }

    #[test]
    fn blocking_hurts_accessibility() {
        let mut k = kpi(0);
        k.attempts = 100;
        k.served = 60;
        k.blocked = 40;
        assert!((k.accessibility() - 0.6).abs() < 1e-12);
        assert!(k.health() < 0.9);
    }

    #[test]
    fn drops_hurt_retainability_and_pingpong_hurts_mobility() {
        let mut k = kpi(0);
        k.attempts = 100;
        k.served = 100;
        k.ho_attempts = 40;
        k.ho_drops = 20;
        k.ho_pingpong = 10;
        k.ho_success = 10;
        assert!((k.retainability() - 0.8).abs() < 1e-12);
        assert!((k.mobility_quality() - 0.25).abs() < 1e-12);
        assert!(k.health() < 0.85);
    }

    #[test]
    fn saturation_penalty_applies() {
        let mut k = kpi(0);
        k.attempts = 100;
        k.served = 98; // 98% of capacity 100
        assert!(k.utilization() > 0.95);
        assert!(k.health() < 1.0);
    }

    #[test]
    fn report_surfaces_unhealthy_carriers() {
        let mut bad = kpi(1);
        bad.attempts = 10;
        bad.blocked = 10;
        let report = KpiReport::new(vec![kpi(0), bad]);
        assert_eq!(report.unhealthy(0.9), vec![CarrierId(1)]);
        assert!(report.mean_health() < 1.0);
        assert_eq!(report.kpi(CarrierId(0)).unwrap().health(), 1.0);
    }

    #[test]
    fn out_of_range_carrier_lookup_returns_none() {
        // Regression: `kpi()` used to index unchecked and panic.
        let report = KpiReport::new(vec![kpi(0), kpi(1)]);
        assert!(report.kpi(CarrierId(1)).is_some());
        assert!(report.kpi(CarrierId(2)).is_none());
        assert!(report.kpi(CarrierId(u32::MAX)).is_none());
    }

    #[test]
    fn zero_capacity_carrier_has_zero_utilization() {
        let mut k = CarrierKpi::new(CarrierId(0), 0);
        k.served = 5; // pathological, but must not divide by zero
        assert_eq!(k.utilization(), 0.0);
        assert!((0.0..=1.0).contains(&k.health()));
    }

    #[test]
    fn zero_attempt_and_zero_served_carriers_score_neutral() {
        // Nothing observed ⇒ nothing wrong, on every component.
        let k = kpi(0);
        assert_eq!(k.accessibility(), 1.0);
        assert_eq!(k.retainability(), 1.0);
        assert_eq!(k.mobility_quality(), 1.0);
        // Drops with zero served sessions must not blow up either.
        let mut weird = kpi(1);
        weird.ho_drops = 3;
        assert_eq!(weird.retainability(), 1.0);
        assert!((0.0..=1.0).contains(&weird.health()));
    }

    #[test]
    fn congestion_penalty_boundary_is_exclusive() {
        // utilization() == 0.95 exactly: no penalty (strictly greater).
        let mut at = kpi(0);
        at.attempts = 95;
        at.served = 95;
        assert_eq!(at.utilization(), 0.95);
        assert_eq!(at.health(), 1.0);
        // One session over the line: the 0.1 penalty applies.
        let mut over = kpi(0);
        over.attempts = 96;
        over.served = 96;
        assert!(over.utilization() > 0.95);
        assert!((over.health() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn unhealthy_threshold_is_exclusive() {
        // health() == threshold must NOT be on the watch list (< is
        // strict); just below must be.
        let healthy = kpi(0); // health 1.0
        let mut below = kpi(1);
        below.attempts = 100;
        below.blocked = 10; // accessibility 0.9 → health 0.96
        let report = KpiReport::new(vec![healthy, below]);
        let h = below.health();
        assert_eq!(report.unhealthy(h), Vec::<CarrierId>::new());
        assert_eq!(report.unhealthy(h + 1e-9), vec![CarrierId(1)]);
        assert_eq!(report.unhealthy(1.0), vec![CarrierId(1)]);
    }

    proptest::proptest! {
        /// `health()` is a score, not a measurement: whatever garbage the
        /// counters hold (blocked > attempts, drops > served, served >
        /// capacity), it stays in the unit interval.
        #[test]
        fn health_is_always_in_unit_interval(
            capacity in 0usize..500,
            attempts in 0usize..1000,
            served in 0usize..1000,
            blocked in 0usize..2000,
            ho_attempts in 0usize..500,
            ho_success in 0usize..500,
            ho_pingpong in 0usize..500,
            ho_drops in 0usize..1000,
        ) {
            let k = CarrierKpi {
                carrier: CarrierId(0),
                capacity,
                attempts,
                served,
                blocked,
                ho_attempts,
                ho_success,
                ho_pingpong,
                ho_drops,
            };
            let h = k.health();
            proptest::prop_assert!((0.0..=1.0).contains(&h), "health {h} from {k:?}");
            proptest::prop_assert!(k.utilization() >= 0.0);
        }
    }

    #[test]
    fn kpi_source_floors_weights() {
        let mut dead = kpi(0);
        dead.attempts = 10;
        dead.blocked = 10;
        dead.served = 0;
        dead.ho_attempts = 5;
        dead.ho_drops = 5;
        let report = KpiReport::new(vec![dead]);
        let w = report.weight(CarrierId(0));
        assert!(w >= 0.05, "weight floor");
        assert!(w < 0.7, "a dead carrier barely votes, got {w}");
        // Unknown carriers default to full weight.
        assert_eq!(report.weight(CarrierId(99)), 1.0);
    }
}
