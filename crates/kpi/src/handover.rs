//! Mobility: handover attempts across X2 relations, governed by the
//! `hysA3Offset` margin.
//!
//! The classic handover trade-off (§2.2's `hysA3Offset` is exactly this
//! knob): a *small* hysteresis triggers handovers on momentary signal
//! flickers — the session bounces between cells ("ping-pong") — while a
//! *large* hysteresis drags the session on a weakening cell until the
//! radio link fails. The healthy band in the middle is where engineers
//! tune it.

use crate::report::CarrierKpi;
use crate::traffic::{ConfigView, TrafficModel};
use auric_model::{CarrierId, NetworkSnapshot};
use rand::RngExt;
use rand_chacha::ChaCha8Rng;

/// Hysteresis below this (dB) risks ping-pong.
const PING_PONG_BELOW_DB: f64 = 1.0;
/// Hysteresis above this (dB) risks drag-and-drop.
const DROP_ABOVE_DB: f64 = 6.0;

/// Outcome probabilities for one handover attempt at margin `hys_db`.
/// Returns `(p_ping_pong, p_drop)`; the remainder succeeds.
pub(crate) fn outcome_probs(hys_db: f64) -> (f64, f64) {
    if hys_db < PING_PONG_BELOW_DB {
        // Sharper below the floor: at 0 dB nearly every attempt bounces.
        (
            (1.0 - hys_db / PING_PONG_BELOW_DB).clamp(0.0, 1.0) * 0.8,
            0.02,
        )
    } else if hys_db > DROP_ABOVE_DB {
        let over = ((hys_db - DROP_ABOVE_DB) / 9.0).clamp(0.0, 1.0);
        (0.0, 0.2 + 0.6 * over)
    } else {
        (0.02, 0.02)
    }
}

/// Runs one handover round over the served sessions, updating per-carrier
/// counters in place.
pub(crate) fn run_handovers(
    snapshot: &NetworkSnapshot,
    view: &ConfigView,
    model: &TrafficModel,
    served_sessions: &[(CarrierId, usize)],
    kpis: &mut [CarrierKpi],
    rng: &mut ChaCha8Rng,
) {
    for &(carrier, _) in served_sessions {
        if rng.random_range(0.0..1.0) >= model.mobility_prob {
            continue;
        }
        let neighbors = snapshot.x2.neighbors(carrier);
        if neighbors.is_empty() {
            continue;
        }
        let target = neighbors[rng.random_range(0..neighbors.len())];
        let Some(pair) = snapshot.x2.pair_idx(carrier, target) else {
            continue;
        };
        let hys_value = snapshot.config.pair_value(view.hys_a3, pair);
        let hys_db = snapshot.catalog.def(view.hys_a3).range.value(hys_value);
        let (p_pp, p_drop) = outcome_probs(hys_db);

        let k = &mut kpis[carrier.index()];
        k.ho_attempts += 1;
        let u: f64 = rng.random_range(0.0..1.0);
        if u < p_pp {
            k.ho_pingpong += 1;
        } else if u < p_pp + p_drop {
            k.ho_drops += 1;
        } else {
            k.ho_success += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_model::Provenance;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    #[test]
    fn outcome_probabilities_follow_the_trade_off() {
        let (pp0, _) = outcome_probs(0.0);
        let (pp_ok, drop_ok) = outcome_probs(2.5);
        let (_, drop_hi) = outcome_probs(12.0);
        assert!(pp0 > 0.5, "zero hysteresis ping-pongs");
        assert!(pp_ok < 0.1 && drop_ok < 0.1, "the healthy band is healthy");
        assert!(drop_hi > 0.3, "huge hysteresis drops");
        // Probabilities are valid.
        for h in [0.0, 0.5, 1.0, 3.0, 6.0, 9.0, 15.0] {
            let (a, b) = outcome_probs(h);
            assert!(a >= 0.0 && b >= 0.0 && a + b <= 1.0, "h={h}: {a} {b}");
        }
    }

    #[test]
    fn bad_hysteresis_shows_up_in_the_kpis() {
        // Set hysA3Offset to 0 everywhere: ping-pong counts explode
        // relative to the defaults.
        let base = generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot;
        let mut zeroed = base.clone();
        let hys = zeroed.catalog.by_name("hysA3Offset").unwrap();
        for q in 0..zeroed.x2.n_pairs() as u32 {
            zeroed.config.set_pair_value(hys, q, 0, Provenance::Noise);
        }
        let model = crate::TrafficModel::default();
        let healthy = crate::simulate(&base, &model).unwrap();
        let sick = crate::simulate(&zeroed, &model).unwrap();
        // Compare ping-pong *rates*: at 0 dB the outcome model bounces 80%
        // of attempts, so the sick rate is pinned near 0.8 regardless of
        // how the generated network's own hysteresis values are spread
        // (raw counts vary with the traffic draw).
        let pp_rate = |r: &crate::KpiReport| -> f64 {
            let pp: usize = r.per_carrier().iter().map(|k| k.ho_pingpong).sum();
            let attempts: usize = r.per_carrier().iter().map(|k| k.ho_attempts).sum();
            pp as f64 / attempts.max(1) as f64
        };
        let (sick_rate, healthy_rate) = (pp_rate(&sick), pp_rate(&healthy));
        assert!(
            sick_rate > 0.6,
            "zero hysteresis must ping-pong most attempts: rate {sick_rate}"
        );
        assert!(
            sick_rate > 2.0 * healthy_rate,
            "sick rate {sick_rate} vs healthy rate {healthy_rate}"
        );
        assert!(sick.mean_health() < healthy.mean_health());
    }
}
