//! Service-performance substrate: a lightweight traffic / carrier-layer /
//! handover simulator producing the KPIs the paper's operational loop
//! watches (§2.1, §4.3.3, §5, §6).
//!
//! The paper's engineers judge a configuration by what it does to
//! *service performance*: "the engineers carefully monitor the traffic
//! distribution on the newly added carrier ..., and the service
//! performance impact of the change (e.g., data throughput, voice call
//! admissions)" (§4.3.3), and §6 proposes feeding those KPIs back into
//! the voting. This crate closes that loop with a deliberately simple,
//! fully deterministic simulator:
//!
//! 1. [`traffic`] — offered load: user sessions placed around each
//!    eNodeB with morphology-dependent density, then attached to carriers
//!    via *carrier-layer management* (§2.1): coverage gating by
//!    `qRxLevMin` and `pMax`, priority order by `sFreqPrio` (high bands
//!    first at equal priority), and `lbCapacityThreshold`-driven
//!    inter-frequency load balancing spill-over.
//! 2. [`handover`] — mobility: sessions attempt handovers across X2
//!    relations; the `hysA3Offset` margin governs the classic trade-off
//!    (too small → ping-pong, too large → drag and drops).
//! 3. [`report`] — per-carrier KPIs (accessibility, retainability,
//!    mobility quality, utilization) aggregated into a health score in
//!    `[0, 1]`, which plugs straight into
//!    [`auric_core::perf::KpiSource`] for performance-weighted voting.
//!
//! None of this aims for radio-accurate numbers; it aims for the right
//! *directions* — a carrier with a hostile `qRxLevMin` stops admitting
//! users, an overloaded layer blocks, a razor-thin hysteresis ping-pongs
//! — so configuration quality becomes observable, exactly what the §6
//! extension needs.

pub mod error;
pub mod handover;
pub mod postcheck;
pub mod report;
pub mod traffic;

pub use error::MissingParameter;
pub use postcheck::KpiPostCheck;
pub use report::{CarrierKpi, KpiReport};
pub use traffic::{simulate, TrafficModel};
