//! Typed errors for the KPI simulator, mirroring the
//! `KeyShapeMismatch` pattern in `auric-core`: malformed inputs degrade
//! into values the caller can route, never aborts.

use std::fmt;

/// The snapshot's catalog lacks a parameter the traffic/handover
/// simulator needs to read (e.g. `qRxLevMin`, `sFreqPrio`,
/// `hysA3Offset`). Earlier versions panicked here, which turned a
/// malformed snapshot into an abort mid-feedback-loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissingParameter {
    /// The vendor-style parameter name that could not be resolved.
    pub name: &'static str,
}

impl fmt::Display for MissingParameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot catalog is missing parameter {:?}", self.name)
    }
}

impl std::error::Error for MissingParameter {}
