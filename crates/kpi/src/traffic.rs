//! Offered load and carrier-layer management (§2.1): place user sessions,
//! gate them by coverage, steer them to high-priority layers first, and
//! spill over when a layer crosses its load-balancing threshold.

use crate::error::MissingParameter;
use crate::handover::run_handovers;
use crate::report::{CarrierKpi, KpiReport};
use auric_model::{Band, CarrierId, NetworkSnapshot, ValueIdx};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Offered-load model. All quantities are per-eNodeB session means; the
/// simulator is deterministic in `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// Mean sessions per (urban, suburban, rural) eNodeB.
    pub sessions_per_enb: (usize, usize, usize),
    /// Fraction of served sessions that attempt a handover.
    pub mobility_prob: f64,
    /// Sessions one MHz of downlink bandwidth can carry.
    pub sessions_per_mhz: f64,
    pub seed: u64,
}

impl Default for TrafficModel {
    fn default() -> Self {
        Self {
            sessions_per_enb: (90, 50, 20),
            mobility_prob: 0.3,
            sessions_per_mhz: 8.0,
            seed: 7,
        }
    }
}

/// The configuration values the simulator reads, resolved once.
pub(crate) struct ConfigView {
    pub s_freq_prio: auric_model::ParamId,
    pub q_rx_lev_min: auric_model::ParamId,
    pub p_max: auric_model::ParamId,
    pub lb_threshold: auric_model::ParamId,
    pub hys_a3: auric_model::ParamId,
}

impl ConfigView {
    /// Resolves the five simulator parameters by name. A catalog that
    /// lacks one yields a typed [`MissingParameter`] error — not a panic:
    /// the KPI feedback loop must degrade (skip the verdict), not abort
    /// the campaign.
    pub fn resolve(snapshot: &NetworkSnapshot) -> Result<Self, MissingParameter> {
        let get = |name: &'static str| {
            snapshot
                .catalog
                .by_name(name)
                .ok_or(MissingParameter { name })
        };
        Ok(Self {
            s_freq_prio: get("sFreqPrio")?,
            q_rx_lev_min: get("qRxLevMin")?,
            p_max: get("pMax")?,
            lb_threshold: get("lbCapacityThreshold")?,
            hys_a3: get("hysA3Offset")?,
        })
    }

    fn concrete(&self, snapshot: &NetworkSnapshot, p: auric_model::ParamId, v: ValueIdx) -> f64 {
        snapshot.catalog.def(p).range.value(v)
    }

    pub fn s_freq_prio_of(&self, snapshot: &NetworkSnapshot, c: CarrierId) -> f64 {
        self.concrete(
            snapshot,
            self.s_freq_prio,
            snapshot.config.value(self.s_freq_prio, c),
        )
    }

    pub fn q_rx_lev_min_of(&self, snapshot: &NetworkSnapshot, c: CarrierId) -> f64 {
        self.concrete(
            snapshot,
            self.q_rx_lev_min,
            snapshot.config.value(self.q_rx_lev_min, c),
        )
    }

    pub fn p_max_of(&self, snapshot: &NetworkSnapshot, c: CarrierId) -> f64 {
        self.concrete(snapshot, self.p_max, snapshot.config.value(self.p_max, c))
    }

    pub fn lb_threshold_of(&self, snapshot: &NetworkSnapshot, c: CarrierId) -> f64 {
        self.concrete(
            snapshot,
            self.lb_threshold,
            snapshot.config.value(self.lb_threshold, c),
        )
    }
}

/// Free-space-ish path loss in dB at distance `d` km for a band: higher
/// bands attenuate faster, which is exactly why low band is the coverage
/// layer (§2.1).
pub(crate) fn path_loss_db(band: Band, d_km: f64) -> f64 {
    let n = match band {
        Band::Low => 2.0,
        Band::Mid => 2.4,
        Band::High => 2.8,
    };
    // Log-distance model referenced at 10 m, so the band exponent always
    // orders losses the right way (the log term never goes negative).
    70.0 + 10.0 * n * (d_km.max(0.01) / 0.01).log10()
}

/// Received power estimate in dBm: transmit power (`pMax`) minus path
/// loss. Deliberately coarse — only the *ordering* and the coverage gate
/// against `qRxLevMin` matter.
pub(crate) fn rsrp_dbm(p_max_dbm: f64, band: Band, d_km: f64) -> f64 {
    p_max_dbm - path_loss_db(band, d_km)
}

/// Reach of a session draw around an eNodeB, by morphology (km).
fn draw_radius_km(m: auric_model::Morphology) -> f64 {
    match m {
        auric_model::Morphology::Urban => 2.0,
        auric_model::Morphology::Suburban => 4.0,
        auric_model::Morphology::Rural => 8.0,
    }
}

/// Runs the full simulation: traffic placement + layer management, then
/// handovers, returning per-carrier KPIs.
///
/// # Errors
/// [`MissingParameter`] if the snapshot's catalog lacks one of the
/// parameters the simulator reads.
pub fn simulate(
    snapshot: &NetworkSnapshot,
    model: &TrafficModel,
) -> Result<KpiReport, MissingParameter> {
    let view = ConfigView::resolve(snapshot)?;
    let mut rng = ChaCha8Rng::seed_from_u64(model.seed ^ 0x6B70_6901);
    let mut kpis: Vec<CarrierKpi> = snapshot
        .carriers
        .iter()
        .map(|c| {
            // Capacity from the channel-bandwidth attribute (levels are
            // 5/10/15/20 MHz in schema order).
            let bw_level = c.attrs.get(auric_model::AttrId(4)) as usize;
            let bw_mhz = [5.0, 10.0, 15.0, 20.0][bw_level.min(3)];
            CarrierKpi::new(c.id, (bw_mhz * model.sessions_per_mhz).max(1.0) as usize)
        })
        .collect();

    // Session placement + attachment.
    let mut served_sessions: Vec<(CarrierId, usize)> = Vec::new(); // (carrier, session tag)
    let mut session_tag = 0usize;
    for enb in &snapshot.enodebs {
        let mean = match enb.morphology {
            auric_model::Morphology::Urban => model.sessions_per_enb.0,
            auric_model::Morphology::Suburban => model.sessions_per_enb.1,
            auric_model::Morphology::Rural => model.sessions_per_enb.2,
        };
        if mean == 0 {
            continue;
        }
        let n = rng.random_range(mean / 2..=mean + mean / 2);
        for _ in 0..n {
            let face = rng.random_range(0..3u8);
            let d_km = rng.random_range(0.0..draw_radius_km(enb.morphology));
            // Candidates: this face's carriers, coverage-gated.
            let mut candidates: Vec<CarrierId> = enb
                .carriers
                .iter()
                .copied()
                .filter(|&cid| snapshot.carrier(cid).face == face)
                .filter(|&cid| {
                    let band = snapshot.carrier(cid).band;
                    rsrp_dbm(view.p_max_of(snapshot, cid), band, d_km)
                        >= view.q_rx_lev_min_of(snapshot, cid)
                })
                .collect();
            // Layer management: lowest sFreqPrio value first (1 = highest
            // priority); higher bands first at equal priority (§2.1:
            // "direct the users to connect first to high bands").
            candidates.sort_by(|&a, &b| {
                view.s_freq_prio_of(snapshot, a)
                    .total_cmp(&view.s_freq_prio_of(snapshot, b))
                    .then_with(|| {
                        let band = |c: CarrierId| match snapshot.carrier(c).band {
                            Band::High => 0u8,
                            Band::Mid => 1,
                            Band::Low => 2,
                        };
                        band(a).cmp(&band(b)).then(a.cmp(&b))
                    })
            });
            if candidates.is_empty() {
                // Coverage hole: no carrier on this face admits the user.
                // Charge an attempt + block to every carrier on the face —
                // their configuration (`qRxLevMin`/`pMax`) created the hole.
                // Without this the session would vanish silently and a
                // hostile coverage gate would *look* healthy (zero
                // attempts ⇒ accessibility 1.0), blinding the §4.3.3
                // post-check to exactly the misconfigurations it exists
                // to catch.
                for &cid in enb.carriers.iter() {
                    if snapshot.carrier(cid).face == face {
                        let k = &mut kpis[cid.index()];
                        k.attempts += 1;
                        k.blocked += 1;
                    }
                }
                continue;
            }
            // Every eligible carrier sees the attempt (admission counter).
            for &cid in &candidates {
                kpis[cid.index()].attempts += 1;
            }
            // Pass 1: below the load-balancing threshold.
            let mut attached = None;
            for &cid in &candidates {
                let k = &kpis[cid.index()];
                let threshold = view.lb_threshold_of(snapshot, cid) / 100.0;
                if (k.served as f64) < threshold * k.capacity as f64 {
                    attached = Some(cid);
                    break;
                }
            }
            // Pass 2: anything with hard capacity left.
            if attached.is_none() {
                attached = candidates
                    .iter()
                    .copied()
                    .find(|&cid| kpis[cid.index()].served < kpis[cid.index()].capacity);
            }
            match attached {
                Some(cid) => {
                    kpis[cid.index()].served += 1;
                    served_sessions.push((cid, session_tag));
                    session_tag += 1;
                }
                None => {
                    for &cid in &candidates {
                        kpis[cid.index()].blocked += 1;
                    }
                }
            }
        }
    }

    run_handovers(
        snapshot,
        &view,
        model,
        &served_sessions,
        &mut kpis,
        &mut rng,
    );
    Ok(KpiReport::new(kpis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_model::Provenance;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    fn snapshot() -> NetworkSnapshot {
        generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot
    }

    #[test]
    fn path_loss_orders_bands() {
        // At any distance, higher bands lose more.
        for d in [0.5, 2.0, 8.0] {
            assert!(path_loss_db(Band::Low, d) < path_loss_db(Band::Mid, d));
            assert!(path_loss_db(Band::Mid, d) < path_loss_db(Band::High, d));
        }
        // Path loss grows with distance.
        assert!(path_loss_db(Band::Low, 8.0) > path_loss_db(Band::Low, 1.0));
    }

    #[test]
    fn simulation_is_deterministic() {
        let snap = snapshot();
        let model = TrafficModel::default();
        let a = simulate(&snap, &model).unwrap();
        let b = simulate(&snap, &model).unwrap();
        assert_eq!(a, b);
        let c = simulate(&snap, &TrafficModel { seed: 8, ..model }).unwrap();
        assert_ne!(a, c, "different seeds produce different traffic");
    }

    #[test]
    fn default_configuration_serves_most_traffic() {
        let snap = snapshot();
        let report = simulate(&snap, &TrafficModel::default()).unwrap();
        let served: usize = report.per_carrier().iter().map(|k| k.served).sum();
        let attempts_sessions = served
            + report
                .per_carrier()
                .iter()
                .map(|k| k.blocked)
                .max()
                .unwrap_or(0);
        assert!(served > 0);
        assert!(
            report.mean_health() > 0.8,
            "mean health {} on a sane network",
            report.mean_health()
        );
        assert!(served as f64 / attempts_sessions.max(1) as f64 > 0.8);
    }

    #[test]
    fn hostile_qrxlevmin_starves_a_carrier() {
        // Raise qRxLevMin to its maximum (-44 dBm) on one carrier: only
        // users practically under the antenna pass the coverage gate, so
        // its served load collapses relative to the baseline.
        let snap = snapshot();
        let q = snap.catalog.by_name("qRxLevMin").unwrap();
        let baseline = simulate(&snap, &TrafficModel::default()).unwrap();
        // Pick a victim that actually serves traffic at baseline.
        let victim = baseline
            .per_carrier()
            .iter()
            .find(|k| k.served >= 8)
            .expect("some busy carrier exists")
            .carrier;
        let mut snap2 = snap.clone();
        let max_idx = (snap2.catalog.def(q).range.n_values() - 1) as u16;
        snap2
            .config
            .set_value(q, victim, max_idx, Provenance::Noise);
        let after = simulate(&snap2, &TrafficModel::default()).unwrap();
        let before = baseline.per_carrier()[victim.index()].served;
        let now = after.per_carrier()[victim.index()].served;
        assert!(
            now * 2 < before,
            "qRxLevMin = -44 dBm must starve the carrier: {before} -> {now}"
        );
    }

    #[test]
    fn priority_steers_traffic() {
        // Give one carrier the worst possible sFreqPrio (10000 = lowest
        // priority): it should serve less than it would by default,
        // because every co-face carrier now beats it.
        let snap = snapshot();
        let p = snap.catalog.by_name("sFreqPrio").unwrap();
        let baseline = simulate(&snap, &TrafficModel::default()).unwrap();
        // Pick a carrier on a face with at least 2 carriers.
        let victim = snap
            .carriers
            .iter()
            .find(|c| {
                snap.enodebs[c.enodeb.index()]
                    .carriers
                    .iter()
                    .filter(|&&o| snap.carrier(o).face == c.face)
                    .count()
                    >= 2
                    && baseline.per_carrier()[c.id.index()].served > 0
            })
            .expect("some multi-carrier face exists")
            .id;
        let mut snap2 = snap.clone();
        let worst = (snap2.catalog.def(p).range.n_values() - 1) as u16;
        snap2.config.set_value(p, victim, worst, Provenance::Noise);
        let after = simulate(&snap2, &TrafficModel::default()).unwrap();
        assert!(
            after.per_carrier()[victim.index()].served
                <= baseline.per_carrier()[victim.index()].served,
            "deprioritized carrier must not gain traffic"
        );
    }

    #[test]
    fn missing_catalog_parameter_is_a_typed_error_not_a_panic() {
        // Regression: `ConfigView::resolve` used to panic when the
        // catalog lacked a simulator parameter. Rename `qRxLevMin` so
        // `by_name` misses, and expect the typed error instead.
        let mut snap = snapshot();
        let q = snap.catalog.by_name("qRxLevMin").unwrap();
        let mut defs = snap.catalog.defs().to_vec();
        defs[q.index()].name = "qRxLevMinLegacy".into();
        snap.catalog = auric_model::ParamCatalog::new(defs);
        let err = simulate(&snap, &TrafficModel::default()).unwrap_err();
        assert_eq!(err, MissingParameter { name: "qRxLevMin" });
        assert!(err.to_string().contains("qRxLevMin"));
    }

    #[test]
    fn coverage_holes_are_charged_to_the_face() {
        // Poison qRxLevMin on *every* carrier of one face: no candidate
        // passes the gate, so its sessions find nobody. Those sessions
        // must still be charged (attempts + blocks) to the face's
        // carriers — a silent vanish would make total starvation look
        // perfectly healthy to the post-check.
        let snap = snapshot();
        let q = snap.catalog.by_name("qRxLevMin").unwrap();
        let baseline = simulate(&snap, &TrafficModel::default()).unwrap();
        let victim = baseline
            .per_carrier()
            .iter()
            .find(|k| k.served >= 8)
            .expect("some busy carrier exists")
            .carrier;
        let face = snap.carrier(victim).face;
        let enb = snap.carrier(victim).enodeb;
        let mut snap2 = snap.clone();
        let max_idx = (snap2.catalog.def(q).range.n_values() - 1) as u16;
        let face_carriers: Vec<CarrierId> = snap2.enodebs[enb.index()]
            .carriers
            .iter()
            .copied()
            .filter(|&c| snap2.carrier(c).face == face)
            .collect();
        for &c in &face_carriers {
            snap2.config.set_value(q, c, max_idx, Provenance::Noise);
        }
        let after = simulate(&snap2, &TrafficModel::default()).unwrap();
        let k = after.per_carrier()[victim.index()];
        assert!(
            k.blocked > 0 && k.attempts > 0,
            "starved face must register the outage: {k:?}"
        );
        assert!(
            k.health() < baseline.per_carrier()[victim.index()].health(),
            "total starvation must read as degradation"
        );
    }

    #[test]
    fn zero_traffic_model_is_harmless() {
        let snap = snapshot();
        let model = TrafficModel {
            sessions_per_enb: (0, 0, 0),
            ..TrafficModel::default()
        };
        let report = simulate(&snap, &model).unwrap();
        assert!(report.per_carrier().iter().all(|k| k.served == 0));
        assert_eq!(report.mean_health(), 1.0, "no traffic, no faults");
    }
}
