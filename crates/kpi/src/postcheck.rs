//! The production post-check: judge a launch by simulating service
//! performance before and after its change set (§4.3.3/§6).
//!
//! For every pushed launch the check runs the deterministic
//! traffic/handover simulator twice on a private working copy of the
//! network — once with the carrier on its vendor-initial configuration,
//! once with the recommended changes applied — and compares the mean
//! [`health`](crate::report::CarrierKpi::health) of the carrier's
//! *neighborhood* (the carrier plus its X2 neighbors). The neighborhood
//! matters: a carrier whose coverage gate was configured hostile sheds
//! its traffic onto co-face and adjacent layers, so the damage shows up
//! on the neighbors as congestion and blocking, not only on the carrier
//! itself.
//!
//! Determinism: the simulator is seeded by the [`TrafficModel`], both
//! runs use the same seed (a paired comparison), and the working copy is
//! restored after every evaluation — each launch is judged against the
//! same baseline network, independent of evaluation order.

use crate::error::MissingParameter;
use crate::report::KpiReport;
use crate::traffic::{simulate, TrafficModel};
use auric_ems::{PostCheck, PostCheckContext, PostCheckVerdict};
use auric_model::{CarrierId, NetworkSnapshot, Provenance};

/// KPI-driven post-launch monitoring for
/// [`SmartLaunch`](auric_ems::SmartLaunch).
pub struct KpiPostCheck {
    /// Private working copy the simulator runs on; mutated during an
    /// evaluation and restored before it returns.
    work: NetworkSnapshot,
    model: TrafficModel,
    /// Maximum tolerated drop in neighborhood mean health before the
    /// verdict is `Degraded`.
    threshold: f64,
}

impl KpiPostCheck {
    /// A check over a copy of `snapshot`, flagging degradation when the
    /// launch costs the neighborhood more than `threshold` mean health.
    pub fn new(snapshot: &NetworkSnapshot, model: TrafficModel, threshold: f64) -> Self {
        Self {
            work: snapshot.clone(),
            model,
            threshold,
        }
    }

    /// Health of the launched carrier's neighborhood: the carrier itself
    /// carries half the weight (it is the subject of the launch), its X2
    /// neighbors share the other half. Carriers the report does not cover
    /// are skipped; with no evidence at all the neighborhood reads as
    /// healthy — no evidence, no verdict.
    fn neighborhood_health(&self, report: &KpiReport, carrier: CarrierId) -> f64 {
        let own = report.kpi(carrier).map(|k| k.health());
        let mut sum = 0.0;
        let mut n = 0usize;
        for &c in self.work.x2.neighbors(carrier) {
            if let Some(k) = report.kpi(c) {
                sum += k.health();
                n += 1;
            }
        }
        match (own, n) {
            (Some(o), 0) => o,
            (Some(o), n) => 0.5 * o + 0.5 * (sum / n as f64),
            (None, 0) => 1.0,
            (None, n) => sum / n as f64,
        }
    }

    /// Simulates the working copy; `Err` means the catalog lacks a
    /// simulator parameter and no verdict is possible.
    fn run(&self) -> Result<KpiReport, MissingParameter> {
        simulate(&self.work, &self.model)
    }
}

impl PostCheck for KpiPostCheck {
    fn evaluate(&mut self, ctx: &PostCheckContext<'_>) -> PostCheckVerdict {
        let carrier = ctx.plan.carrier;
        if carrier.index() >= self.work.n_carriers() {
            // The working copy does not know this carrier; no evidence.
            return PostCheckVerdict::Pass;
        }
        // Save the working copy's values so the evaluation leaves no
        // residue (each launch is judged against the same baseline).
        let saved: Vec<(auric_model::ParamId, auric_model::ValueIdx)> = ctx
            .changes
            .iter()
            .map(|c| (c.param, self.work.config.value(c.param, carrier)))
            .collect();
        let restore = |work: &mut NetworkSnapshot| {
            for &(p, v) in &saved {
                work.config.set_value(p, carrier, v, Provenance::Noise);
            }
        };

        // Pre-launch: the carrier on its vendor-initial configuration.
        for c in ctx.vendor_initial {
            self.work
                .config
                .set_value(c.param, carrier, c.value, Provenance::Noise);
        }
        let pre = match self.run() {
            Ok(r) => r,
            Err(_) => {
                // A catalog without the simulator's parameters cannot
                // produce KPI evidence; degrade gracefully to a pass
                // rather than aborting the campaign.
                restore(&mut self.work);
                return PostCheckVerdict::Pass;
            }
        };

        // Post-launch: the recommended changes applied.
        for c in ctx.changes {
            self.work
                .config
                .set_value(c.param, carrier, c.value, Provenance::Noise);
        }
        let post = match self.run() {
            Ok(r) => r,
            Err(_) => {
                restore(&mut self.work);
                return PostCheckVerdict::Pass;
            }
        };

        let pre_health = self.neighborhood_health(&pre, carrier);
        let post_health = self.neighborhood_health(&post, carrier);
        restore(&mut self.work);

        if pre_health - post_health > self.threshold {
            PostCheckVerdict::Degraded {
                pre_health,
                post_health,
            }
        } else {
            PostCheckVerdict::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_ems::{ConfigChange, LaunchPlan};
    use auric_netgen::{generate, NetScale, TuningKnobs};

    fn setup() -> NetworkSnapshot {
        generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot
    }

    fn plan(carrier: CarrierId) -> LaunchPlan {
        LaunchPlan {
            carrier,
            off_band_unlock: false,
            post_check_failed: false,
        }
    }

    /// A busy carrier whose coverage gate, when poisoned, visibly hurts
    /// its neighborhood.
    fn busy_carrier(snap: &NetworkSnapshot) -> CarrierId {
        let report = simulate(snap, &TrafficModel::default()).unwrap();
        report
            .per_carrier()
            .iter()
            .find(|k| k.served >= 8)
            .expect("some busy carrier exists")
            .carrier
    }

    #[test]
    fn hostile_coverage_gate_is_degraded_and_sane_change_passes() {
        // The scenario the loop exists to catch: a campaign has already
        // pushed a hostile qRxLevMin onto this face's other carriers, and
        // the launch under judgment pushes the same value onto the last
        // carrier still covering the face. Pre (carrier on its vendor
        // value) the face is served; post (carrier hostile too) every
        // session on the face hits a coverage hole.
        let snap = setup();
        let q = snap.catalog.by_name("qRxLevMin").unwrap();
        let carrier = busy_carrier(&snap);
        let vendor_default = snap.catalog.def(q).default;
        let hostile = (snap.catalog.def(q).range.n_values() - 1) as u16;

        let mut poisoned = snap.clone();
        let face = poisoned.carrier(carrier).face;
        let enb = poisoned.carrier(carrier).enodeb;
        let face_carriers: Vec<CarrierId> = poisoned.enodebs[enb.index()]
            .carriers
            .iter()
            .copied()
            .filter(|&c| poisoned.carrier(c).face == face)
            .collect();
        for &c in &face_carriers {
            poisoned
                .config
                .set_value(q, c, hostile, auric_model::Provenance::Noise);
        }

        let mut check = KpiPostCheck::new(&poisoned, TrafficModel::default(), 0.05);
        let changes = [ConfigChange {
            param: q,
            value: hostile,
        }];
        let vendor_initial = [ConfigChange {
            param: q,
            value: vendor_default,
        }];
        let ctx = PostCheckContext {
            snapshot: &poisoned,
            plan: &plan(carrier),
            changes: &changes,
            vendor_initial: &vendor_initial,
        };
        let verdict = check.evaluate(&ctx);
        assert!(
            verdict.is_degraded(),
            "raising qRxLevMin to -44 dBm on the last covering carrier must degrade: {verdict:?}"
        );
        assert!(verdict.health_drop() > 0.05, "{verdict:?}");

        // Re-launching the vendor value itself (a no-op change set) passes
        // — and proves the working copy was restored: the verdict is
        // evaluated against the same baseline as the first call.
        let noop = [ConfigChange {
            param: q,
            value: vendor_default,
        }];
        let ctx = PostCheckContext {
            snapshot: &poisoned,
            plan: &plan(carrier),
            changes: &noop,
            vendor_initial: &noop,
        };
        assert_eq!(check.evaluate(&ctx), PostCheckVerdict::Pass);
    }

    #[test]
    fn evaluation_is_deterministic_and_residue_free() {
        let snap = setup();
        let q = snap.catalog.by_name("qRxLevMin").unwrap();
        let carrier = busy_carrier(&snap);
        let hostile = (snap.catalog.def(q).range.n_values() - 1) as u16;
        let changes = [ConfigChange {
            param: q,
            value: hostile,
        }];
        let vendor_initial = [ConfigChange {
            param: q,
            value: snap.catalog.def(q).default,
        }];
        let ctx = PostCheckContext {
            snapshot: &snap,
            plan: &plan(carrier),
            changes: &changes,
            vendor_initial: &vendor_initial,
        };
        let mut check = KpiPostCheck::new(&snap, TrafficModel::default(), 0.05);
        let a = check.evaluate(&ctx);
        let b = check.evaluate(&ctx);
        assert_eq!(a, b, "same launch, same working copy, same verdict");
    }

    #[test]
    fn unknown_carrier_and_missing_parameters_pass_instead_of_panicking() {
        let snap = setup();
        let q = snap.catalog.by_name("qRxLevMin").unwrap();
        let mut check = KpiPostCheck::new(&snap, TrafficModel::default(), 0.05);
        // Carrier the working copy has never heard of.
        let ctx = PostCheckContext {
            snapshot: &snap,
            plan: &plan(CarrierId(u32::MAX)),
            changes: &[],
            vendor_initial: &[],
        };
        assert_eq!(check.evaluate(&ctx), PostCheckVerdict::Pass);

        // Catalog without the simulator's parameters: no KPI evidence,
        // graceful pass (the MissingParameter path).
        let mut gutted = snap.clone();
        let mut defs = gutted.catalog.defs().to_vec();
        defs[q.index()].name = "qRxLevMinLegacy".into();
        gutted.catalog = auric_model::ParamCatalog::new(defs);
        let mut check = KpiPostCheck::new(&gutted, TrafficModel::default(), 0.05);
        let ctx = PostCheckContext {
            snapshot: &gutted,
            plan: &plan(CarrierId(0)),
            changes: &[],
            vendor_initial: &[],
        };
        assert_eq!(check.evaluate(&ctx), PostCheckVerdict::Pass);
    }
}
