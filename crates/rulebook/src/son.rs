//! SON-style compliance checking (§2.4).
//!
//! Self-Organizing-Network automation "can verify that the parameters
//! conform to the ranges but cannot automatically discover what the
//! optimized values are". This module is that verifier: it audits a
//! snapshot's configuration against the parameter grids and, optionally,
//! against a rule-book.

use crate::Rulebook;
use auric_model::{CarrierId, NetworkSnapshot, PairIdx, ParamId, ParamKind, ValueIdx};
use serde::{Deserialize, Serialize};

/// Where a violation was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Slot {
    Carrier(CarrierId),
    Pair(PairIdx),
}

/// One compliance violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    pub param: ParamId,
    pub slot: Slot,
    pub kind: ViolationKind,
}

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Value index is off the parameter's grid.
    OffGrid { value: ValueIdx },
    /// Value disagrees with the first matching rule-book rule.
    RulebookMismatch { value: ValueIdx, expected: ValueIdx },
}

/// Audit report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ComplianceReport {
    pub checked: usize,
    pub violations: Vec<Violation>,
}

impl ComplianceReport {
    /// Fraction of checked slots that passed.
    pub fn compliance_rate(&self) -> f64 {
        if self.checked == 0 {
            return 1.0;
        }
        1.0 - self.violations.len() as f64 / self.checked as f64
    }
}

/// Checks that every configured value lies on its parameter's grid — the
/// range conformance SON guarantees.
pub fn check_ranges(snapshot: &NetworkSnapshot) -> ComplianceReport {
    let mut report = ComplianceReport::default();
    for def in snapshot.catalog.defs() {
        let n = def.range.n_values();
        match def.kind {
            ParamKind::Singular => {
                for c in &snapshot.carriers {
                    report.checked += 1;
                    let v = snapshot.config.value(def.id, c.id);
                    if (v as usize) >= n {
                        report.violations.push(Violation {
                            param: def.id,
                            slot: Slot::Carrier(c.id),
                            kind: ViolationKind::OffGrid { value: v },
                        });
                    }
                }
            }
            ParamKind::Pairwise => {
                for p in 0..snapshot.x2.n_pairs() as u32 {
                    report.checked += 1;
                    let v = snapshot.config.pair_value(def.id, p);
                    if (v as usize) >= n {
                        report.violations.push(Violation {
                            param: def.id,
                            slot: Slot::Pair(p),
                            kind: ViolationKind::OffGrid { value: v },
                        });
                    }
                }
            }
        }
    }
    report
}

/// Checks singular values against a rule-book (the consistency audit the
/// paper's engineers run between production and the book). Pair-wise
/// parameters are skipped — rule-books don't model neighbors.
pub fn check_rulebook(snapshot: &NetworkSnapshot, book: &Rulebook) -> ComplianceReport {
    let mut report = ComplianceReport::default();
    for def in snapshot.catalog.defs() {
        if def.kind != ParamKind::Singular {
            continue;
        }
        for c in &snapshot.carriers {
            report.checked += 1;
            let v = snapshot.config.value(def.id, c.id);
            let expected = book.lookup(def.id, &c.attrs, def.default);
            if v != expected {
                report.violations.push(Violation {
                    param: def.id,
                    slot: Slot::Carrier(c.id),
                    kind: ViolationKind::RulebookMismatch { value: v, expected },
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    #[test]
    fn generated_networks_are_range_compliant() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let report = check_ranges(&net.snapshot);
        assert!(report.violations.is_empty());
        assert_eq!(report.compliance_rate(), 1.0);
        assert_eq!(report.checked, net.snapshot.config.total_values());
    }

    #[test]
    fn rulebook_audit_finds_local_tuning() {
        // A network with tuning deviates from its own mined rule-book
        // exactly where engineers tuned; a clean network still deviates
        // wherever latent rules key on attributes outside RULEBOOK_KEY.
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let book = crate::mine_rulebook(&net.snapshot);
        let report = check_rulebook(&net.snapshot, &book);
        assert!(report.checked > 0);
        assert!(
            !report.violations.is_empty(),
            "mined book should not explain every tuned value"
        );
        assert!(report.compliance_rate() > 0.5);
    }

    #[test]
    fn empty_report_is_fully_compliant() {
        assert_eq!(ComplianceReport::default().compliance_rate(), 1.0);
    }
}
