//! The operational-practice baseline (§2.4): rule-books and SON compliance.
//!
//! Before Auric, carrier configuration came from *rule-books* — tables,
//! maintained by domain experts, mapping carrier-attribute conditions to
//! default parameter values — enforced by SON automation that can verify
//! range compliance but "cannot automatically discover what the optimized
//! values are". This crate models that world:
//!
//! - [`Rule`] / [`Rulebook`] — ordered first-match-wins rules per
//!   parameter, falling back to the catalog default;
//! - [`mine_rulebook`] — the closest a rule-book can get to the data:
//!   per parameter, the majority value for each combination of a fixed,
//!   hand-picked attribute set (what a diligent engineering team would
//!   tabulate);
//! - [`son`] — SON-style compliance checking: every configured value must
//!   lie on its parameter's grid and (when a rule matches) agree with the
//!   rule-book.
//!
//! The evaluation uses the mined rule-book as the "status quo" baseline
//! that Auric's learners are compared against.

pub mod son;

use auric_model::{AttrId, AttrValue, AttrVec, NetworkSnapshot, ParamId, ParamKind, ValueIdx};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An equality condition on one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Condition {
    pub attr: AttrId,
    pub level: AttrValue,
}

/// One rule: if every condition matches, the parameter takes `value`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    pub param: ParamId,
    pub conditions: Vec<Condition>,
    pub value: ValueIdx,
}

impl Rule {
    /// True when the carrier's attributes satisfy every condition.
    pub fn matches(&self, attrs: &AttrVec) -> bool {
        self.conditions.iter().all(|c| attrs.get(c.attr) == c.level)
    }
}

/// An ordered rule-book: first matching rule wins; no match falls back to
/// the catalog default.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Rulebook {
    rules: Vec<Rule>,
    /// Per-parameter index into `rules` for fast lookup.
    by_param: HashMap<ParamId, Vec<usize>>,
}

impl Rulebook {
    /// Builds a rule-book from rules, preserving order per parameter.
    pub fn new(rules: Vec<Rule>) -> Self {
        let mut by_param: HashMap<ParamId, Vec<usize>> = HashMap::new();
        for (i, r) in rules.iter().enumerate() {
            by_param.entry(r.param).or_default().push(i);
        }
        Self { rules, by_param }
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the book has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// All rules for a parameter, in priority order.
    pub fn rules_for(&self, param: ParamId) -> impl Iterator<Item = &Rule> + '_ {
        self.by_param
            .get(&param)
            .into_iter()
            .flatten()
            .map(|&i| &self.rules[i])
    }

    /// The rule-book value for `param` on a carrier with `attrs`: first
    /// matching rule, else `default`.
    pub fn lookup(&self, param: ParamId, attrs: &AttrVec, default: ValueIdx) -> ValueIdx {
        self.rules_for(param)
            .find(|r| r.matches(attrs))
            .map(|r| r.value)
            .unwrap_or(default)
    }
}

/// The attribute set a hand-written rule-book keys on: the coarse static
/// descriptors an engineering guide would tabulate. (Deliberately *not*
/// data-driven — discovering the right keys per parameter is exactly what
/// rule-books can't do and Auric can.)
pub const RULEBOOK_KEY: [AttrId; 3] = [
    AttrId(0), // carrier_frequency
    AttrId(3), // morphology
    AttrId(4), // channel_bandwidth
];

/// Mines a rule-book from an operational snapshot: for every parameter and
/// every observed combination of [`RULEBOOK_KEY`] attributes, the majority
/// configured value becomes a rule. Pair-wise parameters are keyed on the
/// *source* carrier only (a rule-book has no notion of a neighbor).
pub fn mine_rulebook(snapshot: &NetworkSnapshot) -> Rulebook {
    let mut rules = Vec::new();
    for def in snapshot.catalog.defs() {
        // combo -> value -> count
        let mut counts: HashMap<Vec<AttrValue>, HashMap<ValueIdx, usize>> = HashMap::new();
        let mut bump = |attrs: &AttrVec, v: ValueIdx| {
            let key: Vec<AttrValue> = RULEBOOK_KEY.iter().map(|&a| attrs.get(a)).collect();
            *counts.entry(key).or_default().entry(v).or_insert(0) += 1;
        };
        match def.kind {
            ParamKind::Singular => {
                for c in &snapshot.carriers {
                    bump(&c.attrs, snapshot.config.value(def.id, c.id));
                }
            }
            ParamKind::Pairwise => {
                for (p, j, _) in snapshot.x2.pairs() {
                    bump(
                        &snapshot.carriers[j.index()].attrs,
                        snapshot.config.pair_value(def.id, p),
                    );
                }
            }
        }
        let mut combos: Vec<_> = counts.into_iter().collect();
        combos.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic order
        for (key, values) in combos {
            let (&value, _) = values
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .expect("non-empty combo");
            rules.push(Rule {
                param: def.id,
                conditions: RULEBOOK_KEY
                    .iter()
                    .zip(&key)
                    .map(|(&attr, &level)| Condition { attr, level })
                    .collect(),
                value,
            });
        }
    }
    Rulebook::new(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(vals: &[u16]) -> AttrVec {
        AttrVec::new(vals.to_vec())
    }

    #[test]
    fn rule_matching() {
        let r = Rule {
            param: ParamId(0),
            conditions: vec![
                Condition {
                    attr: AttrId(0),
                    level: 2,
                },
                Condition {
                    attr: AttrId(2),
                    level: 1,
                },
            ],
            value: 9,
        };
        assert!(r.matches(&attrs(&[2, 0, 1])));
        assert!(!r.matches(&attrs(&[2, 0, 0])));
        assert!(!r.matches(&attrs(&[1, 0, 1])));
    }

    #[test]
    fn unconditional_rule_matches_everything() {
        let r = Rule {
            param: ParamId(0),
            conditions: vec![],
            value: 3,
        };
        assert!(r.matches(&attrs(&[0, 0, 0])));
    }

    #[test]
    fn first_match_wins() {
        let book = Rulebook::new(vec![
            Rule {
                param: ParamId(1),
                conditions: vec![Condition {
                    attr: AttrId(0),
                    level: 0,
                }],
                value: 10,
            },
            Rule {
                param: ParamId(1),
                conditions: vec![],
                value: 20,
            },
        ]);
        assert_eq!(book.lookup(ParamId(1), &attrs(&[0, 0]), 99), 10);
        assert_eq!(book.lookup(ParamId(1), &attrs(&[1, 0]), 99), 20);
        // Unknown parameter falls back to the default.
        assert_eq!(book.lookup(ParamId(7), &attrs(&[0, 0]), 99), 99);
    }

    #[test]
    fn rules_are_scoped_per_parameter() {
        let book = Rulebook::new(vec![Rule {
            param: ParamId(2),
            conditions: vec![],
            value: 5,
        }]);
        assert_eq!(book.rules_for(ParamId(2)).count(), 1);
        assert_eq!(book.rules_for(ParamId(0)).count(), 0);
        assert_eq!(book.len(), 1);
    }

    #[test]
    fn mined_rulebook_recovers_majorities() {
        use auric_netgen::{generate, NetScale, TuningKnobs};
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let book = mine_rulebook(&net.snapshot);
        assert!(!book.is_empty());
        // On a clean (rules-only) network, the mined book predicts the
        // current value wherever the latent rule happens to be a function
        // of the rule-book key; overall it should beat, say, 50%.
        let snap = &net.snapshot;
        let mut hit = 0usize;
        let mut total = 0usize;
        for def in snap.catalog.singular_ids() {
            let default = snap.catalog.def(def).default;
            for c in &snap.carriers {
                total += 1;
                if book.lookup(def, &c.attrs, default) == snap.config.value(def, c.id) {
                    hit += 1;
                }
            }
        }
        let acc = hit as f64 / total as f64;
        assert!(acc > 0.5, "mined rule-book accuracy {acc} implausibly low");
        assert!(
            acc < 1.0,
            "rule-book cannot capture market-level tuning exactly"
        );
    }
}
