//! The element management system and the carrier lifecycle (§5).
//!
//! Two operational facts drive the design, both straight from the paper:
//!
//! 1. Changing many parameters requires the carrier to be **locked**
//!    (off-air); locking a live carrier is "equivalent to a reboot" and
//!    risks service disruption, so SmartLaunch pushes configuration
//!    *before* unlocking and refuses to touch carriers that went live
//!    early.
//! 2. The EMS limits how many parameter executions run concurrently;
//!    "configuration change implementation for some of the carriers
//!    resulted in timeouts because of the very large number of
//!    parameters" — so oversized batches can time out.

use crate::mo::ConfigFile;
use auric_model::CarrierId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Lifecycle state of a carrier as the EMS sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CarrierState {
    /// Physically integrated, software-configured, off-air. Config
    /// changes are safe.
    Locked,
    /// On-air and carrying traffic. Config pushes are refused — changing
    /// lock-required parameters live risks a disruption.
    Unlocked,
}

/// EMS behavior knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmsSettings {
    /// Maximum parameter executions one push can run without timing out
    /// (the §5 restriction on concurrent executions).
    pub max_executions_per_push: usize,
}

impl Default for EmsSettings {
    fn default() -> Self {
        Self {
            max_executions_per_push: 40,
        }
    }
}

/// Why a push failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PushError {
    /// The carrier is already live (off-band unlock): refusing to change
    /// it rather than risk a disruption.
    CarrierUnlocked,
    /// The batch exceeded the EMS execution limit and timed out.
    ExecutionTimeout { attempted: usize, limit: usize },
    /// The carrier is not in the EMS inventory at all.
    UnknownCarrier,
}

/// A successful push.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushOutcome {
    pub carrier: CarrierId,
    pub parameters_changed: usize,
}

/// The element management system: tracks lifecycle state and accepts
/// config files.
#[derive(Debug, Clone, Default)]
pub struct Ems {
    settings: EmsSettings,
    states: HashMap<CarrierId, CarrierState>,
    /// Audit log of accepted payload sizes (bytes), for diagnostics.
    accepted_bytes: u64,
    accepted_pushes: usize,
}

impl Ems {
    /// An EMS with the given settings and an empty inventory.
    pub fn new(settings: EmsSettings) -> Self {
        Self {
            settings,
            states: HashMap::new(),
            accepted_bytes: 0,
            accepted_pushes: 0,
        }
    }

    /// Registers a carrier in `Locked` state (integration complete).
    pub fn register_locked(&mut self, c: CarrierId) {
        self.states.insert(c, CarrierState::Locked);
    }

    /// Current state of a carrier, if registered.
    pub fn state(&self, c: CarrierId) -> Option<CarrierState> {
        self.states.get(&c).copied()
    }

    /// Unlocks a carrier (puts it on-air). Also models §5's *off-band*
    /// unlocks when invoked outside the SmartLaunch flow.
    pub fn unlock(&mut self, c: CarrierId) {
        self.states.insert(c, CarrierState::Unlocked);
    }

    /// Pushes a rendered config file. Enforces the lock requirement and
    /// the execution limit.
    pub fn push(&mut self, file: &ConfigFile) -> Result<PushOutcome, PushError> {
        match self.states.get(&file.carrier) {
            None => Err(PushError::UnknownCarrier),
            Some(CarrierState::Unlocked) => Err(PushError::CarrierUnlocked),
            Some(CarrierState::Locked) => {
                if file.n_changes > self.settings.max_executions_per_push {
                    return Err(PushError::ExecutionTimeout {
                        attempted: file.n_changes,
                        limit: self.settings.max_executions_per_push,
                    });
                }
                self.accepted_bytes += file.payload.len() as u64;
                self.accepted_pushes += 1;
                Ok(PushOutcome {
                    carrier: file.carrier,
                    parameters_changed: file.n_changes,
                })
            }
        }
    }

    /// Total accepted pushes (audit).
    pub fn accepted_pushes(&self) -> usize {
        self.accepted_pushes
    }

    /// Total accepted payload bytes (audit).
    pub fn accepted_bytes(&self) -> u64 {
        self.accepted_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mo::{ConfigChange, InstanceDb, VendorTemplate};
    use auric_model::Vendor;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    fn file(n_changes: usize) -> (auric_model::NetworkSnapshot, ConfigFile) {
        let snap = generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot;
        let db = InstanceDb::build(&snap);
        let changes: Vec<ConfigChange> = snap
            .catalog
            .singular_ids()
            .take(n_changes)
            .map(|p| ConfigChange { param: p, value: 1 })
            .collect();
        let f = VendorTemplate {
            vendor: Vendor::VendorA,
        }
        .render(&snap, &db, CarrierId(0), &changes);
        (snap, f)
    }

    #[test]
    fn locked_carrier_accepts_pushes() {
        let (_, f) = file(3);
        let mut ems = Ems::new(EmsSettings::default());
        ems.register_locked(CarrierId(0));
        let out = ems.push(&f).unwrap();
        assert_eq!(out.parameters_changed, 3);
        assert_eq!(ems.accepted_pushes(), 1);
        assert!(ems.accepted_bytes() > 0);
    }

    #[test]
    fn unlocked_carrier_refuses_pushes() {
        let (_, f) = file(2);
        let mut ems = Ems::new(EmsSettings::default());
        ems.register_locked(CarrierId(0));
        ems.unlock(CarrierId(0));
        assert_eq!(ems.push(&f), Err(PushError::CarrierUnlocked));
        assert_eq!(ems.accepted_pushes(), 0);
    }

    #[test]
    fn oversized_batches_time_out() {
        let (_, f) = file(10);
        let mut ems = Ems::new(EmsSettings {
            max_executions_per_push: 5,
        });
        ems.register_locked(CarrierId(0));
        assert_eq!(
            ems.push(&f),
            Err(PushError::ExecutionTimeout {
                attempted: 10,
                limit: 5
            })
        );
    }

    #[test]
    fn unknown_carriers_are_rejected() {
        let (_, f) = file(1);
        let mut ems = Ems::new(EmsSettings::default());
        assert_eq!(ems.push(&f), Err(PushError::UnknownCarrier));
    }

    #[test]
    fn state_transitions() {
        let mut ems = Ems::new(EmsSettings::default());
        assert_eq!(ems.state(CarrierId(7)), None);
        ems.register_locked(CarrierId(7));
        assert_eq!(ems.state(CarrierId(7)), Some(CarrierState::Locked));
        ems.unlock(CarrierId(7));
        assert_eq!(ems.state(CarrierId(7)), Some(CarrierState::Unlocked));
    }
}
