//! The element management system and the carrier lifecycle (§5).
//!
//! Two operational facts drive the design, both straight from the paper:
//!
//! 1. Changing many parameters requires the carrier to be **locked**
//!    (off-air); locking a live carrier is "equivalent to a reboot" and
//!    risks service disruption, so SmartLaunch pushes configuration
//!    *before* unlocking and refuses to touch carriers that went live
//!    early.
//! 2. The EMS limits how many parameter executions run concurrently;
//!    "configuration change implementation for some of the carriers
//!    resulted in timeouts because of the very large number of
//!    parameters" — so oversized batches can time out.
//!
//! The pipeline talks to the EMS through the [`EmsBackend`] trait so that
//! the fault-injection layer ([`crate::fault`]) can wrap a real [`Ems`]
//! and misbehave in controlled, seeded ways.

use crate::mo::ConfigFile;
use auric_model::{CarrierId, ParamId, ValueIdx};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Lifecycle state of a carrier as the EMS sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CarrierState {
    /// Physically integrated, software-configured, off-air. Config
    /// changes are safe.
    Locked,
    /// On-air and carrying traffic. Config pushes are refused — changing
    /// lock-required parameters live risks a disruption.
    Unlocked,
}

/// EMS behavior knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmsSettings {
    /// Maximum parameter executions one push can run without timing out
    /// (the §5 restriction on concurrent executions).
    pub max_executions_per_push: usize,
}

impl Default for EmsSettings {
    fn default() -> Self {
        Self {
            max_executions_per_push: 40,
        }
    }
}

/// Why a push failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PushError {
    /// The carrier is already live (off-band unlock): refusing to change
    /// it rather than risk a disruption.
    CarrierUnlocked,
    /// The batch exceeded the EMS execution limit (or its deadline under
    /// injected latency) and timed out.
    ExecutionTimeout { attempted: usize, limit: usize },
    /// The carrier is not in the EMS inventory at all.
    UnknownCarrier,
    /// The EMS dropped the request before applying anything (a transient
    /// execution failure); nothing landed, so a retry is safe.
    TransientFailure,
    /// Only the first `applied` of `attempted` changes landed before the
    /// EMS gave up — the carrier holds a torn prefix until the remainder
    /// is re-pushed or the prefix is rolled back.
    PartialApplication { applied: usize, attempted: usize },
}

impl PushError {
    /// Whether retrying the (remaining) batch can plausibly succeed.
    /// Lifecycle rejections (`CarrierUnlocked`, `UnknownCarrier`) are
    /// permanent from the pipeline's point of view.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PushError::ExecutionTimeout { .. }
                | PushError::TransientFailure
                | PushError::PartialApplication { .. }
        )
    }
}

/// A successful push.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushOutcome {
    pub carrier: CarrierId,
    pub parameters_changed: usize,
}

/// Rolling audit of EMS activity: accepted work plus rejections broken
/// out per [`PushError`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EmsAudit {
    pub accepted_pushes: usize,
    /// Total accepted payload bytes.
    pub accepted_bytes: u64,
    pub rejected_unlocked: usize,
    pub rejected_timeout: usize,
    pub rejected_unknown: usize,
    pub rejected_transient: usize,
    pub rejected_partial: usize,
    /// Tripwire: pushes accepted while the carrier was `Unlocked`. The
    /// EMS refuses these by construction, so this stays 0 unless a
    /// backend wrapper corrupts the lifecycle; the invariant checker
    /// treats any nonzero count as a violation.
    pub unlocked_accepts: usize,
}

impl EmsAudit {
    /// Total rejected pushes across all causes.
    pub fn rejected_pushes(&self) -> usize {
        self.rejected_unlocked
            + self.rejected_timeout
            + self.rejected_unknown
            + self.rejected_transient
            + self.rejected_partial
    }

    /// Records one rejection under the matching per-variant counter.
    pub fn record_rejection(&mut self, e: &PushError) {
        match e {
            PushError::CarrierUnlocked => self.rejected_unlocked += 1,
            PushError::ExecutionTimeout { .. } => self.rejected_timeout += 1,
            PushError::UnknownCarrier => self.rejected_unknown += 1,
            PushError::TransientFailure => self.rejected_transient += 1,
            PushError::PartialApplication { .. } => self.rejected_partial += 1,
        }
    }

    /// Element-wise sum of two audits (used to merge a fault layer's
    /// overlay rejections into the wrapped EMS's audit).
    pub fn merged(&self, other: &EmsAudit) -> EmsAudit {
        EmsAudit {
            accepted_pushes: self.accepted_pushes + other.accepted_pushes,
            accepted_bytes: self.accepted_bytes + other.accepted_bytes,
            rejected_unlocked: self.rejected_unlocked + other.rejected_unlocked,
            rejected_timeout: self.rejected_timeout + other.rejected_timeout,
            rejected_unknown: self.rejected_unknown + other.rejected_unknown,
            rejected_transient: self.rejected_transient + other.rejected_transient,
            rejected_partial: self.rejected_partial + other.rejected_partial,
            unlocked_accepts: self.unlocked_accepts + other.unlocked_accepts,
        }
    }
}

/// What the SmartLaunch pipeline needs from an element manager. [`Ems`]
/// is the well-behaved implementation; [`crate::fault::FaultInjector`]
/// wraps any backend and injects seeded misbehavior.
pub trait EmsBackend {
    /// The behavior knobs (the pipeline reads the execution limit off
    /// these to size sub-batches).
    fn settings(&self) -> EmsSettings;
    /// Registers a carrier in `Locked` state (integration complete).
    fn register_locked(&mut self, c: CarrierId);
    /// Re-locks a carrier for maintenance (takes it off-air).
    fn lock(&mut self, c: CarrierId);
    /// Unlocks a carrier (puts it on-air).
    fn unlock(&mut self, c: CarrierId);
    /// Current state of a carrier, if registered.
    fn state(&self, c: CarrierId) -> Option<CarrierState>;
    /// Pushes a rendered config file.
    fn push(&mut self, file: &ConfigFile) -> Result<PushOutcome, PushError>;
    /// The configuration value actually applied to `c` for `p`, if any
    /// push ever set it.
    fn applied_value(&self, c: CarrierId, p: ParamId) -> Option<ValueIdx>;
    /// The audit counters, including any wrapper overlay.
    fn audit(&self) -> EmsAudit;
}

/// The element management system: tracks lifecycle state, accepts config
/// files, and remembers the configuration each accepted push applied.
#[derive(Debug, Clone, Default)]
pub struct Ems {
    settings: EmsSettings,
    states: HashMap<CarrierId, CarrierState>,
    /// Configuration actually applied per carrier, parameter by
    /// parameter (the "device state" consistency checks compare against).
    applied: HashMap<CarrierId, HashMap<ParamId, ValueIdx>>,
    audit: EmsAudit,
}

impl Ems {
    /// An EMS with the given settings and an empty inventory.
    pub fn new(settings: EmsSettings) -> Self {
        Self {
            settings,
            ..Self::default()
        }
    }

    /// Registers a carrier in `Locked` state (integration complete).
    pub fn register_locked(&mut self, c: CarrierId) {
        self.states.insert(c, CarrierState::Locked);
    }

    /// Current state of a carrier, if registered.
    pub fn state(&self, c: CarrierId) -> Option<CarrierState> {
        self.states.get(&c).copied()
    }

    /// Unlocks a carrier (puts it on-air). Also models §5's *off-band*
    /// unlocks when invoked outside the SmartLaunch flow.
    pub fn unlock(&mut self, c: CarrierId) {
        self.states.insert(c, CarrierState::Unlocked);
    }

    /// Re-locks a carrier for maintenance. On a live carrier this is the
    /// §5 "equivalent to a reboot" operation — the pipeline avoids it;
    /// it exists for maintenance flows and lifecycle testing.
    pub fn lock(&mut self, c: CarrierId) {
        self.states.insert(c, CarrierState::Locked);
    }

    /// Pushes a rendered config file. Enforces the lock requirement and
    /// the execution limit.
    pub fn push(&mut self, file: &ConfigFile) -> Result<PushOutcome, PushError> {
        match self.states.get(&file.carrier) {
            None => {
                let e = PushError::UnknownCarrier;
                self.audit.record_rejection(&e);
                Err(e)
            }
            Some(CarrierState::Unlocked) => {
                let e = PushError::CarrierUnlocked;
                self.audit.record_rejection(&e);
                Err(e)
            }
            Some(CarrierState::Locked) => {
                if file.n_changes > self.settings.max_executions_per_push {
                    let e = PushError::ExecutionTimeout {
                        attempted: file.n_changes,
                        limit: self.settings.max_executions_per_push,
                    };
                    self.audit.record_rejection(&e);
                    return Err(e);
                }
                self.audit.accepted_bytes += file.payload.len() as u64;
                self.audit.accepted_pushes += 1;
                let slot = self.applied.entry(file.carrier).or_default();
                for ch in &file.changes {
                    slot.insert(ch.param, ch.value);
                }
                Ok(PushOutcome {
                    carrier: file.carrier,
                    parameters_changed: file.n_changes,
                })
            }
        }
    }

    /// Total accepted pushes (audit).
    pub fn accepted_pushes(&self) -> usize {
        self.audit.accepted_pushes
    }

    /// Total accepted payload bytes (audit).
    pub fn accepted_bytes(&self) -> u64 {
        self.audit.accepted_bytes
    }
}

impl EmsBackend for Ems {
    fn settings(&self) -> EmsSettings {
        self.settings
    }

    fn register_locked(&mut self, c: CarrierId) {
        Ems::register_locked(self, c);
    }

    fn lock(&mut self, c: CarrierId) {
        Ems::lock(self, c);
    }

    fn unlock(&mut self, c: CarrierId) {
        Ems::unlock(self, c);
    }

    fn state(&self, c: CarrierId) -> Option<CarrierState> {
        Ems::state(self, c)
    }

    fn push(&mut self, file: &ConfigFile) -> Result<PushOutcome, PushError> {
        Ems::push(self, file)
    }

    fn applied_value(&self, c: CarrierId, p: ParamId) -> Option<ValueIdx> {
        self.applied.get(&c).and_then(|m| m.get(&p)).copied()
    }

    fn audit(&self) -> EmsAudit {
        self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mo::{ConfigChange, InstanceDb, VendorTemplate};
    use auric_model::{NetworkSnapshot, Vendor};
    use auric_netgen::{generate, NetScale, TuningKnobs};
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn shared_snapshot() -> &'static NetworkSnapshot {
        static SNAP: OnceLock<NetworkSnapshot> = OnceLock::new();
        SNAP.get_or_init(|| generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot)
    }

    fn render(carrier: CarrierId, n_changes: usize) -> ConfigFile {
        let snap = shared_snapshot();
        let db = InstanceDb::build(snap);
        let changes: Vec<ConfigChange> = snap
            .catalog
            .singular_ids()
            .take(n_changes)
            .map(|p| ConfigChange { param: p, value: 1 })
            .collect();
        VendorTemplate {
            vendor: Vendor::VendorA,
        }
        .render(snap, &db, carrier, &changes)
    }

    fn file(n_changes: usize) -> ConfigFile {
        render(CarrierId(0), n_changes)
    }

    #[test]
    fn locked_carrier_accepts_pushes() {
        let f = file(3);
        let mut ems = Ems::new(EmsSettings::default());
        ems.register_locked(CarrierId(0));
        let out = ems.push(&f).unwrap();
        assert_eq!(out.parameters_changed, 3);
        assert_eq!(ems.accepted_pushes(), 1);
        assert!(ems.accepted_bytes() > 0);
        // The applied state mirrors the accepted changes.
        for ch in &f.changes {
            assert_eq!(ems.applied_value(CarrierId(0), ch.param), Some(ch.value));
        }
    }

    #[test]
    fn unlocked_carrier_refuses_pushes() {
        let f = file(2);
        let mut ems = Ems::new(EmsSettings::default());
        ems.register_locked(CarrierId(0));
        ems.unlock(CarrierId(0));
        assert_eq!(ems.push(&f), Err(PushError::CarrierUnlocked));
        assert_eq!(ems.accepted_pushes(), 0);
        assert_eq!(ems.audit().rejected_unlocked, 1);
        assert_eq!(ems.applied_value(CarrierId(0), f.changes[0].param), None);
    }

    #[test]
    fn oversized_batches_time_out() {
        let f = file(10);
        let mut ems = Ems::new(EmsSettings {
            max_executions_per_push: 5,
        });
        ems.register_locked(CarrierId(0));
        assert_eq!(
            ems.push(&f),
            Err(PushError::ExecutionTimeout {
                attempted: 10,
                limit: 5
            })
        );
        assert_eq!(ems.audit().rejected_timeout, 1);
    }

    #[test]
    fn unknown_carriers_are_rejected() {
        let f = file(1);
        let mut ems = Ems::new(EmsSettings::default());
        assert_eq!(ems.push(&f), Err(PushError::UnknownCarrier));
        assert_eq!(ems.audit().rejected_unknown, 1);
    }

    #[test]
    fn state_transitions() {
        let mut ems = Ems::new(EmsSettings::default());
        assert_eq!(ems.state(CarrierId(7)), None);
        ems.register_locked(CarrierId(7));
        assert_eq!(ems.state(CarrierId(7)), Some(CarrierState::Locked));
        ems.unlock(CarrierId(7));
        assert_eq!(ems.state(CarrierId(7)), Some(CarrierState::Unlocked));
        ems.lock(CarrierId(7));
        assert_eq!(ems.state(CarrierId(7)), Some(CarrierState::Locked));
    }

    #[test]
    fn relocked_carriers_accept_pushes_again() {
        let f = file(2);
        let mut ems = Ems::new(EmsSettings::default());
        ems.register_locked(CarrierId(0));
        ems.unlock(CarrierId(0));
        assert_eq!(ems.push(&f), Err(PushError::CarrierUnlocked));
        ems.lock(CarrierId(0));
        assert!(ems.push(&f).is_ok());
    }

    #[test]
    fn audit_merge_adds_every_counter() {
        let a = EmsAudit {
            accepted_pushes: 1,
            accepted_bytes: 10,
            rejected_unlocked: 2,
            rejected_timeout: 3,
            rejected_unknown: 4,
            rejected_transient: 5,
            rejected_partial: 6,
            unlocked_accepts: 0,
        };
        let m = a.merged(&a);
        assert_eq!(m.accepted_pushes, 2);
        assert_eq!(m.accepted_bytes, 20);
        assert_eq!(m.rejected_pushes(), 2 * a.rejected_pushes());
    }

    #[test]
    fn retryable_classification() {
        assert!(PushError::TransientFailure.is_retryable());
        assert!(PushError::ExecutionTimeout {
            attempted: 9,
            limit: 5
        }
        .is_retryable());
        assert!(PushError::PartialApplication {
            applied: 1,
            attempted: 3
        }
        .is_retryable());
        assert!(!PushError::CarrierUnlocked.is_retryable());
        assert!(!PushError::UnknownCarrier.is_retryable());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Lifecycle state machine: under arbitrary interleavings of
        /// register / lock / unlock / push, changes are never applied to
        /// an `Unlocked` (or unregistered) carrier and the audit counters
        /// stay consistent with the observed outcomes.
        #[test]
        fn lifecycle_never_configures_live_carriers(
            ops in proptest::collection::vec((0u8..4, 0u32..5, 1usize..8), 1..80)
        ) {
            let mut ems = Ems::new(EmsSettings { max_executions_per_push: 5 });
            // Reference model: plain per-carrier states + outcome tallies.
            let mut model: std::collections::HashMap<CarrierId, CarrierState> =
                std::collections::HashMap::new();
            let mut model_applied: std::collections::HashMap<(CarrierId, ParamId), ValueIdx> =
                std::collections::HashMap::new();
            let mut accepted = 0usize;
            let mut rejected = EmsAudit::default();
            for &(op, c, n) in &ops {
                let c = CarrierId(c);
                match op {
                    0 => { ems.register_locked(c); model.insert(c, CarrierState::Locked); }
                    1 => { ems.lock(c); model.insert(c, CarrierState::Locked); }
                    2 => { ems.unlock(c); model.insert(c, CarrierState::Unlocked); }
                    _ => {
                        let f = render(c, n);
                        let res = ems.push(&f);
                        match model.get(&c) {
                            None => {
                                prop_assert_eq!(res, Err(PushError::UnknownCarrier));
                                rejected.rejected_unknown += 1;
                            }
                            Some(CarrierState::Unlocked) => {
                                prop_assert_eq!(res, Err(PushError::CarrierUnlocked));
                                rejected.rejected_unlocked += 1;
                            }
                            Some(CarrierState::Locked) if n > 5 => {
                                prop_assert_eq!(
                                    res,
                                    Err(PushError::ExecutionTimeout { attempted: n, limit: 5 })
                                );
                                rejected.rejected_timeout += 1;
                            }
                            Some(CarrierState::Locked) => {
                                prop_assert!(res.is_ok());
                                accepted += 1;
                                for ch in &f.changes {
                                    model_applied.insert((c, ch.param), ch.value);
                                }
                            }
                        }
                        // The device state tracks accepted pushes exactly:
                        // a refused push leaves it untouched.
                        for ch in &f.changes {
                            prop_assert_eq!(
                                ems.applied_value(c, ch.param),
                                model_applied.get(&(c, ch.param)).copied()
                            );
                        }
                    }
                }
            }
            let audit = ems.audit();
            prop_assert_eq!(audit.accepted_pushes, accepted);
            prop_assert_eq!(audit.rejected_unknown, rejected.rejected_unknown);
            prop_assert_eq!(audit.rejected_unlocked, rejected.rejected_unlocked);
            prop_assert_eq!(audit.rejected_timeout, rejected.rejected_timeout);
            prop_assert_eq!(audit.rejected_transient, 0);
            prop_assert_eq!(audit.rejected_partial, 0);
            prop_assert_eq!(audit.unlocked_accepts, 0);
        }
    }
}
