//! Managed objects and vendor configuration templates (§5).
//!
//! "Cellular equipment vendors provide a configuration schema where the
//! configuration parameters are organized in the form of a hierarchical
//! structure called managed objects"; the controller "maintains a
//! vendor-specific template and automates the task of generating the
//! configuration file by filling in the instance IDs from a database."
//!
//! Each vendor renders the same logical change differently: VendorA uses
//! an MO-path assignment dialect, VendorB an XML-ish bulk format, VendorC
//! a flat CLI. The EMS consumes the rendered [`ConfigFile`] opaquely.

use auric_model::{CarrierId, NetworkSnapshot, ParamFunction, ParamId, ValueIdx, Vendor};
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One parameter change to implement on one carrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConfigChange {
    pub param: ParamId,
    pub value: ValueIdx,
}

/// The instance-ID database: maps a carrier to the vendor's cell instance
/// identifier (filled into the template).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceDb {
    ids: HashMap<CarrierId, String>,
}

impl InstanceDb {
    /// Builds the database for a snapshot: a deterministic vendor-style
    /// cell id per carrier (`<eNodeB>-<face>-<band>`).
    pub fn build(snapshot: &NetworkSnapshot) -> Self {
        let ids = snapshot
            .carriers
            .iter()
            .map(|c| {
                (
                    c.id,
                    format!("ENB{:05}-F{}-{}", c.enodeb.0, c.face, c.band.label()),
                )
            })
            .collect();
        Self { ids }
    }

    /// The instance id of a carrier.
    ///
    /// # Panics
    /// Panics if the carrier is unknown — pushing config for a carrier
    /// missing from inventory is an integration bug.
    pub fn instance(&self, c: CarrierId) -> &str {
        self.ids
            .get(&c)
            .unwrap_or_else(|| panic!("{c} missing from the instance database"))
    }
}

/// The managed-object class a parameter lives under, per function. Shared
/// across vendors logically; each vendor names the hierarchy differently.
pub fn mo_class(function: ParamFunction) -> &'static str {
    match function {
        ParamFunction::RadioConnection => "RadioConnection",
        ParamFunction::PowerControl => "PowerControl",
        ParamFunction::LinkAdaptation => "LinkAdaptation",
        ParamFunction::Scheduling => "Scheduler",
        ParamFunction::CapacityManagement => "CapacityMgmt",
        ParamFunction::LayerManagement => "LayerMgmt",
        ParamFunction::Mobility => "MobilityCtrl",
        ParamFunction::Handover => "ReportConfig",
        ParamFunction::Interference => "InterferenceCtrl",
        ParamFunction::LoadBalancing => "LoadBalancing",
    }
}

/// A rendered vendor configuration file, ready for the EMS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigFile {
    pub carrier: CarrierId,
    pub vendor: Vendor,
    /// Number of parameter assignments in the payload.
    pub n_changes: usize,
    /// The logical changes the payload encodes, in payload order. The EMS
    /// uses these to track the configuration actually applied per carrier
    /// (and the fault layer to model partial batch application).
    pub changes: Vec<ConfigChange>,
    pub payload: Bytes,
}

impl ConfigFile {
    /// The payload as UTF-8 (templates only emit ASCII).
    pub fn as_text(&self) -> &str {
        std::str::from_utf8(&self.payload).expect("templates emit ASCII")
    }

    /// The file truncated to its first `k` changes — what a partial batch
    /// application leaves on the device. The payload is kept whole: the
    /// EMS audits bytes per accepted request, not per applied change.
    ///
    /// # Panics
    /// Panics if `k > n_changes`.
    pub fn prefix(&self, k: usize) -> ConfigFile {
        assert!(k <= self.n_changes, "prefix longer than the batch");
        ConfigFile {
            carrier: self.carrier,
            vendor: self.vendor,
            n_changes: k,
            changes: self.changes[..k].to_vec(),
            payload: self.payload.clone(),
        }
    }
}

/// Vendor-specific template renderer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorTemplate {
    pub vendor: Vendor,
}

impl VendorTemplate {
    /// Renders the config file implementing `changes` on `carrier`.
    pub fn render(
        &self,
        snapshot: &NetworkSnapshot,
        db: &InstanceDb,
        carrier: CarrierId,
        changes: &[ConfigChange],
    ) -> ConfigFile {
        let instance = db.instance(carrier);
        let mut buf = BytesMut::with_capacity(64 * (changes.len() + 2));
        match self.vendor {
            Vendor::VendorA => {
                for ch in changes {
                    let def = snapshot.catalog.def(ch.param);
                    // MO-path assignment dialect.
                    buf.put_slice(
                        format!(
                            "SET ENodeBFunction=1,EUtranCellFDD={},{}=1 {} {}\n",
                            instance,
                            mo_class(def.function),
                            def.name,
                            def.range.value(ch.value),
                        )
                        .as_bytes(),
                    );
                }
            }
            Vendor::VendorB => {
                buf.put_slice(format!("<cmData><managedElement id=\"{instance}\">\n").as_bytes());
                for ch in changes {
                    let def = snapshot.catalog.def(ch.param);
                    buf.put_slice(
                        format!(
                            "  <managedObject class=\"{}\"><p name=\"{}\">{}</p></managedObject>\n",
                            mo_class(def.function),
                            def.name,
                            def.range.value(ch.value),
                        )
                        .as_bytes(),
                    );
                }
                buf.put_slice(b"</managedElement></cmData>\n");
            }
            Vendor::VendorC => {
                for ch in changes {
                    let def = snapshot.catalog.def(ch.param);
                    buf.put_slice(
                        format!(
                            "set cell {} {} {} {}\n",
                            instance,
                            mo_class(def.function).to_lowercase(),
                            def.name,
                            def.range.value(ch.value),
                        )
                        .as_bytes(),
                    );
                }
            }
        }
        ConfigFile {
            carrier,
            vendor: self.vendor,
            n_changes: changes.len(),
            changes: changes.to_vec(),
            payload: buf.freeze(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    fn snapshot() -> NetworkSnapshot {
        generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot
    }

    #[test]
    fn instance_db_covers_every_carrier() {
        let snap = snapshot();
        let db = InstanceDb::build(&snap);
        for c in &snap.carriers {
            let id = db.instance(c.id);
            assert!(id.starts_with("ENB"), "{id}");
            assert!(id.contains(&format!("F{}", c.face)));
        }
    }

    #[test]
    #[should_panic(expected = "missing from the instance database")]
    fn unknown_carrier_panics() {
        InstanceDb::default().instance(CarrierId(0));
    }

    #[test]
    fn vendor_dialects_differ_but_carry_the_same_changes() {
        let snap = snapshot();
        let db = InstanceDb::build(&snap);
        let p = snap.catalog.by_name("pMax").unwrap();
        let changes = [ConfigChange {
            param: p,
            value: 10,
        }];
        let c = CarrierId(0);
        let a = VendorTemplate {
            vendor: Vendor::VendorA,
        }
        .render(&snap, &db, c, &changes);
        let b = VendorTemplate {
            vendor: Vendor::VendorB,
        }
        .render(&snap, &db, c, &changes);
        let cc = VendorTemplate {
            vendor: Vendor::VendorC,
        }
        .render(&snap, &db, c, &changes);
        for f in [&a, &b, &cc] {
            assert_eq!(f.n_changes, 1);
            assert!(f.as_text().contains("pMax"), "{}", f.as_text());
            assert!(f.as_text().contains("6"), "pMax grid value 10 → 6.0 dBm");
        }
        assert!(a.as_text().starts_with("SET ENodeBFunction"));
        assert!(b.as_text().starts_with("<cmData>"));
        assert!(cc.as_text().starts_with("set cell"));
        assert_ne!(a.payload, b.payload);
    }

    #[test]
    fn handover_params_land_under_report_config() {
        let snap = snapshot();
        let db = InstanceDb::build(&snap);
        let p = snap.catalog.by_name("hysA3Offset").unwrap();
        let f = VendorTemplate {
            vendor: Vendor::VendorA,
        }
        .render(
            &snap,
            &db,
            CarrierId(1),
            &[ConfigChange { param: p, value: 4 }],
        );
        assert!(f.as_text().contains("ReportConfig"));
    }

    #[test]
    fn empty_change_sets_render_empty_bodies() {
        let snap = snapshot();
        let db = InstanceDb::build(&snap);
        let f = VendorTemplate {
            vendor: Vendor::VendorA,
        }
        .render(&snap, &db, CarrierId(0), &[]);
        assert_eq!(f.n_changes, 0);
        assert!(f.payload.is_empty());
    }
}
