//! Post-launch KPI verdicts — the §4.3.3/§6 feedback hook.
//!
//! After SmartLaunch pushes a launch's changes, the engineers "carefully
//! monitor ... the service performance impact of the change" and roll
//! back on degradation. This module is that monitoring step as a trait:
//! [`SmartLaunch`](crate::smartlaunch::SmartLaunch) consults its
//! [`PostCheck`] once the push lands and, on a
//! [`PostCheckVerdict::Degraded`] verdict, replays the launch journal to
//! restore the vendor configuration and files the offending changes with
//! the [`Quarantine`](crate::quarantine::Quarantine) ledger.
//!
//! Two implementations exist:
//!
//! - [`InjectedPostCheck`] (the default, `<dyn PostCheck>::none()`) has
//!   no KPI opinion of its own — it replays the plan's injected
//!   `post_check_failed` flag, preserving the paper-faithful Table 5
//!   accounting bit for bit.
//! - `KpiPostCheck` (in `auric-kpi`, which depends on this crate) runs
//!   the deterministic traffic/handover simulator before and after the
//!   change set and compares neighborhood mean health against a
//!   degradation threshold — the production §6 loop.

use crate::mo::ConfigChange;
use crate::smartlaunch::LaunchPlan;
use auric_model::NetworkSnapshot;

/// Everything a post-check may inspect about one pushed launch.
pub struct PostCheckContext<'c> {
    /// The operating network the launch happened in.
    pub snapshot: &'c NetworkSnapshot,
    /// The launch plan (carrier id plus injected flags).
    pub plan: &'c LaunchPlan,
    /// The changes that actually landed on the carrier.
    pub changes: &'c [ConfigChange],
    /// The vendor initial value of each entry in `changes`, same order —
    /// the configuration a rollback would restore.
    pub vendor_initial: &'c [ConfigChange],
}

/// The monitoring verdict for one launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PostCheckVerdict {
    /// No unexpected performance impact; the changes stay.
    Pass,
    /// Post-launch KPIs degraded past the tolerance: roll back (§4.3.3).
    Degraded {
        /// Neighborhood mean health before the change set.
        pre_health: f64,
        /// Neighborhood mean health after it.
        post_health: f64,
    },
}

impl PostCheckVerdict {
    /// True for [`PostCheckVerdict::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, Self::Degraded { .. })
    }

    /// Health lost by the change set, `≥ 0` (zero for a pass).
    pub fn health_drop(&self) -> f64 {
        match self {
            Self::Pass => 0.0,
            Self::Degraded {
                pre_health,
                post_health,
            } => (pre_health - post_health).max(0.0),
        }
    }
}

/// Post-launch monitoring: judge a launch after its changes landed.
///
/// Implementations may carry state (e.g. a working snapshot the KPI
/// simulator mutates), hence `&mut self`. They must stay deterministic —
/// campaign reports and obs output are byte-reproducible across runs.
pub trait PostCheck {
    /// Judges one pushed launch.
    fn evaluate(&mut self, ctx: &PostCheckContext<'_>) -> PostCheckVerdict;
}

/// The paper-faithful default: no KPI measurement, the verdict replays
/// the plan's injected §4.3.3 `post_check_failed` flag. With this check
/// (and a disabled quarantine) the pipeline's behavior — and Table 5 —
/// is exactly what it was before the feedback loop existed.
#[derive(Debug, Clone, Copy, Default)]
pub struct InjectedPostCheck;

impl PostCheck for InjectedPostCheck {
    fn evaluate(&mut self, ctx: &PostCheckContext<'_>) -> PostCheckVerdict {
        if ctx.plan.post_check_failed {
            // An injected failure carries no measurement; report the
            // maximal drop so the obs histogram separates injected
            // verdicts (1000‰) from measured ones.
            PostCheckVerdict::Degraded {
                pre_health: 1.0,
                post_health: 0.0,
            }
        } else {
            PostCheckVerdict::Pass
        }
    }
}

impl dyn PostCheck {
    /// The default post-check — injected flags only, no KPI loop.
    pub fn none() -> Box<dyn PostCheck> {
        Box::new(InjectedPostCheck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_model::CarrierId;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    #[test]
    fn injected_check_replays_the_plan_flag() {
        let snap = generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot;
        let mut check = InjectedPostCheck;
        for failed in [false, true] {
            let plan = LaunchPlan {
                carrier: CarrierId(0),
                off_band_unlock: false,
                post_check_failed: failed,
            };
            let ctx = PostCheckContext {
                snapshot: &snap,
                plan: &plan,
                changes: &[],
                vendor_initial: &[],
            };
            let verdict = check.evaluate(&ctx);
            assert_eq!(verdict.is_degraded(), failed);
            assert_eq!(verdict.health_drop(), if failed { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn none_is_the_injected_check() {
        let snap = generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot;
        let mut check = <dyn PostCheck>::none();
        let plan = LaunchPlan {
            carrier: CarrierId(1),
            off_band_unlock: false,
            post_check_failed: true,
        };
        let ctx = PostCheckContext {
            snapshot: &snap,
            plan: &plan,
            changes: &[],
            vendor_initial: &[],
        };
        assert!(check.evaluate(&ctx).is_degraded());
    }
}
