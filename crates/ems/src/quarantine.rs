//! The quarantine ledger: repeat-offender suppression for the §6 loop.
//!
//! When a launch's post-check degrades, rolling back fixes *that*
//! carrier — but the model that produced the recommendation is still
//! standing, and the next campaign round will recommend the same bad
//! value again (it was learned from the data, not drawn at random). The
//! ledger closes that half of the loop: every rolled-back change files an
//! offense against its `(parameter, recommended value)` pair, and once a
//! pair accumulates enough strikes it is quarantined — SmartLaunch
//! suppresses it from future recommendations instead of re-pushing and
//! re-rolling-back.
//!
//! Quarantine is not a life sentence. Each entry records the campaign
//! round it was quarantined in and is released after
//! [`QuarantinePolicy::expiry_rounds`] further rounds (the appeal): a
//! value banned by one noisy round gets retried later, and re-offends
//! from a clean slate. The default policy is
//! [`QuarantinePolicy::disabled`], which never records or suppresses —
//! the paper-faithful pipeline and Table 5 are untouched.

use auric_core::Basis;
use auric_model::{ParamId, ValueIdx};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Strike and expiry knobs for the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinePolicy {
    /// Master switch; disabled ledgers record and suppress nothing.
    pub enabled: bool,
    /// Offenses (rolled-back launches carrying the pair) before the pair
    /// is quarantined.
    pub strikes: u32,
    /// Campaign rounds a quarantined pair sits out before release.
    pub expiry_rounds: u64,
}

impl QuarantinePolicy {
    /// No recording, no suppression — the default.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            strikes: u32::MAX,
            expiry_rounds: 0,
        }
    }

    /// Two strikes, three-round quarantine: tight enough to stop a bad
    /// rule within one campaign round, loose enough that a single noisy
    /// verdict never suppresses anything.
    pub fn standard() -> Self {
        Self {
            enabled: true,
            strikes: 2,
            expiry_rounds: 3,
        }
    }
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// One `(parameter, value)` pair's standing in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    pub param: ParamId,
    pub value: ValueIdx,
    /// Basis of the most recent offending recommendation — the §5
    /// interpretability story extends to suppression: engineers see
    /// *why* the bad value kept being recommended.
    pub basis: Basis,
    /// Offenses recorded so far.
    pub strikes: u32,
    /// Round the pair crossed the strike threshold; `None` while it is
    /// still accumulating strikes below the threshold.
    pub quarantined_at: Option<u64>,
}

/// The ledger itself. Owned by a
/// [`SmartLaunch`](crate::smartlaunch::SmartLaunch) pipeline;
/// `begin_round` is called once per campaign.
#[derive(Debug, Clone)]
pub struct Quarantine {
    policy: QuarantinePolicy,
    /// Campaign-round clock; advanced by [`Self::begin_round`].
    round: u64,
    entries: HashMap<(ParamId, ValueIdx), QuarantineEntry>,
}

impl Quarantine {
    /// A ledger under an explicit policy.
    pub fn new(policy: QuarantinePolicy) -> Self {
        Self {
            policy,
            round: 0,
            entries: HashMap::new(),
        }
    }

    /// The inert default ledger.
    pub fn disabled() -> Self {
        Self::new(QuarantinePolicy::disabled())
    }

    pub fn policy(&self) -> QuarantinePolicy {
        self.policy
    }

    /// Current campaign round (0 before the first `begin_round`).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Advances the round clock and releases entries whose quarantine has
    /// expired — the appeal. A pair quarantined in round `r` is
    /// suppressed through round `r + expiry_rounds` and released (strikes
    /// and all) at the start of the round after. Returns how many entries
    /// were released.
    pub fn begin_round(&mut self) -> usize {
        self.round += 1;
        let round = self.round;
        let expiry = self.policy.expiry_rounds;
        let before = self.entries.len();
        self.entries.retain(|_, e| match e.quarantined_at {
            Some(at) => round <= at + expiry,
            None => true,
        });
        before - self.entries.len()
    }

    /// Files one offense against `(param, value)` (a rolled-back launch
    /// carried this recommended change). Returns `true` iff this offense
    /// crossed the strike threshold and newly quarantined the pair.
    /// A disabled ledger records nothing.
    pub fn record_offense(&mut self, param: ParamId, value: ValueIdx, basis: Basis) -> bool {
        if !self.policy.enabled {
            return false;
        }
        let round = self.round;
        let entry = self
            .entries
            .entry((param, value))
            .or_insert(QuarantineEntry {
                param,
                value,
                basis,
                strikes: 0,
                quarantined_at: None,
            });
        entry.strikes += 1;
        entry.basis = basis;
        if entry.quarantined_at.is_none() && entry.strikes >= self.policy.strikes {
            entry.quarantined_at = Some(round);
            true
        } else {
            false
        }
    }

    /// Whether `(param, value)` is currently suppressed.
    pub fn is_quarantined(&self, param: ParamId, value: ValueIdx) -> bool {
        self.policy.enabled
            && self
                .entries
                .get(&(param, value))
                .is_some_and(|e| e.quarantined_at.is_some())
    }

    /// Number of pairs with at least one strike on file.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, sorted by `(param, value)` for deterministic
    /// reporting (the backing map iterates in arbitrary order).
    pub fn entries(&self) -> Vec<QuarantineEntry> {
        let mut v: Vec<QuarantineEntry> = self.entries.values().copied().collect();
        v.sort_by_key(|e| (e.param, e.value));
        v
    }
}

impl Default for Quarantine {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: ParamId = ParamId(3);

    #[test]
    fn disabled_ledger_is_inert() {
        let mut q = Quarantine::disabled();
        q.begin_round();
        assert!(!q.record_offense(P, 1, Basis::LocalVote));
        assert!(!q.record_offense(P, 1, Basis::LocalVote));
        assert!(!q.is_quarantined(P, 1));
        assert!(q.is_empty());
    }

    #[test]
    fn strikes_accumulate_to_quarantine() {
        let mut q = Quarantine::new(QuarantinePolicy::standard());
        q.begin_round();
        assert!(!q.record_offense(P, 4, Basis::LocalVote));
        assert!(!q.is_quarantined(P, 4), "one strike is not enough");
        assert!(q.record_offense(P, 4, Basis::LocalVote));
        assert!(q.is_quarantined(P, 4));
        // Further offenses don't re-report "newly quarantined".
        assert!(!q.record_offense(P, 4, Basis::LocalVote));
        // Other values of the same parameter are untouched.
        assert!(!q.is_quarantined(P, 5));
        assert_eq!(q.entries().len(), 1);
        assert_eq!(q.entries()[0].strikes, 3);
    }

    #[test]
    fn quarantine_expires_after_the_policy_rounds() {
        let mut q = Quarantine::new(QuarantinePolicy {
            enabled: true,
            strikes: 1,
            expiry_rounds: 2,
        });
        q.begin_round(); // round 1
        assert!(q.record_offense(P, 7, Basis::GlobalVote));
        assert!(q.is_quarantined(P, 7));
        assert_eq!(q.begin_round(), 0); // round 2: still suppressed
        assert!(q.is_quarantined(P, 7));
        assert_eq!(q.begin_round(), 0); // round 3: last suppressed round
        assert!(q.is_quarantined(P, 7));
        assert_eq!(q.begin_round(), 1, "round 4 releases the entry");
        assert!(!q.is_quarantined(P, 7));
        // The appeal is a clean slate: the released pair is gone from the
        // ledger and a re-offense counts as *newly* crossing the (1-strike)
        // threshold, not as a continuation of the old record.
        assert!(q.is_empty());
        assert!(q.record_offense(P, 7, Basis::GlobalVote));
        assert_eq!(q.entries()[0].strikes, 1);
    }

    /// Boundary precision of the expiry window: with `expiry_rounds = 1`
    /// a pair quarantined in round `r` is suppressed in `r` and `r + 1`
    /// exactly, and the release happens *at the start* of round `r + 2`
    /// (`begin_round` reports it), not a round early or late.
    #[test]
    fn strike_expiry_is_exact_at_the_threshold_round() {
        let mut q = Quarantine::new(QuarantinePolicy {
            enabled: true,
            strikes: 2,
            expiry_rounds: 1,
        });
        q.begin_round(); // round 1
        assert!(!q.record_offense(P, 6, Basis::LocalVote));
        assert!(q.record_offense(P, 6, Basis::LocalVote), "second strike");
        assert!(q.is_quarantined(P, 6), "suppressed in the offense round");
        assert_eq!(q.begin_round(), 0, "round 2: the one expiry round");
        assert!(q.is_quarantined(P, 6));
        assert_eq!(q.begin_round(), 1, "round 3: released exactly here");
        assert!(!q.is_quarantined(P, 6));
        assert!(q.is_empty(), "release clears the record entirely");
    }

    /// A released pair that re-offends starts from a clean slate: it
    /// needs the full strike count again, and its new quarantine window
    /// is anchored at the re-offense round, not the original one.
    #[test]
    fn appeal_then_reoffend_requires_full_strikes_and_reanchors() {
        let mut q = Quarantine::new(QuarantinePolicy {
            enabled: true,
            strikes: 2,
            expiry_rounds: 1,
        });
        q.begin_round(); // round 1
        q.record_offense(P, 6, Basis::LocalVote);
        q.record_offense(P, 6, Basis::LocalVote);
        q.begin_round(); // round 2: suppressed
        assert_eq!(q.begin_round(), 1); // round 3: appeal granted
        assert!(!q.is_quarantined(P, 6));
        // Re-offend once: one strike is below the threshold again.
        assert!(!q.record_offense(P, 6, Basis::GlobalVote));
        assert!(!q.is_quarantined(P, 6), "one post-appeal strike is free");
        // The second post-appeal strike re-quarantines, anchored now.
        assert!(q.record_offense(P, 6, Basis::GlobalVote));
        assert_eq!(q.entries()[0].quarantined_at, Some(3));
        assert_eq!(q.entries()[0].strikes, 2, "old strikes did not carry");
        assert_eq!(q.begin_round(), 0); // round 4: new window holds
        assert!(q.is_quarantined(P, 6));
        assert_eq!(q.begin_round(), 1); // round 5: new window expires
        assert!(!q.is_quarantined(P, 6));
    }

    /// The disabled ledger stays inert under the exact offense/round
    /// sequence that drives the two boundary tests above: no strikes, no
    /// suppression, no releases.
    #[test]
    fn disabled_ledger_is_inert_under_the_boundary_sequence() {
        let mut q = Quarantine::disabled();
        q.begin_round();
        assert!(!q.record_offense(P, 6, Basis::LocalVote));
        assert!(!q.record_offense(P, 6, Basis::LocalVote));
        assert!(!q.is_quarantined(P, 6));
        assert_eq!(q.begin_round(), 0);
        assert!(!q.is_quarantined(P, 6));
        assert_eq!(q.begin_round(), 0, "nothing to release, ever");
        assert!(!q.record_offense(P, 6, Basis::GlobalVote));
        assert!(!q.record_offense(P, 6, Basis::GlobalVote));
        assert!(!q.is_quarantined(P, 6));
        assert!(q.is_empty());
        assert_eq!(q.round(), 3, "the round clock still advances");
    }

    #[test]
    fn entries_are_sorted_for_reporting() {
        let mut q = Quarantine::new(QuarantinePolicy {
            enabled: true,
            strikes: 1,
            expiry_rounds: 9,
        });
        q.begin_round();
        q.record_offense(ParamId(9), 2, Basis::Default);
        q.record_offense(ParamId(1), 8, Basis::LocalVote);
        q.record_offense(ParamId(1), 3, Basis::LocalVote);
        let e = q.entries();
        assert_eq!(
            e.iter().map(|x| (x.param, x.value)).collect::<Vec<_>>(),
            vec![(ParamId(1), 3), (ParamId(1), 8), (ParamId(9), 2)]
        );
    }
}
