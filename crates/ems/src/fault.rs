//! Deterministic fault injection for the EMS, and the pipeline
//! invariants that must survive it.
//!
//! §5's production campaign lost 29 of 1251 launches to exactly two
//! faults (off-band unlocks, execution timeouts). Real element managers
//! misbehave in more ways than the paper's accounting names, so this
//! module wraps any [`EmsBackend`] in a [`FaultInjector`] that — driven
//! by an independent `ChaCha8Rng` stream per plan — injects:
//!
//! - **transient push failures** (the request is dropped, nothing lands),
//! - **partial batch application** (only a prefix of the changes lands),
//! - **dropped inventory entries** (registration silently fails, later
//!   pushes see `UnknownCarrier`),
//! - **spurious mid-flow unlocks** (the carrier goes live between the
//!   pre-check and the push),
//! - **latency-induced timeouts** (the push exceeds its deadline even
//!   though the batch fits the execution limit).
//!
//! Every rate is independently configurable; a plan with all rates at
//! zero is behaviorally identical to the bare backend. The
//! [`InvariantChecker`] then audits a campaign trace against the
//! properties no amount of injected misbehavior may break.

use crate::ems::{CarrierState, EmsAudit, EmsBackend, EmsSettings, PushError, PushOutcome};
use crate::mo::ConfigFile;
use crate::smartlaunch::{CampaignReport, FalloutCause, LaunchOutcome, LaunchRecord};
use auric_model::{CarrierId, ParamId, ValueIdx};
use auric_obs::Recorder;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Independent per-fault probabilities, each applied per opportunity
/// (per registration for `drop_inventory`, per push for the rest).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultRates {
    /// The push request is dropped before execution; nothing lands.
    pub transient_push: f64,
    /// Only a random proper prefix of the batch lands (batches of ≥ 2).
    pub partial_apply: f64,
    /// The registration is silently lost; the carrier never enters the
    /// inventory and later pushes see `UnknownCarrier`.
    pub drop_inventory: f64,
    /// The carrier is unlocked out from under the pipeline just before
    /// the push reaches the EMS.
    pub spurious_unlock: f64,
    /// The push exceeds its deadline (latency, not batch size).
    pub latency_timeout: f64,
}

impl FaultRates {
    /// All rates zero — the injector becomes a transparent wrapper.
    pub fn none() -> Self {
        Self::default()
    }

    /// Every fault at the same rate `r`.
    pub fn uniform(r: f64) -> Self {
        Self {
            transient_push: r,
            partial_apply: r,
            drop_inventory: r,
            spurious_unlock: r,
            latency_timeout: r,
        }
    }
}

/// A seeded chaos schedule: the rates plus the RNG seed that makes the
/// exact fault sequence reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub seed: u64,
    pub rates: FaultRates,
}

impl FaultPlan {
    /// A transparent plan (all rates zero).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            rates: FaultRates::none(),
        }
    }

    /// Every fault at rate `r`, on the given seed.
    pub fn uniform(seed: u64, r: f64) -> Self {
        Self {
            seed,
            rates: FaultRates::uniform(r),
        }
    }
}

/// How often each fault actually fired (for chaos reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultCounts {
    pub transient_failures: usize,
    pub partial_applications: usize,
    pub dropped_registrations: usize,
    pub spurious_unlocks: usize,
    pub latency_timeouts: usize,
}

impl FaultCounts {
    /// Total injected faults.
    pub fn total(&self) -> usize {
        self.transient_failures
            + self.partial_applications
            + self.dropped_registrations
            + self.spurious_unlocks
            + self.latency_timeouts
    }
}

/// Wraps an [`EmsBackend`] and injects the plan's faults. Injection is
/// deterministic: the same plan over the same call sequence fires the
/// same faults.
#[derive(Debug, Clone)]
pub struct FaultInjector<B = crate::ems::Ems> {
    inner: B,
    plan: FaultPlan,
    rng: ChaCha8Rng,
    /// Carriers whose registration the injector swallowed. Tracked here
    /// (not in the inner inventory) so `unlock` on a dropped carrier
    /// cannot resurrect it.
    dropped: HashSet<CarrierId>,
    /// Rejections the injector produced itself (they never reached the
    /// inner EMS), merged into [`EmsBackend::audit`].
    overlay: EmsAudit,
    fired: FaultCounts,
    /// Per-variant injection counters (`ems.fault.*`). Disabled by
    /// default.
    obs: Recorder,
}

impl<B: EmsBackend> FaultInjector<B> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            rng: ChaCha8Rng::seed_from_u64(plan.seed),
            dropped: HashSet::new(),
            overlay: EmsAudit::default(),
            fired: FaultCounts::default(),
            obs: Recorder::disabled(),
        }
    }

    /// Attaches a metrics recorder (builder style).
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// How often each fault fired so far.
    pub fn fired(&self) -> FaultCounts {
        self.fired
    }

    fn reject(&mut self, e: PushError) -> Result<PushOutcome, PushError> {
        self.overlay.record_rejection(&e);
        Err(e)
    }
}

impl<B: EmsBackend> EmsBackend for FaultInjector<B> {
    fn settings(&self) -> EmsSettings {
        self.inner.settings()
    }

    fn register_locked(&mut self, c: CarrierId) {
        if self.rng.random_bool(self.plan.rates.drop_inventory) {
            self.fired.dropped_registrations += 1;
            self.obs.inc("ems.fault.drop_inventory");
            self.dropped.insert(c);
        } else {
            self.dropped.remove(&c);
            self.inner.register_locked(c);
        }
    }

    fn lock(&mut self, c: CarrierId) {
        if !self.dropped.contains(&c) {
            self.inner.lock(c);
        }
    }

    fn unlock(&mut self, c: CarrierId) {
        if !self.dropped.contains(&c) {
            self.inner.unlock(c);
        }
    }

    fn state(&self, c: CarrierId) -> Option<CarrierState> {
        if self.dropped.contains(&c) {
            None
        } else {
            self.inner.state(c)
        }
    }

    fn push(&mut self, file: &ConfigFile) -> Result<PushOutcome, PushError> {
        if self.dropped.contains(&file.carrier) {
            return self.reject(PushError::UnknownCarrier);
        }
        // Draw every fault up front so the RNG stream depends only on
        // the call sequence, not on which fault fires first.
        let r = self.plan.rates;
        let spurious = self.rng.random_bool(r.spurious_unlock);
        let latency = self.rng.random_bool(r.latency_timeout);
        let transient = self.rng.random_bool(r.transient_push);
        let partial = self.rng.random_bool(r.partial_apply);
        if spurious {
            self.fired.spurious_unlocks += 1;
            self.obs.inc("ems.fault.spurious_unlock");
            self.inner.unlock(file.carrier);
            // Fall through: the inner EMS refuses the push itself, which
            // is exactly the real-world failure signature.
        }
        if latency {
            self.fired.latency_timeouts += 1;
            self.obs.inc("ems.fault.latency_timeout");
            return self.reject(PushError::ExecutionTimeout {
                attempted: file.n_changes,
                limit: self.inner.settings().max_executions_per_push,
            });
        }
        if transient {
            self.fired.transient_failures += 1;
            self.obs.inc("ems.fault.transient_push");
            return self.reject(PushError::TransientFailure);
        }
        if partial && file.n_changes >= 2 && self.inner.state(file.carrier).is_some() {
            let applied = self.rng.random_range(1..file.n_changes);
            // The prefix genuinely lands on the device (through the inner
            // EMS, so lock semantics still hold); the caller sees a
            // partial-application error carrying how much landed.
            return match self.inner.push(&file.prefix(applied)) {
                Ok(_) => {
                    self.fired.partial_applications += 1;
                    self.obs.inc("ems.fault.partial_apply");
                    self.reject(PushError::PartialApplication {
                        applied,
                        attempted: file.n_changes,
                    })
                }
                // A lifecycle rejection wins: nothing landed.
                Err(e) => Err(e),
            };
        }
        self.inner.push(file)
    }

    fn applied_value(&self, c: CarrierId, p: ParamId) -> Option<ValueIdx> {
        self.inner.applied_value(c, p)
    }

    fn audit(&self) -> EmsAudit {
        self.inner.audit().merged(&self.overlay)
    }
}

/// One violated pipeline invariant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum InvariantViolation {
    /// The EMS accepted a push on an `Unlocked` carrier (tripwire).
    UnlockedAccept { count: usize },
    /// A launch reported as implemented left a parameter without its
    /// recommended value on the device.
    MissingChange { carrier: CarrierId, param: ParamId },
    /// A launch reported as rolled back / fallen out left a recommended
    /// value (or part of one — a torn prefix) on the device.
    LeakedChange { carrier: CarrierId, param: ParamId },
    /// A parameter ended at a value that is neither the vendor initial
    /// nor the recommendation.
    ForeignValue { carrier: CarrierId, param: ParamId },
    /// The campaign report does not conserve launch counts.
    CountMismatch {
        field: &'static str,
        expected: usize,
        actual: usize,
    },
}

/// Audits a campaign trace against the invariants that must hold no
/// matter which faults were injected:
///
/// 1. no unlocked carrier ever accepted a push;
/// 2. every launched carrier ends consistent — the vendor configuration
///    (untouched or fully rolled back) or the fully-applied
///    recommendation, never a torn prefix — except launches explicitly
///    flagged [`FalloutCause::StuckRollback`], whose whole point is that
///    the torn state is *reported*;
/// 3. fall-out accounting conserves launch counts.
pub struct InvariantChecker;

impl InvariantChecker {
    /// Checks a finished campaign. Returns every violation found (empty
    /// means all invariants held).
    pub fn check<B: EmsBackend>(
        trace: &[LaunchRecord],
        report: &CampaignReport,
        ems: &B,
    ) -> Vec<InvariantViolation> {
        let mut v = Vec::new();

        // (1) Lock discipline tripwire.
        let audit = ems.audit();
        if audit.unlocked_accepts > 0 {
            v.push(InvariantViolation::UnlockedAccept {
                count: audit.unlocked_accepts,
            });
        }

        // (2) Per-carrier end-state consistency.
        for rec in trace {
            let implemented = matches!(rec.outcome, LaunchOutcome::ChangesImplemented { .. });
            if matches!(
                rec.outcome,
                LaunchOutcome::Fallout {
                    cause: FalloutCause::StuckRollback,
                    ..
                }
            ) {
                continue; // known-torn, and reported as such
            }
            for (ch, init) in rec.changes.iter().zip(&rec.vendor_initial) {
                let applied = ems.applied_value(rec.carrier, ch.param);
                if implemented {
                    if applied != Some(ch.value) {
                        v.push(InvariantViolation::MissingChange {
                            carrier: rec.carrier,
                            param: ch.param,
                        });
                    }
                } else {
                    // Rolled back, fallen out, or never attempted: the
                    // device must show vendor state (explicitly restored
                    // or never written).
                    match applied {
                        None => {}
                        Some(val) if val == init.value => {}
                        Some(val) if val == ch.value => {
                            v.push(InvariantViolation::LeakedChange {
                                carrier: rec.carrier,
                                param: ch.param,
                            });
                        }
                        Some(_) => {
                            v.push(InvariantViolation::ForeignValue {
                                carrier: rec.carrier,
                                param: ch.param,
                            });
                        }
                    }
                }
            }
        }

        // (3) Conservation of launch counts.
        let mut expect = CampaignReport::default();
        for rec in trace {
            expect.launched += 1;
            match &rec.outcome {
                LaunchOutcome::NoChangesNeeded => {}
                LaunchOutcome::ChangesImplemented { .. } => {
                    expect.changes_recommended += 1;
                    expect.changes_implemented += 1;
                }
                LaunchOutcome::RolledBack { .. } => {
                    expect.changes_recommended += 1;
                    expect.changes_implemented += 1;
                    expect.rollbacks += 1;
                }
                LaunchOutcome::Fallout { cause, .. } => {
                    expect.changes_recommended += 1;
                    match cause {
                        FalloutCause::OffBandUnlock => expect.fallouts_off_band += 1,
                        FalloutCause::EmsTimeout => expect.fallouts_timeout += 1,
                        FalloutCause::PushRejected => expect.fallouts_push_rejected += 1,
                        FalloutCause::UnknownCarrier => expect.fallouts_unknown_carrier += 1,
                        FalloutCause::StuckRollback => expect.fallouts_stuck_rollback += 1,
                    }
                }
            }
        }
        let checks: [(&'static str, usize, usize); 9] = [
            ("launched", expect.launched, report.launched),
            (
                "changes_recommended",
                expect.changes_recommended,
                report.changes_recommended,
            ),
            (
                "changes_implemented",
                expect.changes_implemented,
                report.changes_implemented,
            ),
            ("rollbacks", expect.rollbacks, report.rollbacks),
            (
                "fallouts_off_band",
                expect.fallouts_off_band,
                report.fallouts_off_band,
            ),
            (
                "fallouts_timeout",
                expect.fallouts_timeout,
                report.fallouts_timeout,
            ),
            (
                "fallouts_push_rejected",
                expect.fallouts_push_rejected,
                report.fallouts_push_rejected,
            ),
            (
                "fallouts_unknown_carrier",
                expect.fallouts_unknown_carrier,
                report.fallouts_unknown_carrier,
            ),
            (
                "fallouts_stuck_rollback",
                expect.fallouts_stuck_rollback,
                report.fallouts_stuck_rollback,
            ),
        ];
        for (field, expected, actual) in checks {
            if expected != actual {
                v.push(InvariantViolation::CountMismatch {
                    field,
                    expected,
                    actual,
                });
            }
        }
        // The recommendation ledger must balance: every recommended
        // change is implemented or accounted as exactly one fall-out.
        let balanced = report.changes_implemented + report.fallouts();
        if balanced != report.changes_recommended {
            v.push(InvariantViolation::CountMismatch {
                field: "recommended = implemented + fallouts",
                expected: report.changes_recommended,
                actual: balanced,
            });
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ems::{Ems, EmsSettings};
    use crate::mo::{ConfigChange, InstanceDb, VendorTemplate};
    use auric_model::{NetworkSnapshot, Vendor};
    use auric_netgen::{generate, NetScale, TuningKnobs};
    use std::sync::OnceLock;

    fn shared_snapshot() -> &'static NetworkSnapshot {
        static SNAP: OnceLock<NetworkSnapshot> = OnceLock::new();
        SNAP.get_or_init(|| generate(&NetScale::tiny(), &TuningKnobs::none()).snapshot)
    }

    fn render(carrier: CarrierId, n_changes: usize) -> ConfigFile {
        let snap = shared_snapshot();
        let db = InstanceDb::build(snap);
        let changes: Vec<ConfigChange> = snap
            .catalog
            .singular_ids()
            .take(n_changes)
            .map(|p| ConfigChange { param: p, value: 1 })
            .collect();
        VendorTemplate {
            vendor: Vendor::VendorA,
        }
        .render(snap, &db, carrier, &changes)
    }

    #[test]
    fn zero_rate_injector_is_transparent() {
        let f = render(CarrierId(0), 3);
        let mut bare = Ems::new(EmsSettings::default());
        let mut wrapped = FaultInjector::new(Ems::new(EmsSettings::default()), FaultPlan::none(9));
        bare.register_locked(CarrierId(0));
        wrapped.register_locked(CarrierId(0));
        assert_eq!(bare.push(&f).is_ok(), wrapped.push(&f).is_ok());
        assert_eq!(bare.audit(), wrapped.audit());
        assert_eq!(wrapped.fired().total(), 0);
    }

    #[test]
    fn transient_faults_fire_at_rate_one() {
        let f = render(CarrierId(0), 2);
        let plan = FaultPlan {
            seed: 3,
            rates: FaultRates {
                transient_push: 1.0,
                ..FaultRates::none()
            },
        };
        let mut ems = FaultInjector::new(Ems::new(EmsSettings::default()), plan);
        ems.register_locked(CarrierId(0));
        assert_eq!(ems.push(&f), Err(PushError::TransientFailure));
        assert_eq!(ems.audit().rejected_transient, 1);
        assert_eq!(ems.inner().accepted_pushes(), 0);
    }

    #[test]
    fn partial_application_lands_a_prefix() {
        let f = render(CarrierId(0), 6);
        let plan = FaultPlan {
            seed: 5,
            rates: FaultRates {
                partial_apply: 1.0,
                ..FaultRates::none()
            },
        };
        let mut ems = FaultInjector::new(Ems::new(EmsSettings::default()), plan);
        ems.register_locked(CarrierId(0));
        let Err(PushError::PartialApplication { applied, attempted }) = ems.push(&f) else {
            panic!("expected a partial application");
        };
        assert_eq!(attempted, 6);
        assert!((1..6).contains(&applied));
        // Exactly the prefix landed.
        for (i, ch) in f.changes.iter().enumerate() {
            let got = ems.applied_value(CarrierId(0), ch.param);
            if i < applied {
                assert_eq!(got, Some(ch.value));
            } else {
                assert_eq!(got, None);
            }
        }
    }

    #[test]
    fn dropped_registrations_surface_as_unknown_carrier() {
        let f = render(CarrierId(0), 2);
        let plan = FaultPlan {
            seed: 1,
            rates: FaultRates {
                drop_inventory: 1.0,
                ..FaultRates::none()
            },
        };
        let mut ems = FaultInjector::new(Ems::new(EmsSettings::default()), plan);
        ems.register_locked(CarrierId(0));
        assert_eq!(ems.state(CarrierId(0)), None);
        assert_eq!(ems.push(&f), Err(PushError::UnknownCarrier));
        // Unlock must not resurrect a dropped carrier.
        ems.unlock(CarrierId(0));
        assert_eq!(ems.state(CarrierId(0)), None);
    }

    #[test]
    fn spurious_unlocks_hit_the_inner_lock_check() {
        let f = render(CarrierId(0), 2);
        let plan = FaultPlan {
            seed: 2,
            rates: FaultRates {
                spurious_unlock: 1.0,
                ..FaultRates::none()
            },
        };
        let mut ems = FaultInjector::new(Ems::new(EmsSettings::default()), plan);
        ems.register_locked(CarrierId(0));
        assert_eq!(ems.push(&f), Err(PushError::CarrierUnlocked));
        assert_eq!(ems.state(CarrierId(0)), Some(CarrierState::Unlocked));
    }

    #[test]
    fn latency_timeouts_fit_the_execution_limit() {
        let f = render(CarrierId(0), 2);
        let plan = FaultPlan {
            seed: 4,
            rates: FaultRates {
                latency_timeout: 1.0,
                ..FaultRates::none()
            },
        };
        let mut ems = FaultInjector::new(Ems::new(EmsSettings::default()), plan);
        ems.register_locked(CarrierId(0));
        let err = ems.push(&f).unwrap_err();
        assert!(matches!(
            err,
            PushError::ExecutionTimeout { attempted: 2, .. }
        ));
        assert!(err.is_retryable());
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut ems = FaultInjector::new(
                Ems::new(EmsSettings::default()),
                FaultPlan::uniform(seed, 0.4),
            );
            let mut log = Vec::new();
            for i in 0..20u32 {
                let c = CarrierId(i % 4);
                ems.register_locked(c);
                log.push(ems.push(&render(c, 3)));
            }
            (log, ems.fired())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0, "different seeds, different chaos");
    }
}
