//! Deployment substrate (§5): everything between a recommendation and a
//! configured base station.
//!
//! The paper's production integration ("SmartLaunch") wraps Auric in the
//! machinery real carrier changes go through:
//!
//! - [`mo`] — vendor configuration schemas: hierarchical *managed objects*
//!   ("similar to interfaces in routers"), vendor-specific templates, and
//!   config-file generation with instance IDs filled from a database;
//! - [`ems`] — the element management system and carrier lifecycle:
//!   lock/unlock semantics (changing lock-required parameters on a live
//!   carrier would disrupt traffic), batch execution limits and the
//!   timeouts they cause, per-variant push audit counters, and the
//!   [`EmsBackend`] trait the pipeline talks through;
//! - [`fault`] — deterministic, seeded fault injection over any backend
//!   (transient failures, partial batch application, dropped inventory,
//!   spurious unlocks, latency timeouts) plus the [`InvariantChecker`]
//!   that audits campaign traces for lifecycle/consistency/accounting
//!   violations;
//! - [`retry`] — bounded retries with exponential backoff on a simulated
//!   clock, batch splitting under the execution limit, and the
//!   transactional per-launch [`LaunchJournal`];
//! - [`postcheck`] — the §4.3.3/§6 post-launch monitoring hook: a
//!   [`PostCheck`] trait SmartLaunch consults after every successful
//!   push. The default replays the plan's injected flag (paper-faithful
//!   Table 5); `auric_kpi::KpiPostCheck` measures real simulated KPIs;
//! - [`quarantine`] — the repeat-offender ledger: rolled-back changes
//!   file offenses against their `(parameter, value)` pair, quarantined
//!   pairs are suppressed from later campaign rounds, and entries expire
//!   after a configurable number of rounds (the appeal);
//! - [`smartlaunch`] — the launch pipeline: pre-checks → Auric
//!   recommendation → diff against the vendor's initial configuration →
//!   push mismatches while still locked → unlock → post-check monitoring,
//!   with the two §5 fall-out causes injected (premature off-band unlocks,
//!   EMS execution timeouts), journaled rollback, and fall-out accounting
//!   that survives injected faults. Its campaign report reproduces
//!   Table 5.

pub mod ems;
pub mod fault;
pub mod mo;
pub mod postcheck;
pub mod quarantine;
pub mod retry;
pub mod smartlaunch;

pub use ems::{CarrierState, Ems, EmsAudit, EmsBackend, EmsSettings, PushError, PushOutcome};
pub use fault::{
    FaultCounts, FaultInjector, FaultPlan, FaultRates, InvariantChecker, InvariantViolation,
};
pub use mo::{ConfigChange, ConfigFile, InstanceDb, VendorTemplate};
pub use postcheck::{InjectedPostCheck, PostCheck, PostCheckContext, PostCheckVerdict};
pub use quarantine::{Quarantine, QuarantineEntry, QuarantinePolicy};
pub use retry::{LaunchJournal, RetryPolicy, SimClock};
pub use smartlaunch::{
    sample_campaign, sample_campaign_with_post_checks, CampaignReport, FalloutCause, LaunchOutcome,
    LaunchPlan, LaunchPolicy, LaunchRecord, SmartLaunch, VendorConfigSource,
};
