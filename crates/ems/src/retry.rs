//! Retry, backoff, and batch-splitting policy for EMS pushes, plus the
//! per-launch journal that makes launches transactional.
//!
//! §5 reports that "configuration change implementation for some of the
//! carriers resulted in timeouts because of the very large number of
//! parameters" — a fall-out cause the paper simply counts. This module
//! is the machinery that turns those fall-outs into recoverable
//! behavior: bounded retries with exponential backoff on a **simulated**
//! clock (deterministic — no wall-clock reads), deterministic jitter from
//! the pipeline's seeded RNG, and splitting of oversized change sets into
//! sub-pushes that fit under `max_executions_per_push`.
//!
//! The paper-faithful mode stays the default: [`RetryPolicy::none`] makes
//! exactly one attempt per batch and never splits, so Table 5 accounting
//! is byte-for-byte unchanged.

use crate::mo::ConfigChange;
use auric_model::{ParamId, ValueIdx};
use rand::RngExt;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How the pipeline reacts to retryable push failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per (sub-)batch, including the first. `1` means
    /// no retries — the paper-faithful behavior.
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated milliseconds. Doubles
    /// per subsequent retry.
    pub base_backoff_ms: u64,
    /// Upper bound on a single backoff wait (before jitter).
    pub max_backoff_ms: u64,
    /// Split change sets larger than the EMS execution limit into
    /// sub-pushes of at most that size instead of letting them time out.
    pub split_batches: bool,
}

impl RetryPolicy {
    /// One attempt, no backoff, no splitting — exactly the §5 pipeline.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            split_batches: false,
        }
    }

    /// Bounded retries with backoff but paper-sized batches.
    pub fn retrying() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_ms: 100,
            max_backoff_ms: 2_000,
            split_batches: false,
        }
    }

    /// The full resilience posture: retries, backoff, and batch
    /// splitting.
    pub fn resilient() -> Self {
        Self {
            split_batches: true,
            ..Self::retrying()
        }
    }

    /// Whether any retry can ever happen under this policy.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The simulated wait before retry number `attempt` (1-based):
    /// exponential in the attempt, capped, plus deterministic jitter of
    /// up to a quarter of the capped wait drawn from `rng`.
    pub fn backoff_ms(&self, attempt: u32, rng: &mut ChaCha8Rng) -> u64 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        let doublings = attempt.saturating_sub(1).min(16);
        let exp = self.base_backoff_ms.saturating_mul(1u64 << doublings);
        let capped = exp.min(self.max_backoff_ms.max(self.base_backoff_ms));
        let jitter = rng.random_range(0..=capped / 4);
        capped + jitter
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// A simulated monotonic clock: backoff waits advance it instead of
/// sleeping, keeping campaign runs deterministic and instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    now_ms: u64,
}

impl SimClock {
    /// Elapsed simulated milliseconds since the clock was created.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advances the clock by `ms` simulated milliseconds.
    pub fn advance(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
    }
}

/// The transactional journal of one launch: every chunk of changes the
/// EMS *accepted* (including prefixes from partial applications), in
/// application order. An abort or failed post-check rolls back exactly
/// what the journal recorded — never more, never less.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchJournal {
    entries: Vec<Vec<ConfigChange>>,
}

impl LaunchJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one applied chunk.
    pub fn record(&mut self, applied: Vec<ConfigChange>) {
        if !applied.is_empty() {
            self.entries.push(applied);
        }
    }

    /// Total parameters applied so far.
    pub fn applied(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// Whether anything was applied.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The applied chunks, in application order.
    pub fn entries(&self) -> &[Vec<ConfigChange>] {
        &self.entries
    }

    /// The revert batch: every journaled parameter set back to its value
    /// in `initial` (the vendor configuration), in application order.
    /// Parameters without an initial entry are skipped — nothing is
    /// invented during a rollback.
    pub fn reverts(&self, initial: &[ConfigChange]) -> Vec<ConfigChange> {
        let target: HashMap<ParamId, ValueIdx> =
            initial.iter().map(|c| (c.param, c.value)).collect();
        self.entries
            .iter()
            .flatten()
            .filter_map(|c| {
                target.get(&c.param).map(|&value| ConfigChange {
                    param: c.param,
                    value,
                })
            })
            .collect()
    }
}

/// Splits `changes` into sub-batches the EMS can execute without timing
/// out: chunks of at most `limit` (always at least one chunk).
pub fn split_batches(changes: &[ConfigChange], limit: usize) -> Vec<&[ConfigChange]> {
    if changes.is_empty() {
        return Vec::new();
    }
    changes.chunks(limit.max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ch(p: u16, v: ValueIdx) -> ConfigChange {
        ConfigChange {
            param: ParamId(p),
            value: v,
        }
    }

    #[test]
    fn none_policy_is_single_attempt() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert!(!p.retries_enabled());
        assert!(!p.split_batches);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(p.backoff_ms(1, &mut rng), 0);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 100,
            max_backoff_ms: 400,
            split_batches: false,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let waits: Vec<u64> = (1..=5).map(|a| p.backoff_ms(a, &mut rng)).collect();
        // Exponential up to the cap; jitter adds at most 25%.
        assert!(waits[0] >= 100 && waits[0] <= 125, "{waits:?}");
        assert!(waits[1] >= 200 && waits[1] <= 250, "{waits:?}");
        assert!(waits[2] >= 400 && waits[2] <= 500, "{waits:?}");
        assert!(waits[4] >= 400 && waits[4] <= 500, "capped: {waits:?}");
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::retrying();
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for attempt in 1..6 {
            assert_eq!(p.backoff_ms(attempt, &mut a), p.backoff_ms(attempt, &mut b));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::default();
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now_ms(), 15);
        c.advance(u64::MAX);
        assert_eq!(c.now_ms(), u64::MAX, "saturates instead of wrapping");
    }

    #[test]
    fn journal_reverts_only_what_was_applied() {
        let mut j = LaunchJournal::new();
        j.record(vec![ch(0, 5), ch(1, 6)]);
        j.record(vec![ch(2, 7)]);
        j.record(Vec::new()); // ignored
        assert_eq!(j.applied(), 3);
        assert_eq!(j.entries().len(), 2);
        let initial = [ch(0, 1), ch(1, 2), ch(2, 3), ch(3, 4)];
        let reverts = j.reverts(&initial);
        assert_eq!(reverts, vec![ch(0, 1), ch(1, 2), ch(2, 3)]);
    }

    #[test]
    fn split_batches_covers_everything_in_order() {
        let changes: Vec<ConfigChange> = (0..10).map(|p| ch(p, 1)).collect();
        let chunks = split_batches(&changes, 4);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() <= 4));
        let flat: Vec<ConfigChange> = chunks.into_iter().flatten().copied().collect();
        assert_eq!(flat, changes);
        assert!(split_batches(&[], 4).is_empty());
        // A zero limit is clamped rather than panicking.
        assert_eq!(split_batches(&changes, 0).len(), 10);
    }
}
