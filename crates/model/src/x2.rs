//! The X2 neighbor-relation graph (§2.1, §3.3).
//!
//! Between two eNodeBs, the X2 interface carries handover signaling; Auric
//! uses 1-hop X2 neighbor relations as its notion of *geographic proximity*
//! for the local learner. We model X2 relations at carrier granularity:
//! carriers on the same eNodeB and carriers on radio-adjacent eNodeBs are
//! X2 neighbors.
//!
//! The graph also defines the canonical **directed pair list**: the 26
//! pair-wise parameters take one value per ordered (carrier, neighbor)
//! pair `(j, k)` — handover settings are directional.

use crate::ids::CarrierId;
use serde::{Deserialize, Serialize};

/// Index into the canonical directed pair list of an [`X2Graph`].
pub type PairIdx = u32;

/// An undirected X2 neighbor graph over carriers, with a canonical directed
/// pair enumeration.
///
/// Internally a CSR-style adjacency: `adj` holds each carrier's neighbors
/// sorted ascending, `offsets[j]..offsets[j+1]` is carrier `j`'s slice.
/// The directed pair `(j, adj[e])` has pair index `e`, so pair indices are
/// dense, ordered by source carrier then neighbor id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct X2Graph {
    offsets: Vec<u32>,
    adj: Vec<CarrierId>,
}

impl X2Graph {
    /// Builds the graph from undirected edges over `n_carriers` carriers.
    /// Duplicate edges and self-loops are discarded.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n_carriers: usize, edges: &[(CarrierId, CarrierId)]) -> Self {
        let mut neigh: Vec<Vec<CarrierId>> = vec![Vec::new(); n_carriers];
        for &(a, b) in edges {
            assert!(a.index() < n_carriers, "edge endpoint {a} out of range");
            assert!(b.index() < n_carriers, "edge endpoint {b} out of range");
            if a == b {
                continue;
            }
            neigh[a.index()].push(b);
            neigh[b.index()].push(a);
        }
        let mut offsets = Vec::with_capacity(n_carriers + 1);
        let mut adj = Vec::new();
        offsets.push(0u32);
        for list in &mut neigh {
            list.sort_unstable();
            list.dedup();
            adj.extend_from_slice(list);
            offsets.push(adj.len() as u32);
        }
        Self { offsets, adj }
    }

    /// Number of carriers (graph vertices).
    pub fn n_carriers(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed pairs (twice the undirected edge count).
    pub fn n_pairs(&self) -> usize {
        self.adj.len()
    }

    /// The sorted X2 neighbors of carrier `c`.
    pub fn neighbors(&self, c: CarrierId) -> &[CarrierId] {
        let lo = self.offsets[c.index()] as usize;
        let hi = self.offsets[c.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of carrier `c`.
    pub fn degree(&self, c: CarrierId) -> usize {
        self.neighbors(c).len()
    }

    /// The endpoints `(j, k)` of directed pair `p`.
    pub fn pair(&self, p: PairIdx) -> (CarrierId, CarrierId) {
        let k = self.adj[p as usize];
        // Binary search the offsets for the source carrier.
        let j = match self.offsets.binary_search(&p) {
            // `p` may sit at the boundary shared by empty adjacency lists;
            // the source is the *last* carrier whose slice starts at or
            // before `p` and is non-empty there, i.e. the partition point.
            Ok(mut i) => {
                while self.offsets[i + 1] == p {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        (CarrierId::from_index(j), k)
    }

    /// The pair index of the directed pair `(j, k)`, if `k` is a neighbor
    /// of `j`.
    pub fn pair_idx(&self, j: CarrierId, k: CarrierId) -> Option<PairIdx> {
        let base = self.offsets[j.index()];
        self.neighbors(j)
            .binary_search(&k)
            .ok()
            .map(|pos| base + pos as u32)
    }

    /// The contiguous range of pair indices whose source is `j`.
    pub fn pairs_from(&self, j: CarrierId) -> std::ops::Range<PairIdx> {
        self.offsets[j.index()]..self.offsets[j.index() + 1]
    }

    /// All directed pairs in pair-index order.
    pub fn pairs(&self) -> impl Iterator<Item = (PairIdx, CarrierId, CarrierId)> + '_ {
        (0..self.n_carriers()).flat_map(move |j| {
            let j = CarrierId::from_index(j);
            self.pairs_from(j)
                .zip(self.neighbors(j))
                .map(move |(p, &k)| (p, j, k))
        })
    }

    /// The carriers within `hops` X2 hops of `c`, excluding `c` itself,
    /// sorted ascending. `hops = 1` is the paper's local-learner scope;
    /// larger values feed the locality-radius ablation.
    pub fn k_hop_neighbors(&self, c: CarrierId, hops: usize) -> Vec<CarrierId> {
        if hops == 0 {
            return Vec::new();
        }
        let mut seen = vec![false; self.n_carriers()];
        seen[c.index()] = true;
        let mut frontier = vec![c];
        let mut out = Vec::new();
        for _ in 0..hops {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        next.push(v);
                        out.push(v);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out.sort_unstable();
        out
    }

    /// Checks structural invariants: sorted unique adjacency and symmetry.
    pub fn validate(&self) -> Result<(), String> {
        for j in 0..self.n_carriers() {
            let j = CarrierId::from_index(j);
            let ns = self.neighbors(j);
            if !ns.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {j} not sorted/unique"));
            }
            for &k in ns {
                if k == j {
                    return Err(format!("self-loop at {j}"));
                }
                if self.pair_idx(k, j).is_none() {
                    return Err(format!("asymmetric edge {j} -> {k}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CarrierId {
        CarrierId(i)
    }

    /// A path 0-1-2-3 plus edge 1-3 (triangle on 1,2,3).
    fn sample() -> X2Graph {
        X2Graph::from_edges(5, &[(c(0), c(1)), (c(1), c(2)), (c(2), c(3)), (c(1), c(3))])
    }

    #[test]
    fn adjacency_and_degree() {
        let g = sample();
        assert_eq!(g.n_carriers(), 5);
        assert_eq!(g.neighbors(c(1)), &[c(0), c(2), c(3)]);
        assert_eq!(g.degree(c(4)), 0, "isolated carrier");
        assert_eq!(g.n_pairs(), 8, "4 undirected edges = 8 directed pairs");
        g.validate().unwrap();
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = X2Graph::from_edges(3, &[(c(0), c(1)), (c(1), c(0)), (c(2), c(2))]);
        assert_eq!(g.n_pairs(), 2);
        assert_eq!(g.degree(c(2)), 0);
        g.validate().unwrap();
    }

    #[test]
    fn pair_round_trip() {
        let g = sample();
        for (p, j, k) in g.pairs() {
            assert_eq!(g.pair(p), (j, k));
            assert_eq!(g.pair_idx(j, k), Some(p));
        }
        assert_eq!(g.pair_idx(c(0), c(3)), None);
    }

    #[test]
    fn pair_lookup_past_isolated_vertices() {
        // Carriers 1 and 2 are isolated; pair offsets collapse there.
        let g = X2Graph::from_edges(5, &[(c(0), c(3)), (c(3), c(4))]);
        for (p, j, k) in g.pairs() {
            assert_eq!(g.pair(p), (j, k), "pair {p}");
        }
    }

    #[test]
    fn k_hop_expansion() {
        let g = sample();
        assert_eq!(g.k_hop_neighbors(c(0), 1), vec![c(1)]);
        assert_eq!(g.k_hop_neighbors(c(0), 2), vec![c(1), c(2), c(3)]);
        assert_eq!(g.k_hop_neighbors(c(0), 10), vec![c(1), c(2), c(3)]);
        assert_eq!(g.k_hop_neighbors(c(0), 0), vec![]);
        assert_eq!(g.k_hop_neighbors(c(4), 3), vec![], "isolated carrier");
    }

    #[test]
    fn pairs_from_ranges_partition_pair_space() {
        let g = sample();
        let mut total = 0usize;
        for j in 0..g.n_carriers() {
            total += g.pairs_from(c(j as u32)).len();
        }
        assert_eq!(total, g.n_pairs());
    }
}
