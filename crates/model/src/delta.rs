//! Fleet deltas: the streaming-ingestion event vocabulary.
//!
//! A [`FleetDelta`] is one observable change to the fleet: a market, an
//! eNodeB, a carrier or an X2 edge appearing, a carrier leaving, or one
//! configuration slot being retuned. The streaming generator
//! (`auric-netgen`) yields these instead of a materialized snapshot, and
//! the incremental fit (`auric-core`) consumes them instead of refitting
//! from scratch.
//!
//! [`apply_fleet_deltas`] folds one *batch* of events into a
//! [`NetworkSnapshot`] and returns an [`AppliedBatch`] — the digest the
//! incremental fit needs (which slots changed, from which old values,
//! how the directed pair list re-indexed). Batches are the atomicity
//! unit: within a batch the X2 CSR is rebuilt lazily (once per run of
//! edge adds, not once per edge), and the snapshot is only guaranteed
//! self-consistent at batch boundaries.
//!
//! ## Addressing
//!
//! Carrier ids are dense indices, so adds must arrive in id order and
//! only the *last* carrier can be removed (LIFO). Pair slots are
//! addressed by **endpoints**, not pair index: edge adds re-index the
//! whole CSR pair list, so an index-addressed retune would be ambiguous
//! about which side of the re-index it means.

use std::collections::HashSet;

use crate::attrs::AttrVec;
use crate::carrier::{Carrier, Enodeb, Market, Timezone};
use crate::config::Provenance;
use crate::ids::{CarrierId, MarketId, ParamId};
use crate::params::{ParamKind, ValueIdx};
use crate::snapshot::NetworkSnapshot;
use crate::x2::{PairIdx, X2Graph};
use serde::{Deserialize, Serialize};

/// Which configuration slot a [`FleetDelta::Retune`] lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeltaSlot {
    /// A singular parameter's slot on one carrier.
    Carrier(CarrierId),
    /// A pair-wise parameter's slot on the directed pair `(src, dst)`.
    Pair(CarrierId, CarrierId),
}

/// One streaming change to the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetDelta {
    /// A new (initially empty) market. `id` must be the next market index.
    AddMarket {
        id: MarketId,
        name: String,
        timezone: Timezone,
    },
    /// A new eNodeB. Its `carriers` list must be empty — carriers arrive
    /// as their own events and are appended to the eNodeB on the way in.
    AddEnodeb { enodeb: Enodeb },
    /// A new carrier with its final attributes, plus its rule-book base
    /// value for every *singular* parameter in catalog order.
    AddCarrier {
        carrier: Carrier,
        base: Vec<ValueIdx>,
    },
    /// A new undirected X2 edge, with the rule-book base values of both
    /// directed pairs for every *pair-wise* parameter in catalog order.
    AddX2Edge {
        a: CarrierId,
        b: CarrierId,
        base_ab: Vec<ValueIdx>,
        base_ba: Vec<ValueIdx>,
    },
    /// Removes the (currently last) carrier and every pair touching it.
    RemoveCarrier { id: CarrierId },
    /// One configuration slot changes value.
    Retune {
        param: ParamId,
        slot: DeltaSlot,
        value: ValueIdx,
        why: Provenance,
    },
}

/// One retune as actually applied: the old value is captured at write
/// time so the incremental fit can subtract the stale vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedRetune {
    pub param: ParamId,
    pub slot: DeltaSlot,
    pub old: ValueIdx,
    pub new: ValueIdx,
}

/// One directed pair that left with a removed carrier: everything the
/// incremental fit needs to subtract its votes after the endpoints are
/// gone from the snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemovedPair {
    pub src: CarrierId,
    pub dst: CarrierId,
    pub src_attrs: AttrVec,
    pub dst_attrs: AttrVec,
    /// `(param, value)` for every pair-wise parameter, in catalog order.
    pub values: Vec<(ParamId, ValueIdx)>,
}

/// A removed carrier's final state, recorded before removal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemovedCarrier {
    pub id: CarrierId,
    pub attrs: AttrVec,
    /// `(param, value)` for every singular parameter, in catalog order.
    pub values: Vec<(ParamId, ValueIdx)>,
    /// Every directed pair that involved this carrier, either side.
    pub pairs: Vec<RemovedPair>,
}

/// Digest of one applied delta batch: what [`apply_fleet_deltas`] did to
/// the snapshot, in the vocabulary the incremental fit consumes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AppliedBatch {
    /// Events in the batch (the `cf.delta.events` counter's unit).
    pub events: usize,
    /// Carriers appended and still present at batch end, in id order.
    pub added_carriers: Vec<CarrierId>,
    /// Pre-batch carriers removed (LIFO), most recent last. A carrier
    /// both added and removed inside the batch nets out of the digest
    /// entirely — the fitted model never saw it, so there is nothing to
    /// subtract. The same netting applies to [`RemovedPair`]s of pairs
    /// born inside the batch.
    pub removed: Vec<RemovedCarrier>,
    /// Old pair index → new pair index across the whole batch, when the
    /// directed pair list changed shape (`None` entries are pairs that
    /// left with a removed carrier). `None` at the top level means pair
    /// indices are unchanged.
    pub pair_remap: Option<Vec<Option<PairIdx>>>,
    /// Retunes on slots that existed *before* the batch, in event order.
    /// Retunes landing on slots the same batch created are folded into
    /// the add instead (the slot's post-batch value covers them).
    pub retunes: Vec<AppliedRetune>,
}

impl AppliedBatch {
    /// Did the batch change fleet shape (carriers or pairs), as opposed
    /// to only retuning values in place?
    pub fn structural(&self) -> bool {
        !self.added_carriers.is_empty() || !self.removed.is_empty() || self.pair_remap.is_some()
    }

    /// Pair indices (in the post-batch CSR) created by this batch:
    /// everything not in the remap's image.
    pub fn added_pairs(&self, post_n_pairs: usize) -> Vec<PairIdx> {
        match &self.pair_remap {
            None => Vec::new(),
            Some(map) => {
                let mut from_old = vec![false; post_n_pairs];
                for new in map.iter().flatten() {
                    from_old[*new as usize] = true;
                }
                (0..post_n_pairs as PairIdx)
                    .filter(|&q| !from_old[q as usize])
                    .collect()
            }
        }
    }
}

/// Typed failure applying a delta batch. The snapshot may be left
/// mid-batch on error; callers should treat it as corrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An add arrived with a non-dense id (`got` where `want` expected).
    NonDenseId {
        kind: &'static str,
        got: usize,
        want: usize,
    },
    /// An event referenced an entity the snapshot does not have.
    UnknownRef(String),
    /// `AddEnodeb` must carry an empty carrier list.
    EnodebNotEmpty,
    /// A base-value vector's length does not match the catalog.
    BaseArity { got: usize, want: usize },
    /// An `AddX2Edge` duplicates an existing (or in-batch) edge, or is a
    /// self-loop.
    BadEdge(CarrierId, CarrierId),
    /// Only the last carrier can be removed (ids are dense indices).
    NotLastCarrier(CarrierId),
    /// A retune addressed a directed pair that does not exist.
    UnknownPair(CarrierId, CarrierId),
    /// A retune's parameter kind does not match its slot kind.
    KindMismatch(ParamId),
    /// A batch may not add carriers after removing one: the arena/key
    /// column append contract relies on prefix immutability per batch.
    AddAfterRemove,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::NonDenseId { kind, got, want } => {
                write!(f, "{kind} id {got} out of order (expected {want})")
            }
            DeltaError::UnknownRef(what) => write!(f, "unknown reference: {what}"),
            DeltaError::EnodebNotEmpty => {
                write!(f, "AddEnodeb must carry an empty carrier list")
            }
            DeltaError::BaseArity { got, want } => {
                write!(
                    f,
                    "base value vector has {got} entries, catalog wants {want}"
                )
            }
            DeltaError::BadEdge(a, b) => write!(f, "bad X2 edge {a} - {b} (duplicate or loop)"),
            DeltaError::NotLastCarrier(c) => {
                write!(f, "{c} is not the last carrier; removals are LIFO")
            }
            DeltaError::UnknownPair(a, b) => write!(f, "no directed pair {a} -> {b}"),
            DeltaError::KindMismatch(p) => write!(f, "retune slot kind does not match {p}"),
            DeltaError::AddAfterRemove => {
                write!(f, "a batch may not add carriers after removing one")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// An empty snapshot over `schema`/`catalog`: the seed a delta stream is
/// collected into.
pub fn empty_snapshot(
    schema: crate::attrs::AttributeSchema,
    catalog: crate::params::ParamCatalog,
) -> NetworkSnapshot {
    let config = crate::config::Configuration::with_defaults(&catalog, 0, 0);
    NetworkSnapshot {
        schema,
        catalog,
        markets: Vec::new(),
        enodebs: Vec::new(),
        carriers: Vec::new(),
        x2: X2Graph::from_edges(0, &[]),
        config,
    }
}

/// In-flight state for one batch: buffered edge adds plus the cumulative
/// pair re-index.
struct BatchState {
    pending: Vec<(CarrierId, CarrierId, Vec<ValueIdx>, Vec<ValueIdx>)>,
    pending_set: HashSet<(CarrierId, CarrierId)>,
    /// Undirected edges created by this batch, kept across flushes: their
    /// pairs have no pre-batch observations, so retunes on them fold into
    /// the add and removals skip them entirely.
    batch_edges: HashSet<(CarrierId, CarrierId)>,
    /// Carriers added by this batch and still present.
    added: HashSet<CarrierId>,
    cum_remap: Option<Vec<Option<PairIdx>>>,
    removed_any: bool,
}

impl BatchState {
    fn compose(&mut self, local: Vec<Option<PairIdx>>) {
        self.cum_remap = Some(match self.cum_remap.take() {
            None => local,
            Some(prev) => prev
                .into_iter()
                .map(|t| t.and_then(|i| local[i as usize]))
                .collect(),
        });
    }
}

/// Folds one batch of deltas into `snapshot`, returning the applied
/// digest. See the module docs for the addressing and atomicity rules.
///
/// # Errors
/// Any structural inconsistency is a typed [`DeltaError`]; the snapshot
/// must then be considered corrupt (mid-batch state).
pub fn apply_fleet_deltas(
    snapshot: &mut NetworkSnapshot,
    batch: &[FleetDelta],
) -> Result<AppliedBatch, DeltaError> {
    let mut out = AppliedBatch {
        events: batch.len(),
        ..AppliedBatch::default()
    };
    let mut st = BatchState {
        pending: Vec::new(),
        pending_set: HashSet::new(),
        batch_edges: HashSet::new(),
        added: HashSet::new(),
        cum_remap: None,
        removed_any: false,
    };

    for ev in batch {
        match ev {
            FleetDelta::AddMarket { id, name, timezone } => {
                if id.index() != snapshot.markets.len() {
                    return Err(DeltaError::NonDenseId {
                        kind: "market",
                        got: id.index(),
                        want: snapshot.markets.len(),
                    });
                }
                snapshot.markets.push(Market {
                    id: *id,
                    name: name.clone(),
                    timezone: *timezone,
                    carriers: Vec::new(),
                    enodebs: Vec::new(),
                });
            }
            FleetDelta::AddEnodeb { enodeb } => {
                if enodeb.id.index() != snapshot.enodebs.len() {
                    return Err(DeltaError::NonDenseId {
                        kind: "eNodeB",
                        got: enodeb.id.index(),
                        want: snapshot.enodebs.len(),
                    });
                }
                if !enodeb.carriers.is_empty() {
                    return Err(DeltaError::EnodebNotEmpty);
                }
                let market = snapshot
                    .markets
                    .get_mut(enodeb.market.index())
                    .ok_or_else(|| DeltaError::UnknownRef(format!("{}", enodeb.market)))?;
                market.enodebs.push(enodeb.id);
                snapshot.enodebs.push(enodeb.clone());
            }
            FleetDelta::AddCarrier { carrier, base } => {
                if st.removed_any {
                    return Err(DeltaError::AddAfterRemove);
                }
                if carrier.id.index() != snapshot.carriers.len() {
                    return Err(DeltaError::NonDenseId {
                        kind: "carrier",
                        got: carrier.id.index(),
                        want: snapshot.carriers.len(),
                    });
                }
                let n_singular = snapshot.catalog.singular_ids().count();
                if base.len() != n_singular {
                    return Err(DeltaError::BaseArity {
                        got: base.len(),
                        want: n_singular,
                    });
                }
                let enb = snapshot
                    .enodebs
                    .get_mut(carrier.enodeb.index())
                    .ok_or_else(|| DeltaError::UnknownRef(format!("{}", carrier.enodeb)))?;
                if enb.market != carrier.market {
                    return Err(DeltaError::UnknownRef(format!(
                        "{} market disagrees with its eNodeB",
                        carrier.id
                    )));
                }
                enb.carriers.push(carrier.id);
                snapshot.markets[carrier.market.index()]
                    .carriers
                    .push(carrier.id);
                snapshot.config.push_carrier(&snapshot.catalog);
                let ids: Vec<ParamId> = snapshot.catalog.singular_ids().collect();
                for (pid, &v) in ids.into_iter().zip(base) {
                    snapshot
                        .config
                        .set_value(pid, carrier.id, v, Provenance::Rule);
                }
                st.added.insert(carrier.id);
                out.added_carriers.push(carrier.id);
                snapshot.carriers.push(carrier.clone());
            }
            FleetDelta::AddX2Edge {
                a,
                b,
                base_ab,
                base_ba,
            } => {
                let n = snapshot.carriers.len();
                if a.index() >= n || b.index() >= n {
                    return Err(DeltaError::UnknownRef(format!("edge endpoint {a} or {b}")));
                }
                let norm = if a < b { (*a, *b) } else { (*b, *a) };
                let existing = a.index() < snapshot.x2.n_carriers()
                    && b.index() < snapshot.x2.n_carriers()
                    && snapshot.x2.pair_idx(*a, *b).is_some();
                if *a == *b || existing || !st.pending_set.insert(norm) {
                    return Err(DeltaError::BadEdge(*a, *b));
                }
                st.batch_edges.insert(norm);
                let n_pairwise = snapshot.catalog.pairwise_ids().count();
                if base_ab.len() != n_pairwise || base_ba.len() != n_pairwise {
                    return Err(DeltaError::BaseArity {
                        got: base_ab.len().max(base_ba.len()),
                        want: n_pairwise,
                    });
                }
                st.pending.push((*a, *b, base_ab.clone(), base_ba.clone()));
            }
            FleetDelta::Retune {
                param,
                slot,
                value,
                why,
            } => {
                let old = match slot {
                    DeltaSlot::Carrier(c) => {
                        if c.index() >= snapshot.carriers.len() {
                            return Err(DeltaError::UnknownRef(format!("{c}")));
                        }
                        if snapshot.config.kind(*param) != ParamKind::Singular {
                            return Err(DeltaError::KindMismatch(*param));
                        }
                        let old = snapshot.config.value(*param, *c);
                        snapshot.config.set_value(*param, *c, *value, *why);
                        if st.added.contains(c) {
                            continue; // folded into the add
                        }
                        old
                    }
                    DeltaSlot::Pair(a, b) => {
                        flush_pairs(snapshot, &mut st)?;
                        if snapshot.config.kind(*param) != ParamKind::Pairwise {
                            return Err(DeltaError::KindMismatch(*param));
                        }
                        if a.index() >= snapshot.x2.n_carriers() {
                            return Err(DeltaError::UnknownPair(*a, *b));
                        }
                        let q = snapshot
                            .x2
                            .pair_idx(*a, *b)
                            .ok_or(DeltaError::UnknownPair(*a, *b))?;
                        let old = snapshot.config.pair_value(*param, q);
                        snapshot.config.set_pair_value(*param, q, *value, *why);
                        let norm = if a < b { (*a, *b) } else { (*b, *a) };
                        if st.batch_edges.contains(&norm) {
                            continue; // the pair is new this batch
                        }
                        old
                    }
                };
                out.retunes.push(AppliedRetune {
                    param: *param,
                    slot: *slot,
                    old,
                    new: *value,
                });
            }
            FleetDelta::RemoveCarrier { id } => {
                flush_pairs(snapshot, &mut st)?;
                remove_carrier(snapshot, &mut st, &mut out, *id)?;
            }
        }
    }
    flush_pairs(snapshot, &mut st)?;
    out.pair_remap = st.cum_remap;
    Ok(out)
}

/// Brings the X2 graph (and the pair-indexed configuration rows) up to
/// date: rebuilds the CSR over the current carrier count with all
/// buffered edge adds, remaps existing pair slots, and writes the new
/// pairs' base values.
fn flush_pairs(snapshot: &mut NetworkSnapshot, st: &mut BatchState) -> Result<(), DeltaError> {
    let n = snapshot.carriers.len();
    if st.pending.is_empty() {
        if snapshot.x2.n_carriers() != n {
            // Carriers appended without edges: same pair list, wider CSR.
            let edges = undirected_edges(&snapshot.x2);
            snapshot.x2 = X2Graph::from_edges(n, &edges);
        }
        return Ok(());
    }
    let old_pairs: Vec<(PairIdx, CarrierId, CarrierId)> = snapshot.x2.pairs().collect();
    let mut edges = undirected_edges(&snapshot.x2);
    edges.extend(st.pending.iter().map(|&(a, b, _, _)| (a, b)));
    let new_x2 = X2Graph::from_edges(n, &edges);
    let mut map = vec![None; snapshot.x2.n_pairs()];
    for (p, j, k) in old_pairs {
        map[p as usize] = new_x2.pair_idx(j, k);
    }
    snapshot
        .config
        .remap_pairs(&snapshot.catalog, &map, new_x2.n_pairs());
    let pairwise: Vec<ParamId> = snapshot.catalog.pairwise_ids().collect();
    for (a, b, base_ab, base_ba) in st.pending.drain(..) {
        for (dir, base) in [((a, b), base_ab), ((b, a), base_ba)] {
            let q = new_x2
                .pair_idx(dir.0, dir.1)
                .expect("edge was just inserted");
            for (pid, &v) in pairwise.iter().zip(&base) {
                snapshot.config.set_pair_value(*pid, q, v, Provenance::Rule);
            }
        }
    }
    snapshot.x2 = new_x2;
    st.pending_set.clear();
    st.compose(map);
    Ok(())
}

/// LIFO carrier removal: records the carrier's final state (attributes,
/// values, every directed pair either side), then shrinks the snapshot.
fn remove_carrier(
    snapshot: &mut NetworkSnapshot,
    st: &mut BatchState,
    out: &mut AppliedBatch,
    id: CarrierId,
) -> Result<(), DeltaError> {
    let last = snapshot
        .carriers
        .last()
        .ok_or_else(|| DeltaError::UnknownRef(format!("{id}")))?
        .id;
    if id != last {
        return Err(DeltaError::NotLastCarrier(id));
    }
    // A carrier (or pair) born inside this same batch has no pre-batch
    // observations for the incremental fit to subtract, so the digest
    // nets it out instead of recording a removal.
    let born_this_batch = st.added.remove(&id);
    let pairwise: Vec<ParamId> = snapshot.catalog.pairwise_ids().collect();
    let mut pairs = Vec::new();
    if !born_this_batch {
        for (p, j, k) in snapshot.x2.pairs() {
            if j != id && k != id {
                continue;
            }
            let norm = if j < k { (j, k) } else { (k, j) };
            if st.batch_edges.contains(&norm) {
                continue; // the pair was born this batch too
            }
            pairs.push(RemovedPair {
                src: j,
                dst: k,
                src_attrs: snapshot.carriers[j.index()].attrs.clone(),
                dst_attrs: snapshot.carriers[k.index()].attrs.clone(),
                values: pairwise
                    .iter()
                    .map(|&pid| (pid, snapshot.config.pair_value(pid, p)))
                    .collect(),
            });
        }
    }
    let carrier = snapshot.carriers.pop().expect("checked non-empty");
    let removed = (!born_this_batch).then(|| RemovedCarrier {
        id,
        attrs: carrier.attrs.clone(),
        values: snapshot
            .catalog
            .singular_ids()
            .map(|pid| (pid, snapshot.config.value(pid, id)))
            .collect(),
        pairs,
    });
    // Shrink the graph: every surviving undirected edge, one fewer node.
    let edges: Vec<(CarrierId, CarrierId)> = undirected_edges(&snapshot.x2)
        .into_iter()
        .filter(|&(a, b)| a != id && b != id)
        .collect();
    let new_x2 = X2Graph::from_edges(snapshot.carriers.len(), &edges);
    let mut map = vec![None; snapshot.x2.n_pairs()];
    for (p, j, k) in snapshot.x2.pairs() {
        if j != id && k != id {
            map[p as usize] = new_x2.pair_idx(j, k);
        }
    }
    snapshot
        .config
        .remap_pairs(&snapshot.catalog, &map, new_x2.n_pairs());
    snapshot.config.pop_carrier();
    snapshot.x2 = new_x2;
    st.compose(map);
    st.removed_any = true;
    snapshot.markets[carrier.market.index()]
        .carriers
        .retain(|&c| c != id);
    snapshot.enodebs[carrier.enodeb.index()]
        .carriers
        .retain(|&c| c != id);
    if let Some(removed) = removed {
        out.removed.push(removed);
    } else {
        // Adds are id-ordered and removals LIFO, so a batch-born carrier
        // being removed is necessarily the most recently added one.
        let popped = out.added_carriers.pop();
        debug_assert_eq!(popped, Some(id));
    }
    Ok(())
}

/// The undirected edge set `(j, k)` with `j < k`, recovered from the
/// directed pair list.
fn undirected_edges(x2: &X2Graph) -> Vec<(CarrierId, CarrierId)> {
    x2.pairs()
        .filter(|&(_, j, k)| j < k)
        .map(|(_, j, k)| (j, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AttrDef, AttributeSchema};
    use crate::carrier::{Band, Morphology, Point, Vendor};
    use crate::ids::EnodebId;
    use crate::params::{ParamCatalog, ParamDef, ParamFunction, ValueRange};

    fn catalog() -> ParamCatalog {
        let range = ValueRange::new(0.0, 10.0, 1.0);
        ParamCatalog::new(vec![
            ParamDef {
                id: ParamId(0),
                name: "s0".into(),
                kind: ParamKind::Singular,
                function: ParamFunction::Mobility,
                range,
                default: 5,
            },
            ParamDef {
                id: ParamId(1),
                name: "p0".into(),
                kind: ParamKind::Pairwise,
                function: ParamFunction::Handover,
                range,
                default: 2,
            },
        ])
    }

    fn schema() -> AttributeSchema {
        AttributeSchema::new(vec![AttrDef {
            name: "morphology".into(),
            dynamic: false,
            levels: vec!["urban".into(), "rural".into()],
        }])
    }

    fn enodeb(id: u32, market: u16) -> Enodeb {
        Enodeb {
            id: EnodebId(id),
            market: MarketId(market),
            position: Point { x: 0.0, y: 0.0 },
            morphology: Morphology::Urban,
            vendor: Vendor::VendorA,
            carriers: Vec::new(),
        }
    }

    fn carrier(id: u32, enb: u32, market: u16, attr: u16) -> Carrier {
        Carrier {
            id: CarrierId(id),
            enodeb: EnodebId(enb),
            market: MarketId(market),
            face: 0,
            band: Band::Low,
            attrs: AttrVec::new(vec![attr]),
        }
    }

    /// Builds a 3-carrier market purely from deltas and validates it.
    fn build_market() -> (NetworkSnapshot, AppliedBatch) {
        let mut snap = empty_snapshot(schema(), catalog());
        let batch = vec![
            FleetDelta::AddMarket {
                id: MarketId(0),
                name: "Market 1".into(),
                timezone: Timezone::Eastern,
            },
            FleetDelta::AddEnodeb {
                enodeb: enodeb(0, 0),
            },
            FleetDelta::AddCarrier {
                carrier: carrier(0, 0, 0, 0),
                base: vec![7],
            },
            FleetDelta::AddCarrier {
                carrier: carrier(1, 0, 0, 1),
                base: vec![4],
            },
            FleetDelta::AddCarrier {
                carrier: carrier(2, 0, 0, 0),
                base: vec![7],
            },
            FleetDelta::AddX2Edge {
                a: CarrierId(0),
                b: CarrierId(1),
                base_ab: vec![3],
                base_ba: vec![6],
            },
            FleetDelta::AddX2Edge {
                a: CarrierId(1),
                b: CarrierId(2),
                base_ab: vec![1],
                base_ba: vec![2],
            },
            FleetDelta::Retune {
                param: ParamId(0),
                slot: DeltaSlot::Carrier(CarrierId(1)),
                value: 9,
                why: Provenance::Noise,
            },
        ];
        let applied = apply_fleet_deltas(&mut snap, &batch).expect("clean batch");
        snap.validate().expect("collected snapshot is consistent");
        (snap, applied)
    }

    #[test]
    fn builds_a_consistent_snapshot_from_scratch() {
        let (snap, applied) = build_market();
        assert_eq!(snap.n_carriers(), 3);
        assert_eq!(snap.x2.n_pairs(), 4);
        assert_eq!(snap.config.value(ParamId(0), CarrierId(0)), 7);
        assert_eq!(snap.config.value(ParamId(0), CarrierId(1)), 9);
        let q01 = snap.x2.pair_idx(CarrierId(0), CarrierId(1)).unwrap();
        let q10 = snap.x2.pair_idx(CarrierId(1), CarrierId(0)).unwrap();
        assert_eq!(snap.config.pair_value(ParamId(1), q01), 3);
        assert_eq!(snap.config.pair_value(ParamId(1), q10), 6);
        assert_eq!(applied.added_carriers.len(), 3);
        assert!(applied.structural());
        assert_eq!(
            applied.retunes,
            vec![],
            "retunes on carriers added this batch fold into the add"
        );
        assert_eq!(applied.added_pairs(snap.x2.n_pairs()).len(), 4);
    }

    #[test]
    fn retune_on_existing_slot_captures_old_value() {
        let (mut snap, _) = build_market();
        let applied = apply_fleet_deltas(
            &mut snap,
            &[
                FleetDelta::Retune {
                    param: ParamId(0),
                    slot: DeltaSlot::Carrier(CarrierId(2)),
                    value: 1,
                    why: Provenance::StaleTrial,
                },
                FleetDelta::Retune {
                    param: ParamId(1),
                    slot: DeltaSlot::Pair(CarrierId(1), CarrierId(2)),
                    value: 8,
                    why: Provenance::Noise,
                },
            ],
        )
        .unwrap();
        assert!(!applied.structural());
        assert_eq!(applied.retunes.len(), 2);
        assert_eq!(applied.retunes[0].old, 7);
        assert_eq!(applied.retunes[0].new, 1);
        assert_eq!(applied.retunes[1].old, 1);
        assert_eq!(applied.retunes[1].new, 8);
        assert_eq!(snap.config.value(ParamId(0), CarrierId(2)), 1);
        assert_eq!(
            snap.config.provenance(ParamId(0), CarrierId(2)),
            Provenance::StaleTrial
        );
    }

    #[test]
    fn edge_add_remaps_existing_pair_slots() {
        let (mut snap, _) = build_market();
        let q10_before = snap.x2.pair_idx(CarrierId(1), CarrierId(0)).unwrap();
        let v10 = snap.config.pair_value(ParamId(1), q10_before);
        let applied = apply_fleet_deltas(
            &mut snap,
            &[FleetDelta::AddX2Edge {
                a: CarrierId(0),
                b: CarrierId(2),
                base_ab: vec![9],
                base_ba: vec![9],
            }],
        )
        .unwrap();
        snap.validate().unwrap();
        assert_eq!(snap.x2.n_pairs(), 6);
        let q10 = snap.x2.pair_idx(CarrierId(1), CarrierId(0)).unwrap();
        assert_eq!(
            snap.config.pair_value(ParamId(1), q10),
            v10,
            "existing value moved with its pair"
        );
        let remap = applied.pair_remap.as_ref().expect("pairs re-indexed");
        assert_eq!(remap[q10_before as usize], Some(q10));
        assert_eq!(applied.added_pairs(6).len(), 2);
    }

    #[test]
    fn lifo_remove_records_final_state() {
        let (mut snap, _) = build_market();
        assert_eq!(
            apply_fleet_deltas(&mut snap, &[FleetDelta::RemoveCarrier { id: CarrierId(0) }]),
            Err(DeltaError::NotLastCarrier(CarrierId(0)))
        );
        let (mut snap, _) = build_market();
        let applied =
            apply_fleet_deltas(&mut snap, &[FleetDelta::RemoveCarrier { id: CarrierId(2) }])
                .unwrap();
        snap.validate().unwrap();
        assert_eq!(snap.n_carriers(), 2);
        assert_eq!(snap.x2.n_pairs(), 2, "pairs touching carrier 2 left");
        let removed = &applied.removed[0];
        assert_eq!(removed.id, CarrierId(2));
        assert_eq!(removed.values, vec![(ParamId(0), 7)]);
        assert_eq!(removed.pairs.len(), 2, "both directions of edge 1-2");
        assert!(applied.pair_remap.is_some());
        assert!(applied.added_pairs(snap.x2.n_pairs()).is_empty());
    }

    /// Entities born and destroyed inside one batch net out of the
    /// digest: the incremental fit has nothing pre-batch to subtract, so
    /// recording them would make it remove observations never added.
    #[test]
    fn in_batch_add_then_remove_nets_out_of_the_digest() {
        let (mut snap, _) = build_market();
        let applied = apply_fleet_deltas(
            &mut snap,
            &[
                FleetDelta::AddCarrier {
                    carrier: carrier(3, 0, 0, 1),
                    base: vec![2],
                },
                FleetDelta::AddX2Edge {
                    a: CarrierId(2),
                    b: CarrierId(3),
                    base_ab: vec![5],
                    base_ba: vec![5],
                },
                // A batch-born pair between two pre-existing carriers:
                // its retune must fold into the add, not be recorded.
                FleetDelta::AddX2Edge {
                    a: CarrierId(0),
                    b: CarrierId(2),
                    base_ab: vec![4],
                    base_ba: vec![4],
                },
                FleetDelta::Retune {
                    param: ParamId(1),
                    slot: DeltaSlot::Pair(CarrierId(0), CarrierId(2)),
                    value: 9,
                    why: Provenance::Noise,
                },
                FleetDelta::Retune {
                    param: ParamId(0),
                    slot: DeltaSlot::Carrier(CarrierId(3)),
                    value: 8,
                    why: Provenance::Noise,
                },
                FleetDelta::RemoveCarrier { id: CarrierId(3) },
            ],
        )
        .unwrap();
        snap.validate().unwrap();
        assert_eq!(snap.n_carriers(), 3);
        assert_eq!(snap.x2.n_pairs(), 6, "edge 0-2 survives, edge 2-3 left");
        assert_eq!(applied.added_carriers, vec![], "born and gone nets out");
        assert_eq!(applied.removed, vec![], "nothing pre-batch was removed");
        assert_eq!(applied.retunes, vec![], "both retunes hit batch-born slots");
        let q02 = snap.x2.pair_idx(CarrierId(0), CarrierId(2)).unwrap();
        assert_eq!(
            snap.config.pair_value(ParamId(1), q02),
            9,
            "the folded retune still landed on the surviving pair"
        );
        assert_eq!(applied.added_pairs(snap.x2.n_pairs()).len(), 2);
    }

    #[test]
    fn add_after_remove_is_rejected() {
        let (mut snap, _) = build_market();
        let err = apply_fleet_deltas(
            &mut snap,
            &[
                FleetDelta::RemoveCarrier { id: CarrierId(2) },
                FleetDelta::AddCarrier {
                    carrier: carrier(2, 0, 0, 1),
                    base: vec![0],
                },
            ],
        )
        .unwrap_err();
        assert_eq!(err, DeltaError::AddAfterRemove);
    }

    #[test]
    fn structural_errors_are_typed() {
        let (mut snap, _) = build_market();
        assert_eq!(
            apply_fleet_deltas(
                &mut snap,
                &[FleetDelta::Retune {
                    param: ParamId(1),
                    slot: DeltaSlot::Pair(CarrierId(0), CarrierId(2)),
                    value: 1,
                    why: Provenance::Noise,
                }]
            ),
            Err(DeltaError::UnknownPair(CarrierId(0), CarrierId(2)))
        );
        assert_eq!(
            apply_fleet_deltas(
                &mut snap,
                &[FleetDelta::Retune {
                    param: ParamId(1),
                    slot: DeltaSlot::Carrier(CarrierId(0)),
                    value: 1,
                    why: Provenance::Noise,
                }]
            ),
            Err(DeltaError::KindMismatch(ParamId(1)))
        );
        assert_eq!(
            apply_fleet_deltas(
                &mut snap,
                &[FleetDelta::AddX2Edge {
                    a: CarrierId(0),
                    b: CarrierId(1),
                    base_ab: vec![0],
                    base_ba: vec![0],
                }]
            ),
            Err(DeltaError::BadEdge(CarrierId(0), CarrierId(1)))
        );
    }
}
