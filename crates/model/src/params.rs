//! The configuration-parameter catalog (§2.2, §2.6, §4.1).
//!
//! The paper analyzes 3000+ parameters, eliminates carrier-unique ones
//! (IP addresses, carrier ids) and enumerations coverable by rule-books,
//! and keeps **65 range parameters** that engineers actively tune:
//! **39 singular** (one value per carrier) and **26 pair-wise** (one value
//! per carrier/X2-neighbor pair, governing mobility and handovers).
//!
//! Each parameter takes values on a discrete grid `min, min+step, …, max`
//! (§2.2 gives e.g. `pMax`: 0..60 in steps of 0.6, `hysA3Offset`: 0..15 in
//! steps of 0.5). A value is stored as a [`ValueIdx`] — the grid index —
//! so that "same value" is exact integer equality, which the voting
//! recommender and accuracy metric require.

use crate::ids::ParamId;
use serde::{Deserialize, Serialize};

/// Grid index of a parameter value: the value is
/// `range.min + idx as f64 * range.step`.
pub type ValueIdx = u16;

/// Whether a parameter is configured per carrier or per carrier pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// One value per carrier (`Y_j^{(i)}`), 39 of the 65.
    Singular,
    /// One value per (carrier, X2-neighbor) pair (`Y_{j,k}^{(i)}`), 26 of
    /// the 65; these control user mobility and handovers between carriers.
    Pairwise,
}

/// Functional category of a parameter (§2.2 lists the functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamFunction {
    RadioConnection,
    PowerControl,
    LinkAdaptation,
    Scheduling,
    CapacityManagement,
    LayerManagement,
    Mobility,
    Handover,
    Interference,
    LoadBalancing,
}

impl ParamFunction {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ParamFunction::RadioConnection => "radio-connection",
            ParamFunction::PowerControl => "power-control",
            ParamFunction::LinkAdaptation => "link-adaptation",
            ParamFunction::Scheduling => "scheduling",
            ParamFunction::CapacityManagement => "capacity-management",
            ParamFunction::LayerManagement => "layer-management",
            ParamFunction::Mobility => "mobility",
            ParamFunction::Handover => "handover",
            ParamFunction::Interference => "interference",
            ParamFunction::LoadBalancing => "load-balancing",
        }
    }
}

/// The discrete value grid of a range parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueRange {
    /// Smallest allowed value.
    pub min: f64,
    /// Largest allowed value.
    pub max: f64,
    /// Grid step size (> 0).
    pub step: f64,
}

impl ValueRange {
    /// Creates a range, checking `min <= max` and `step > 0`.
    pub fn new(min: f64, max: f64, step: f64) -> Self {
        assert!(step > 0.0, "step must be positive");
        assert!(min <= max, "min must not exceed max");
        let r = Self { min, max, step };
        assert!(
            r.n_values() <= ValueIdx::MAX as usize + 1,
            "range has more grid points than ValueIdx can index"
        );
        r
    }

    /// Number of grid points (inclusive of both ends).
    pub fn n_values(&self) -> usize {
        ((self.max - self.min) / self.step).round() as usize + 1
    }

    /// The concrete value at grid index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is outside the grid.
    pub fn value(&self, idx: ValueIdx) -> f64 {
        assert!(
            (idx as usize) < self.n_values(),
            "value index {} out of range ({} grid points)",
            idx,
            self.n_values()
        );
        self.min + idx as f64 * self.step
    }

    /// The grid index nearest to `v`, if `v` lies on the grid (within a
    /// small tolerance) and inside `[min, max]`.
    pub fn index_of(&self, v: f64) -> Option<ValueIdx> {
        if v < self.min - 1e-9 || v > self.max + 1e-9 {
            return None;
        }
        let k = (v - self.min) / self.step;
        let r = k.round();
        if (k - r).abs() > 1e-6 {
            return None;
        }
        let idx = r as usize;
        (idx < self.n_values()).then_some(idx as ValueIdx)
    }

    /// True if `v` is a legal value of this range (SON compliance check).
    pub fn contains(&self, v: f64) -> bool {
        self.index_of(v).is_some()
    }
}

/// Definition of one configuration parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    pub id: ParamId,
    /// Vendor-style camel-case name, e.g. `"hysA3Offset"`.
    pub name: String,
    pub kind: ParamKind,
    pub function: ParamFunction,
    pub range: ValueRange,
    /// The rule-book initial default (§2.4), as a grid index.
    pub default: ValueIdx,
}

/// The ordered catalog of configuration parameters.
///
/// [`ParamCatalog::standard`] builds the 65-parameter catalog used
/// throughout the reproduction; tests may build smaller catalogs with
/// [`ParamCatalog::new`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ParamCatalog {
    defs: Vec<ParamDef>,
}

impl ParamCatalog {
    /// Creates a catalog from explicit definitions.
    ///
    /// # Panics
    /// Panics if ids are not dense `0..n`, names collide, or a default is
    /// off-grid.
    pub fn new(defs: Vec<ParamDef>) -> Self {
        for (i, d) in defs.iter().enumerate() {
            assert_eq!(d.id.index(), i, "parameter ids must be dense and ordered");
            assert!(
                (d.default as usize) < d.range.n_values(),
                "default of {:?} is off-grid",
                d.name
            );
            assert!(
                defs[..i].iter().all(|e| e.name != d.name),
                "duplicate parameter name {:?}",
                d.name
            );
        }
        Self { defs }
    }

    /// Number of parameters (the paper's `M`).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The definition of parameter `p`.
    pub fn def(&self, p: ParamId) -> &ParamDef {
        &self.defs[p.index()]
    }

    /// All definitions in id order.
    pub fn defs(&self) -> &[ParamDef] {
        &self.defs
    }

    /// All parameter ids in order.
    pub fn param_ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.defs.len()).map(|i| ParamId(i as u16))
    }

    /// Ids of the singular parameters.
    pub fn singular_ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        self.defs
            .iter()
            .filter(|d| d.kind == ParamKind::Singular)
            .map(|d| d.id)
    }

    /// Ids of the pair-wise parameters.
    pub fn pairwise_ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        self.defs
            .iter()
            .filter(|d| d.kind == ParamKind::Pairwise)
            .map(|d| d.id)
    }

    /// Looks a parameter up by name.
    pub fn by_name(&self, name: &str) -> Option<ParamId> {
        self.defs
            .iter()
            .position(|d| d.name == name)
            .map(|i| ParamId(i as u16))
    }

    /// The standard 65-parameter catalog: 39 singular + 26 pair-wise range
    /// parameters. The six parameters §2.2 describes by name carry the
    /// paper's exact ranges; the remainder are realistic LTE tunables
    /// filling out the functional categories §2.2 lists.
    pub fn standard() -> Self {
        use ParamFunction::*;
        use ParamKind::*;

        // (name, kind, function, min, max, step, default value)
        #[rustfmt::skip]
        let spec: [(&str, ParamKind, ParamFunction, f64, f64, f64, f64); 65] = [
            // ---- 39 singular parameters ----
            // Paper-named examples (§2.2 ranges).
            ("sFreqPrio",              Singular, LayerManagement,    1.0, 10000.0, 1.0,   1.0),
            ("pMax",                   Singular, PowerControl,       0.0, 60.0,    0.6,   46.2),
            ("qRxLevMin",              Singular, RadioConnection, -156.0, -44.0,   2.0,  -120.0),
            ("inactivityTimer",        Singular, RadioConnection,    1.0, 65535.0, 1.0,   10.0),
            ("lbCapacityThreshold",    Singular, LoadBalancing,      0.0, 100.0,   1.0,   80.0),
            // Layer management / reselection.
            ("cellReselectionPriority",Singular, LayerManagement,    0.0, 7.0,     1.0,   5.0),
            ("threshServingLow",       Singular, LayerManagement,    0.0, 62.0,    2.0,   4.0),
            ("threshXHigh",            Singular, LayerManagement,    0.0, 62.0,    2.0,   8.0),
            ("threshXLow",             Singular, LayerManagement,    0.0, 62.0,    2.0,   6.0),
            // Idle-mode mobility.
            ("qHyst",                  Singular, Mobility,           0.0, 24.0,    1.0,   4.0),
            ("sIntraSearch",           Singular, Mobility,           0.0, 62.0,    2.0,   46.0),
            ("sNonIntraSearch",        Singular, Mobility,           0.0, 62.0,    2.0,   6.0),
            ("sMeasure",               Singular, Mobility,           0.0, 97.0,    1.0,   0.0),
            ("filterCoefficientRsrp",  Singular, Mobility,           0.0, 19.0,    1.0,   4.0),
            // Power control.
            ("pZeroNominalPusch",      Singular, PowerControl,    -126.0, 24.0,    1.0,  -103.0),
            ("pZeroNominalPucch",      Singular, PowerControl,    -127.0, -96.0,   1.0,  -116.0),
            ("alphaPusch",             Singular, PowerControl,       0.0, 1.0,     0.1,   0.8),
            ("crsGain",                Singular, PowerControl,       0.0, 600.0,   10.0,  300.0),
            ("pdcchPowerBoost",        Singular, PowerControl,       0.0, 6.0,     1.0,   0.0),
            ("puschPowerRampStep",     Singular, PowerControl,       0.0, 6.0,     2.0,   2.0),
            // Link adaptation.
            ("cqiPeriodicity",         Singular, LinkAdaptation,     2.0, 160.0,   2.0,   40.0),
            ("initialCqi",             Singular, LinkAdaptation,     1.0, 15.0,    1.0,   7.0),
            ("amcBlerTarget",          Singular, LinkAdaptation,     1.0, 30.0,    1.0,   10.0),
            ("harqMaxTx",              Singular, LinkAdaptation,     1.0, 8.0,     1.0,   4.0),
            ("mimoSwitchThreshold",    Singular, LinkAdaptation,     0.0, 30.0,    1.0,   12.0),
            // Scheduling.
            ("dlSchedulerWeight",      Singular, Scheduling,         0.0, 100.0,   1.0,   50.0),
            ("ulSchedulerMinBitrate",  Singular, Scheduling,         0.0, 1000.0,  8.0,   64.0),
            ("schedulingRequestPeriod",Singular, Scheduling,         5.0, 80.0,    5.0,   10.0),
            ("minPrbNonGbr",           Singular, Scheduling,         0.0, 100.0,   1.0,   5.0),
            // Capacity / congestion management.
            ("congTriggerThreshold",   Singular, CapacityManagement, 0.0, 100.0,   1.0,   90.0),
            ("congClearThreshold",     Singular, CapacityManagement, 0.0, 100.0,   1.0,   70.0),
            ("admissionRateThreshold", Singular, CapacityManagement, 0.0, 1000.0,  5.0,   500.0),
            ("maxNumUeDl",             Singular, CapacityManagement, 10.0, 1000.0, 10.0,  400.0),
            // Radio connection.
            ("taTimer",                Singular, RadioConnection,  500.0, 10240.0, 10.0,  1880.0),
            ("drxInactivityTimer",     Singular, RadioConnection,    1.0, 2560.0,  1.0,   100.0),
            ("drxLongCycle",           Singular, RadioConnection,   10.0, 2560.0,  10.0,  320.0),
            ("preambleTransMax",       Singular, RadioConnection,    3.0, 200.0,   1.0,   10.0),
            ("outOfCoverageThreshold", Singular, RadioConnection, -140.0, -90.0,   1.0,  -118.0),
            // Interference / load balancing.
            ("uplinkNoiseFigure",      Singular, Interference,       0.0, 30.0,    0.5,   3.0),
            // ---- 26 pair-wise parameters (mobility & handover, §4.1) ----
            ("hysA3Offset",            Pairwise, Handover,           0.0, 15.0,    0.5,   2.0),
            ("a3Offset",               Pairwise, Handover,         -15.0, 15.0,    0.5,   3.0),
            ("timeToTriggerA3",        Pairwise, Handover,           0.0, 5120.0,  40.0,  320.0),
            ("a5Threshold1Rsrp",       Pairwise, Handover,        -140.0, -44.0,   1.0,  -110.0),
            ("a5Threshold2Rsrp",       Pairwise, Handover,        -140.0, -44.0,   1.0,  -114.0),
            ("a5Threshold1Rsrq",       Pairwise, Handover,         -40.0, 0.0,     1.0,  -18.0),
            ("a5Threshold2Rsrq",       Pairwise, Handover,         -40.0, 0.0,     1.0,  -20.0),
            ("a1ServingThreshold",     Pairwise, Mobility,        -140.0, -44.0,   1.0,  -106.0),
            ("a2CriticalThreshold",    Pairwise, Mobility,        -140.0, -44.0,   1.0,  -122.0),
            ("qOffsetCell",            Pairwise, Mobility,         -24.0, 24.0,    1.0,   0.0),
            ("qOffsetFreq",            Pairwise, Mobility,         -24.0, 24.0,    1.0,   0.0),
            ("cellIndividualOffset",   Pairwise, Handover,         -24.0, 24.0,    0.5,   0.0),
            ("timeToTriggerA5",        Pairwise, Handover,           0.0, 5120.0,  40.0,  640.0),
            ("hysA5",                  Pairwise, Handover,           0.0, 15.0,    0.5,   1.5),
            ("iflbA5Offset",           Pairwise, LoadBalancing,    -15.0, 15.0,    0.5,   0.0),
            ("handoverPrepTimeout",    Pairwise, Handover,          50.0, 2000.0,  50.0,  500.0),
            ("x2DataForwardingTimer",  Pairwise, Handover,          50.0, 3000.0,  50.0,  1000.0),
            ("srvccThreshold",         Pairwise, Handover,        -140.0, -44.0,   1.0,  -112.0),
            ("interFreqHoThreshold",   Pairwise, Handover,        -140.0, -44.0,   1.0,  -108.0),
            ("loadExchangePeriod",     Pairwise, LoadBalancing,    100.0, 10000.0, 100.0, 1000.0),
            ("neighborCellWeight",     Pairwise, LoadBalancing,      0.0, 100.0,   1.0,   50.0),
            ("anrPciConflictTimer",    Pairwise, Mobility,           1.0, 600.0,   1.0,   60.0),
            ("hoSuccessRateFloor",     Pairwise, Handover,           0.0, 100.0,   1.0,   90.0),
            ("earlyHoOffset",          Pairwise, Handover,         -10.0, 10.0,    0.5,   0.0),
            ("lateHoOffset",           Pairwise, Handover,         -10.0, 10.0,    0.5,   0.0),
            ("pingPongGuardTimer",     Pairwise, Handover,           0.0, 10000.0, 100.0, 2000.0),
        ];

        let defs = spec
            .iter()
            .enumerate()
            .map(|(i, &(name, kind, function, min, max, step, default))| {
                let range = ValueRange::new(min, max, step);
                let default = range
                    .index_of(default)
                    .unwrap_or_else(|| panic!("default of {name} is off-grid"));
                ParamDef {
                    id: ParamId(i as u16),
                    name: name.to_string(),
                    kind,
                    function,
                    range,
                    default,
                }
            })
            .collect();
        Self::new(defs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_matches_paper_counts() {
        let c = ParamCatalog::standard();
        assert_eq!(c.len(), 65);
        assert_eq!(c.singular_ids().count(), 39);
        assert_eq!(c.pairwise_ids().count(), 26);
    }

    #[test]
    fn paper_named_parameters_have_paper_ranges() {
        let c = ParamCatalog::standard();
        let hys = c.def(c.by_name("hysA3Offset").unwrap());
        assert_eq!(hys.range, ValueRange::new(0.0, 15.0, 0.5));
        assert_eq!(hys.kind, ParamKind::Pairwise);

        let pmax = c.def(c.by_name("pMax").unwrap());
        assert_eq!(pmax.range, ValueRange::new(0.0, 60.0, 0.6));

        let q = c.def(c.by_name("qRxLevMin").unwrap());
        assert_eq!((q.range.min, q.range.max), (-156.0, -44.0));

        let sfp = c.def(c.by_name("sFreqPrio").unwrap());
        assert_eq!((sfp.range.min, sfp.range.max), (1.0, 10000.0));
        assert_eq!(
            sfp.range.value(sfp.default),
            1.0,
            "default priority is 1 (highest)"
        );

        let it = c.def(c.by_name("inactivityTimer").unwrap());
        assert_eq!(it.range.n_values(), 65535);
    }

    #[test]
    fn value_range_grid_round_trip() {
        let r = ValueRange::new(0.0, 15.0, 0.5);
        assert_eq!(r.n_values(), 31);
        assert_eq!(r.value(0), 0.0);
        assert_eq!(r.value(30), 15.0);
        assert_eq!(r.index_of(7.5), Some(15));
        assert_eq!(r.index_of(7.3), None, "off-grid value");
        assert_eq!(r.index_of(15.5), None, "above max");
        assert_eq!(r.index_of(-0.5), None, "below min");
        assert!(r.contains(0.5) && !r.contains(0.25));
    }

    #[test]
    fn negative_ranges_work() {
        let r = ValueRange::new(-156.0, -44.0, 2.0);
        assert_eq!(r.n_values(), 57);
        assert_eq!(r.value(0), -156.0);
        assert_eq!(r.index_of(-44.0), Some(56));
        assert_eq!(r.index_of(-45.0), None);
    }

    #[test]
    fn fractional_step_round_trip() {
        let r = ValueRange::new(0.0, 60.0, 0.6);
        assert_eq!(r.n_values(), 101);
        for idx in 0..r.n_values() as ValueIdx {
            assert_eq!(r.index_of(r.value(idx)), Some(idx), "idx {idx}");
        }
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn rejects_zero_step() {
        ValueRange::new(0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "more grid points")]
    fn rejects_oversized_grid() {
        ValueRange::new(0.0, 100_000.0, 1.0);
    }

    #[test]
    fn catalog_lookup_by_name() {
        let c = ParamCatalog::standard();
        assert!(c.by_name("qOffsetCell").is_some());
        assert!(c.by_name("noSuchParam").is_none());
        for p in c.param_ids() {
            assert_eq!(c.by_name(&c.def(p).name), Some(p));
        }
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn rejects_sparse_ids() {
        let range = ValueRange::new(0.0, 1.0, 1.0);
        ParamCatalog::new(vec![ParamDef {
            id: ParamId(3),
            name: "x".into(),
            kind: ParamKind::Singular,
            function: ParamFunction::Mobility,
            range,
            default: 0,
        }]);
    }
}
