//! Carrier attributes (Table 1 of the paper).
//!
//! An *attribute* describes a carrier: its frequency, type, morphology,
//! channel bandwidth, hardware configuration, market, vendor, software
//! version, and so on. Attributes are the *predictors* of the recommendation
//! problem — Auric learns which attributes each configuration parameter
//! depends on and matches new carriers to existing ones on those attributes.
//!
//! Every attribute is categorical. A carrier stores one *level index* per
//! attribute ([`AttrVec`]); the [`AttributeSchema`] maps those indices back
//! to human-readable level names for explanations and reports, and records
//! whether the attribute is static (never changes for a carrier) or dynamic
//! (drifts slowly over time, e.g. software version).

use serde::{Deserialize, Serialize};

/// Index of an attribute column in the [`AttributeSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u8);

impl AttrId {
    /// The dense column index of this attribute.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AttrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Attr#{}", self.0)
    }
}

/// A categorical level index for one attribute (e.g. "urban" might be level
/// 0 of the morphology attribute).
pub type AttrValue = u16;

/// Definition of one attribute: its name, whether it is dynamic, and the
/// names of its categorical levels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrDef {
    /// Human-readable attribute name, e.g. `"morphology"`.
    pub name: String,
    /// Dynamic attributes can slowly change over a carrier's lifetime
    /// (software version, neighbor count); static ones cannot.
    pub dynamic: bool,
    /// Names of the categorical levels. A carrier's value for this
    /// attribute is an index into this vector.
    pub levels: Vec<String>,
}

impl AttrDef {
    /// Number of categorical levels.
    pub fn cardinality(&self) -> usize {
        self.levels.len()
    }
}

/// The full attribute schema: an ordered list of [`AttrDef`]s.
///
/// The order defines the meaning of positions in every [`AttrVec`] in the
/// snapshot, and the order of one-hot blocks in encoded feature matrices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct AttributeSchema {
    defs: Vec<AttrDef>,
}

impl AttributeSchema {
    /// Creates a schema from a list of attribute definitions.
    ///
    /// # Panics
    /// Panics if two attributes share a name or any attribute has no levels.
    pub fn new(defs: Vec<AttrDef>) -> Self {
        for (i, d) in defs.iter().enumerate() {
            assert!(!d.levels.is_empty(), "attribute {:?} has no levels", d.name);
            assert!(
                defs[..i].iter().all(|e| e.name != d.name),
                "duplicate attribute name {:?}",
                d.name
            );
        }
        Self { defs }
    }

    /// Number of attributes (the `A` of the paper's notation).
    pub fn n_attrs(&self) -> usize {
        self.defs.len()
    }

    /// All attribute ids, in column order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.defs.len()).map(|i| AttrId(i as u8))
    }

    /// The definition of attribute `a`.
    pub fn def(&self, a: AttrId) -> &AttrDef {
        &self.defs[a.index()]
    }

    /// All definitions in column order.
    pub fn defs(&self) -> &[AttrDef] {
        &self.defs
    }

    /// Cardinality (number of levels) of attribute `a`.
    pub fn cardinality(&self, a: AttrId) -> usize {
        self.defs[a.index()].cardinality()
    }

    /// Cardinality of attribute `a` as the level type — the per-position
    /// radix a packed vote-key layout is built from. Attribute levels are
    /// `u16` indices, so every cardinality fits.
    #[inline]
    pub fn radix(&self, a: AttrId) -> AttrValue {
        let card = self.cardinality(a);
        debug_assert!(
            card <= AttrValue::MAX as usize,
            "cardinality overflows the level type"
        );
        card as AttrValue
    }

    /// Looks up an attribute by name.
    pub fn by_name(&self, name: &str) -> Option<AttrId> {
        self.defs
            .iter()
            .position(|d| d.name == name)
            .map(|i| AttrId(i as u8))
    }

    /// The display name of level `v` of attribute `a`.
    pub fn level_name(&self, a: AttrId, v: AttrValue) -> &str {
        &self.defs[a.index()].levels[v as usize]
    }

    /// Total width of a one-hot encoding of the whole schema (the sum of
    /// all cardinalities). This is the input dimension of the MLP learner.
    pub fn one_hot_width(&self) -> usize {
        self.defs.iter().map(AttrDef::cardinality).sum()
    }

    /// Checks that `vec` has one in-range level per attribute.
    pub fn validate(&self, vec: &AttrVec) -> Result<(), String> {
        if vec.len() != self.n_attrs() {
            return Err(format!(
                "attribute vector has {} entries, schema has {}",
                vec.len(),
                self.n_attrs()
            ));
        }
        for a in self.attr_ids() {
            let v = vec.get(a);
            let card = self.cardinality(a) as AttrValue;
            if v >= card {
                return Err(format!(
                    "attribute {:?} value {} out of range (cardinality {})",
                    self.def(a).name,
                    v,
                    card
                ));
            }
        }
        Ok(())
    }
}

/// A carrier's attribute values: one level index per schema attribute
/// (the row `X_{j,*}` of the paper's predictor matrix).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttrVec(Box<[AttrValue]>);

impl AttrVec {
    /// Creates an attribute vector from per-attribute level indices.
    pub fn new(values: Vec<AttrValue>) -> Self {
        Self(values.into_boxed_slice())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The level of attribute `a`.
    #[inline]
    pub fn get(&self, a: AttrId) -> AttrValue {
        self.0[a.index()]
    }

    /// Replaces the level of attribute `a` (used by the generator for
    /// dynamic attributes such as software version drift).
    pub fn set(&mut self, a: AttrId, v: AttrValue) {
        self.0[a.index()] = v;
    }

    /// Raw slice of level indices in schema column order.
    pub fn as_slice(&self) -> &[AttrValue] {
        &self.0
    }

    /// Projects this vector onto a subset of attributes, producing the
    /// exact-match key used by the collaborative-filtering voter.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<AttrValue> {
        attrs.iter().map(|&a| self.get(a)).collect()
    }

    /// Allocation-reusing companion to [`AttrVec::project`]: writes the
    /// projection into `out` (cleared first). Hot loops that compare many
    /// projected keys can keep one scratch buffer alive instead of
    /// allocating per carrier.
    pub fn project_into(&self, attrs: &[AttrId], out: &mut Vec<AttrValue>) {
        out.clear();
        out.extend(attrs.iter().map(|&a| self.get(a)));
    }
}

/// Builds the canonical Table-1 schema skeleton: the 14 attribute names and
/// static/dynamic flags from the paper, with level names supplied by the
/// caller (the generator decides how many frequencies, markets, software
/// versions, ... the synthetic network has).
///
/// The returned closure-style builder keeps `AttributeSchema::new`'s
/// invariants in one place.
pub fn table1_schema(levels: Table1Levels) -> AttributeSchema {
    let l = levels;
    AttributeSchema::new(vec![
        AttrDef {
            name: "carrier_frequency".into(),
            dynamic: false,
            levels: l.carrier_frequency,
        },
        AttrDef {
            name: "carrier_type".into(),
            dynamic: false,
            levels: l.carrier_type,
        },
        AttrDef {
            name: "carrier_information".into(),
            dynamic: false,
            levels: l.carrier_information,
        },
        AttrDef {
            name: "morphology".into(),
            dynamic: false,
            levels: l.morphology,
        },
        AttrDef {
            name: "channel_bandwidth".into(),
            dynamic: false,
            levels: l.channel_bandwidth,
        },
        AttrDef {
            name: "downlink_mimo_mode".into(),
            dynamic: false,
            levels: l.downlink_mimo_mode,
        },
        AttrDef {
            name: "hardware_configuration".into(),
            dynamic: false,
            levels: l.hardware_configuration,
        },
        AttrDef {
            name: "expected_cell_size".into(),
            dynamic: false,
            levels: l.expected_cell_size,
        },
        AttrDef {
            name: "tracking_area_code".into(),
            dynamic: false,
            levels: l.tracking_area_code,
        },
        AttrDef {
            name: "market".into(),
            dynamic: false,
            levels: l.market,
        },
        AttrDef {
            name: "vendor".into(),
            dynamic: false,
            levels: l.vendor,
        },
        AttrDef {
            name: "neighbor_channel".into(),
            dynamic: false,
            levels: l.neighbor_channel,
        },
        AttrDef {
            name: "neighbors_same_enodeb".into(),
            dynamic: true,
            levels: l.neighbors_same_enodeb,
        },
        AttrDef {
            name: "software_version".into(),
            dynamic: true,
            levels: l.software_version,
        },
    ])
}

/// Level names for each Table-1 attribute, supplied by the generator.
#[derive(Debug, Clone, Default)]
pub struct Table1Levels {
    pub carrier_frequency: Vec<String>,
    pub carrier_type: Vec<String>,
    pub carrier_information: Vec<String>,
    pub morphology: Vec<String>,
    pub channel_bandwidth: Vec<String>,
    pub downlink_mimo_mode: Vec<String>,
    pub hardware_configuration: Vec<String>,
    pub expected_cell_size: Vec<String>,
    pub tracking_area_code: Vec<String>,
    pub market: Vec<String>,
    pub vendor: Vec<String>,
    pub neighbor_channel: Vec<String>,
    pub neighbors_same_enodeb: Vec<String>,
    pub software_version: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_schema() -> AttributeSchema {
        AttributeSchema::new(vec![
            AttrDef {
                name: "morphology".into(),
                dynamic: false,
                levels: vec!["urban".into(), "suburban".into(), "rural".into()],
            },
            AttrDef {
                name: "band".into(),
                dynamic: false,
                levels: vec!["low".into(), "mid".into(), "high".into()],
            },
        ])
    }

    #[test]
    fn schema_lookup() {
        let s = small_schema();
        assert_eq!(s.n_attrs(), 2);
        assert_eq!(s.by_name("band"), Some(AttrId(1)));
        assert_eq!(s.by_name("nope"), None);
        assert_eq!(s.level_name(AttrId(0), 2), "rural");
        assert_eq!(s.one_hot_width(), 6);
    }

    #[test]
    fn validate_catches_out_of_range() {
        let s = small_schema();
        assert!(s.validate(&AttrVec::new(vec![0, 2])).is_ok());
        assert!(s.validate(&AttrVec::new(vec![3, 0])).is_err());
        assert!(s.validate(&AttrVec::new(vec![0])).is_err());
    }

    #[test]
    fn project_builds_match_key() {
        let v = AttrVec::new(vec![2, 1]);
        assert_eq!(v.project(&[AttrId(1)]), vec![1]);
        assert_eq!(v.project(&[AttrId(1), AttrId(0)]), vec![1, 2]);
        assert_eq!(v.project(&[]), Vec::<AttrValue>::new());
    }

    #[test]
    fn project_into_reuses_the_buffer() {
        let v = AttrVec::new(vec![2, 1]);
        let mut buf = Vec::with_capacity(2);
        v.project_into(&[AttrId(1), AttrId(0)], &mut buf);
        assert_eq!(buf, vec![1, 2]);
        v.project_into(&[AttrId(0)], &mut buf);
        assert_eq!(buf, vec![2], "buffer is cleared between projections");
    }

    #[test]
    fn radix_is_the_cardinality_as_a_level() {
        let s = small_schema();
        assert_eq!(s.radix(AttrId(0)), 3);
        assert_eq!(s.radix(AttrId(1)) as usize, s.cardinality(AttrId(1)));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn rejects_duplicate_names() {
        AttributeSchema::new(vec![
            AttrDef {
                name: "x".into(),
                dynamic: false,
                levels: vec!["a".into()],
            },
            AttrDef {
                name: "x".into(),
                dynamic: false,
                levels: vec!["b".into()],
            },
        ]);
    }

    #[test]
    fn table1_has_fourteen_attributes() {
        let mk = |n: usize, p: &str| (0..n).map(|i| format!("{p}{i}")).collect::<Vec<_>>();
        let schema = table1_schema(Table1Levels {
            carrier_frequency: mk(4, "f"),
            carrier_type: mk(3, "t"),
            carrier_information: mk(3, "i"),
            morphology: mk(3, "m"),
            channel_bandwidth: mk(3, "b"),
            downlink_mimo_mode: mk(2, "mm"),
            hardware_configuration: mk(3, "h"),
            expected_cell_size: mk(4, "s"),
            tracking_area_code: mk(20, "tac"),
            market: mk(28, "mkt"),
            vendor: mk(3, "v"),
            neighbor_channel: mk(8, "nc"),
            neighbors_same_enodeb: mk(12, "n"),
            software_version: mk(4, "sw"),
        });
        assert_eq!(schema.n_attrs(), 14);
        assert_eq!(
            schema.defs().iter().filter(|d| d.dynamic).count(),
            2,
            "software version and same-eNodeB neighbor count are dynamic"
        );
        assert!(schema.by_name("market").is_some());
    }
}
