//! The configuration store: one value per (parameter, carrier) and per
//! (parameter, carrier-pair), plus *provenance*.
//!
//! Provenance records **why** a ground-truth value is what it is. The real
//! network's values come from rule-books, deliberate local tuning, trial
//! roll-outs and occasional mistakes; the paper's engineers reverse-engineer
//! these causes when labeling Auric's mismatches (§4.3.3 / Fig. 12). Our
//! synthetic generator knows the causes exactly, so the evaluation can
//! reproduce that labeling without a human in the loop.

use crate::ids::{CarrierId, ParamId};
use crate::params::{ParamCatalog, ParamKind, ValueIdx};
pub use crate::x2::PairIdx;
use serde::{Deserialize, Serialize};

/// Why a ground-truth configuration value has the value it has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// The engineering rule for this carrier's attribute combination.
    Rule,
    /// A deliberate local tuning pocket: a geographic cluster of carriers
    /// whose engineers tuned this parameter away from the rule value.
    /// `hidden_attribute` marks pockets driven by a factor *not present in
    /// the attribute schema* (terrain, signal propagation) — the cause the
    /// paper's engineers label "update learner".
    Pocket {
        /// True when the pocket's cause is unobservable to the learner.
        hidden_attribute: bool,
    },
    /// A sub-optimal leftover from an abandoned trial; the carrier should
    /// have been reverted to the rule value. When Auric's recommendation
    /// disagrees with this value, the recommendation is the *better*
    /// configuration (the paper's 28% "good recommendation" label).
    StaleTrial,
    /// Part of an ongoing certification trial for a network-wide roll-out;
    /// deliberately not in the majority yet ("update learner" cause (ii)).
    TrialInProgress,
    /// A one-off manual error or experiment with no systematic cause.
    Noise,
}

/// Where a stored value lives: resolves a [`ParamId`] to the dense row of
/// its kind-specific table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Singular(usize),
    Pairwise(usize),
}

/// Configuration values (and provenance) for every parameter of a network
/// snapshot.
///
/// Values are stored column-major per parameter: singular parameters hold
/// one [`ValueIdx`] per carrier, pair-wise parameters one per directed X2
/// pair. The struct is created filled with rule-book defaults and mutated
/// by the generator (or by the EMS when pushing recommended changes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    n_carriers: usize,
    n_pairs: usize,
    /// `slots[p]` locates parameter `p`'s row.
    slots: Vec<(ParamKind, usize)>,
    singular_values: Vec<Vec<ValueIdx>>,
    pairwise_values: Vec<Vec<ValueIdx>>,
    singular_prov: Vec<Vec<Provenance>>,
    pairwise_prov: Vec<Vec<Provenance>>,
}

impl Configuration {
    /// Creates a configuration for `n_carriers` carriers and `n_pairs`
    /// directed X2 pairs, with every value set to the catalog default and
    /// provenance [`Provenance::Rule`].
    pub fn with_defaults(catalog: &ParamCatalog, n_carriers: usize, n_pairs: usize) -> Self {
        let mut slots = Vec::with_capacity(catalog.len());
        let mut singular_values = Vec::new();
        let mut pairwise_values = Vec::new();
        let mut singular_prov = Vec::new();
        let mut pairwise_prov = Vec::new();
        for def in catalog.defs() {
            match def.kind {
                ParamKind::Singular => {
                    slots.push((ParamKind::Singular, singular_values.len()));
                    singular_values.push(vec![def.default; n_carriers]);
                    singular_prov.push(vec![Provenance::Rule; n_carriers]);
                }
                ParamKind::Pairwise => {
                    slots.push((ParamKind::Pairwise, pairwise_values.len()));
                    pairwise_values.push(vec![def.default; n_pairs]);
                    pairwise_prov.push(vec![Provenance::Rule; n_pairs]);
                }
            }
        }
        Self {
            n_carriers,
            n_pairs,
            slots,
            singular_values,
            pairwise_values,
            singular_prov,
            pairwise_prov,
        }
    }

    fn slot(&self, p: ParamId) -> Slot {
        match self.slots[p.index()] {
            (ParamKind::Singular, row) => Slot::Singular(row),
            (ParamKind::Pairwise, row) => Slot::Pairwise(row),
        }
    }

    /// Number of carriers this configuration covers.
    pub fn n_carriers(&self) -> usize {
        self.n_carriers
    }

    /// Number of directed pairs this configuration covers.
    pub fn n_pairs(&self) -> usize {
        self.n_pairs
    }

    /// Kind of parameter `p` as recorded at construction.
    pub fn kind(&self, p: ParamId) -> ParamKind {
        self.slots[p.index()].0
    }

    /// Total number of stored configuration parameter values — the paper's
    /// "15M+ parameter values" quantity (§4.1): singular parameters
    /// contribute one value per carrier, pair-wise one per directed pair.
    pub fn total_values(&self) -> usize {
        self.singular_values.len() * self.n_carriers + self.pairwise_values.len() * self.n_pairs
    }

    /// The value of singular parameter `p` on carrier `c`.
    ///
    /// # Panics
    /// Panics if `p` is pair-wise.
    pub fn value(&self, p: ParamId, c: CarrierId) -> ValueIdx {
        match self.slot(p) {
            Slot::Singular(row) => self.singular_values[row][c.index()],
            Slot::Pairwise(_) => panic!("{p} is pair-wise; use pair_value"),
        }
    }

    /// The value of pair-wise parameter `p` on directed pair `q`.
    ///
    /// # Panics
    /// Panics if `p` is singular.
    pub fn pair_value(&self, p: ParamId, q: PairIdx) -> ValueIdx {
        match self.slot(p) {
            Slot::Pairwise(row) => self.pairwise_values[row][q as usize],
            Slot::Singular(_) => panic!("{p} is singular; use value"),
        }
    }

    /// Provenance of singular parameter `p` on carrier `c`.
    pub fn provenance(&self, p: ParamId, c: CarrierId) -> Provenance {
        match self.slot(p) {
            Slot::Singular(row) => self.singular_prov[row][c.index()],
            Slot::Pairwise(_) => panic!("{p} is pair-wise; use pair_provenance"),
        }
    }

    /// Provenance of pair-wise parameter `p` on pair `q`.
    pub fn pair_provenance(&self, p: ParamId, q: PairIdx) -> Provenance {
        match self.slot(p) {
            Slot::Pairwise(row) => self.pairwise_prov[row][q as usize],
            Slot::Singular(_) => panic!("{p} is singular; use provenance"),
        }
    }

    /// Sets singular parameter `p` on carrier `c`.
    pub fn set_value(&mut self, p: ParamId, c: CarrierId, v: ValueIdx, why: Provenance) {
        match self.slot(p) {
            Slot::Singular(row) => {
                self.singular_values[row][c.index()] = v;
                self.singular_prov[row][c.index()] = why;
            }
            Slot::Pairwise(_) => panic!("{p} is pair-wise; use set_pair_value"),
        }
    }

    /// Sets pair-wise parameter `p` on pair `q`.
    pub fn set_pair_value(&mut self, p: ParamId, q: PairIdx, v: ValueIdx, why: Provenance) {
        match self.slot(p) {
            Slot::Pairwise(row) => {
                self.pairwise_values[row][q as usize] = v;
                self.pairwise_prov[row][q as usize] = why;
            }
            Slot::Singular(_) => panic!("{p} is singular; use set_value"),
        }
    }

    /// All values of singular parameter `p`, indexed by carrier.
    pub fn values_of(&self, p: ParamId) -> &[ValueIdx] {
        match self.slot(p) {
            Slot::Singular(row) => &self.singular_values[row],
            Slot::Pairwise(_) => panic!("{p} is pair-wise; use pair_values_of"),
        }
    }

    /// All values of pair-wise parameter `p`, indexed by pair.
    pub fn pair_values_of(&self, p: ParamId) -> &[ValueIdx] {
        match self.slot(p) {
            Slot::Pairwise(row) => &self.pairwise_values[row],
            Slot::Singular(_) => panic!("{p} is singular; use values_of"),
        }
    }

    /// Appends one carrier slot to every singular parameter, filled with
    /// the catalog default and [`Provenance::Rule`]. Delta-ingestion
    /// plumbing: the caller overwrites the defaults with the carrier's
    /// actual base values via [`Configuration::set_value`].
    pub fn push_carrier(&mut self, catalog: &ParamCatalog) {
        for def in catalog.defs() {
            if def.kind == ParamKind::Singular {
                let (_, row) = self.slots[def.id.index()];
                self.singular_values[row].push(def.default);
                self.singular_prov[row].push(Provenance::Rule);
            }
        }
        self.n_carriers += 1;
    }

    /// Drops the last carrier slot from every singular parameter (LIFO
    /// removal — carrier ids are dense indices, so only the tail carrier
    /// can leave).
    ///
    /// # Panics
    /// Panics if the configuration covers no carriers.
    pub fn pop_carrier(&mut self) {
        assert!(self.n_carriers > 0, "pop_carrier on an empty configuration");
        self.n_carriers -= 1;
        for row in &mut self.singular_values {
            row.truncate(self.n_carriers);
        }
        for row in &mut self.singular_prov {
            row.truncate(self.n_carriers);
        }
    }

    /// Re-indexes every pair-wise parameter after the X2 pair list changed
    /// shape: `map[old]` is the new index of old pair `old` (`None` if the
    /// pair was dropped). Slots not in `map`'s image are new pairs, filled
    /// with the catalog default and [`Provenance::Rule`] for the caller to
    /// overwrite.
    ///
    /// # Panics
    /// Panics if `map`'s length differs from the current pair count or a
    /// target index is out of range.
    pub fn remap_pairs(&mut self, catalog: &ParamCatalog, map: &[Option<PairIdx>], n_pairs: usize) {
        assert_eq!(map.len(), self.n_pairs, "pair remap length mismatch");
        for def in catalog.defs() {
            if def.kind != ParamKind::Pairwise {
                continue;
            }
            let (_, row) = self.slots[def.id.index()];
            let mut values = vec![def.default; n_pairs];
            let mut prov = vec![Provenance::Rule; n_pairs];
            for (old, &target) in map.iter().enumerate() {
                if let Some(new) = target {
                    values[new as usize] = self.pairwise_values[row][old];
                    prov[new as usize] = self.pairwise_prov[row][old];
                }
            }
            self.pairwise_values[row] = values;
            self.pairwise_prov[row] = prov;
        }
        self.n_pairs = n_pairs;
    }

    /// Number of distinct values parameter `p` takes over a subset of its
    /// value slots (a market, or the whole network) — the paper's
    /// *variability* measure (Fig. 2/3).
    pub fn distinct_values<I: IntoIterator<Item = usize>>(&self, p: ParamId, slots: I) -> usize {
        let values: &[ValueIdx] = match self.slot(p) {
            Slot::Singular(row) => &self.singular_values[row],
            Slot::Pairwise(row) => &self.pairwise_values[row],
        };
        let mut seen = std::collections::HashSet::new();
        for s in slots {
            seen.insert(values[s]);
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ParamDef, ParamFunction, ValueRange};

    fn tiny_catalog() -> ParamCatalog {
        let range = ValueRange::new(0.0, 10.0, 1.0);
        ParamCatalog::new(vec![
            ParamDef {
                id: ParamId(0),
                name: "s0".into(),
                kind: ParamKind::Singular,
                function: ParamFunction::Mobility,
                range,
                default: 5,
            },
            ParamDef {
                id: ParamId(1),
                name: "p0".into(),
                kind: ParamKind::Pairwise,
                function: ParamFunction::Handover,
                range,
                default: 2,
            },
            ParamDef {
                id: ParamId(2),
                name: "s1".into(),
                kind: ParamKind::Singular,
                function: ParamFunction::PowerControl,
                range,
                default: 0,
            },
        ])
    }

    #[test]
    fn defaults_fill_every_slot() {
        let cfg = Configuration::with_defaults(&tiny_catalog(), 4, 6);
        assert_eq!(cfg.value(ParamId(0), CarrierId(3)), 5);
        assert_eq!(cfg.pair_value(ParamId(1), 5), 2);
        assert_eq!(cfg.value(ParamId(2), CarrierId(0)), 0);
        assert_eq!(cfg.provenance(ParamId(0), CarrierId(0)), Provenance::Rule);
        assert_eq!(cfg.total_values(), 2 * 4 + 6);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut cfg = Configuration::with_defaults(&tiny_catalog(), 4, 6);
        cfg.set_value(ParamId(0), CarrierId(1), 9, Provenance::StaleTrial);
        cfg.set_pair_value(ParamId(1), 2, 7, Provenance::Noise);
        assert_eq!(cfg.value(ParamId(0), CarrierId(1)), 9);
        assert_eq!(
            cfg.provenance(ParamId(0), CarrierId(1)),
            Provenance::StaleTrial
        );
        assert_eq!(cfg.pair_value(ParamId(1), 2), 7);
        assert_eq!(cfg.pair_provenance(ParamId(1), 2), Provenance::Noise);
        // Untouched slots keep defaults.
        assert_eq!(cfg.value(ParamId(0), CarrierId(0)), 5);
    }

    #[test]
    fn distinct_value_counting() {
        let mut cfg = Configuration::with_defaults(&tiny_catalog(), 5, 0);
        cfg.set_value(ParamId(0), CarrierId(0), 1, Provenance::Rule);
        cfg.set_value(ParamId(0), CarrierId(1), 1, Provenance::Rule);
        cfg.set_value(ParamId(0), CarrierId(2), 3, Provenance::Rule);
        assert_eq!(cfg.distinct_values(ParamId(0), 0..5), 3, "{{1, 3, 5}}");
        assert_eq!(cfg.distinct_values(ParamId(0), 0..2), 1);
        assert_eq!(cfg.distinct_values(ParamId(0), std::iter::empty()), 0);
    }

    #[test]
    #[should_panic(expected = "is pair-wise")]
    fn kind_mismatch_panics() {
        let cfg = Configuration::with_defaults(&tiny_catalog(), 2, 2);
        cfg.value(ParamId(1), CarrierId(0));
    }

    #[test]
    fn push_and_pop_carrier_slots() {
        let catalog = tiny_catalog();
        let mut cfg = Configuration::with_defaults(&catalog, 2, 0);
        cfg.push_carrier(&catalog);
        assert_eq!(cfg.n_carriers(), 3);
        assert_eq!(cfg.value(ParamId(0), CarrierId(2)), 5, "catalog default");
        assert_eq!(cfg.provenance(ParamId(0), CarrierId(2)), Provenance::Rule);
        cfg.set_value(ParamId(2), CarrierId(2), 7, Provenance::Noise);
        cfg.pop_carrier();
        assert_eq!(cfg.n_carriers(), 2);
        cfg.push_carrier(&catalog);
        assert_eq!(
            cfg.value(ParamId(2), CarrierId(2)),
            0,
            "popped slot re-filled with defaults"
        );
    }

    #[test]
    fn remap_pairs_moves_values_and_fills_new_slots() {
        let catalog = tiny_catalog();
        let mut cfg = Configuration::with_defaults(&catalog, 2, 2);
        cfg.set_pair_value(ParamId(1), 0, 9, Provenance::StaleTrial);
        cfg.set_pair_value(ParamId(1), 1, 8, Provenance::Noise);
        // Old pair 0 -> new 2, old pair 1 dropped, new pairs 0/1/3 default.
        cfg.remap_pairs(&catalog, &[Some(2), None], 4);
        assert_eq!(cfg.n_pairs(), 4);
        assert_eq!(cfg.pair_value(ParamId(1), 2), 9);
        assert_eq!(cfg.pair_provenance(ParamId(1), 2), Provenance::StaleTrial);
        for q in [0, 1, 3] {
            assert_eq!(cfg.pair_value(ParamId(1), q), 2, "catalog default");
            assert_eq!(cfg.pair_provenance(ParamId(1), q), Provenance::Rule);
        }
    }

    #[test]
    fn kind_accessor() {
        let cfg = Configuration::with_defaults(&tiny_catalog(), 2, 2);
        assert_eq!(cfg.kind(ParamId(0)), ParamKind::Singular);
        assert_eq!(cfg.kind(ParamId(1)), ParamKind::Pairwise);
    }
}
