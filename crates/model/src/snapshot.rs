//! The network snapshot: everything Auric sees about the operational
//! network at one point in time.

use crate::attrs::AttributeSchema;
use crate::carrier::{Carrier, Enodeb, Market};
use crate::config::Configuration;
use crate::ids::{CarrierId, MarketId};
use crate::params::ParamCatalog;
use crate::x2::{PairIdx, X2Graph};
use serde::{Deserialize, Serialize};

/// A complete, self-consistent view of the network: topology, attributes,
/// X2 relations, and the current configuration with provenance.
///
/// This is the input to every learner and every experiment. The generator
/// (`auric-netgen`) produces it; consumers treat it as immutable except the
/// EMS controller, which applies recommended changes to `config`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkSnapshot {
    pub schema: AttributeSchema,
    pub catalog: ParamCatalog,
    pub markets: Vec<Market>,
    pub enodebs: Vec<Enodeb>,
    pub carriers: Vec<Carrier>,
    pub x2: X2Graph,
    pub config: Configuration,
}

impl NetworkSnapshot {
    /// Number of carriers (the paper's `N`).
    pub fn n_carriers(&self) -> usize {
        self.carriers.len()
    }

    /// The carrier with id `c`.
    pub fn carrier(&self, c: CarrierId) -> &Carrier {
        &self.carriers[c.index()]
    }

    /// The market with id `m`.
    pub fn market(&self, m: MarketId) -> &Market {
        &self.markets[m.index()]
    }

    /// Carrier ids belonging to market `m`.
    pub fn carriers_in_market(&self, m: MarketId) -> &[CarrierId] {
        &self.markets[m.index()].carriers
    }

    /// Directed X2 pair indices whose *source* carrier is in market `m`.
    pub fn pairs_in_market(&self, m: MarketId) -> Vec<PairIdx> {
        let mut out = Vec::new();
        for &c in self.carriers_in_market(m) {
            out.extend(self.x2.pairs_from(c));
        }
        out
    }

    /// Per-market dataset summary — the columns of Table 3.
    ///
    /// The paper's "Parameters" column counts ≈ 38–39 values per carrier
    /// (e.g. Market 1: 930,481 / 24,271 ≈ 38.3), i.e. the *singular*
    /// predictees; likewise §4.1's "15M+" ≈ 39 × 400K. We therefore report
    /// the singular count as the headline `parameter_values` and expose the
    /// per-directed-pair pairwise count separately.
    pub fn market_stats(&self, m: MarketId) -> MarketStats {
        let market = self.market(m);
        let n_singular = self.catalog.singular_ids().count();
        let n_pairwise = self.catalog.pairwise_ids().count();
        let n_pairs: usize = market.carriers.iter().map(|&c| self.x2.degree(c)).sum();
        MarketStats {
            market: m,
            carriers: market.carriers.len(),
            enodebs: market.enodebs.len(),
            parameter_values: n_singular * market.carriers.len(),
            pairwise_values: n_pairwise * n_pairs,
        }
    }

    /// Checks cross-collection consistency. The generator calls this after
    /// building; tests lean on it heavily.
    pub fn validate(&self) -> Result<(), String> {
        if self.x2.n_carriers() != self.carriers.len() {
            return Err("X2 graph size != carrier count".into());
        }
        if self.config.n_carriers() != self.carriers.len() {
            return Err("configuration size != carrier count".into());
        }
        if self.config.n_pairs() != self.x2.n_pairs() {
            return Err("configuration pair count != X2 pair count".into());
        }
        self.x2.validate()?;
        for (i, carrier) in self.carriers.iter().enumerate() {
            if carrier.id.index() != i {
                return Err(format!("carrier {i} has id {}", carrier.id));
            }
            self.schema.validate(&carrier.attrs)?;
            let enb = &self.enodebs[carrier.enodeb.index()];
            if enb.market != carrier.market {
                return Err(format!("{} market disagrees with its eNodeB", carrier.id));
            }
            if !enb.carriers.contains(&carrier.id) {
                return Err(format!("{} missing from its eNodeB's list", carrier.id));
            }
            if carrier.face >= 3 {
                return Err(format!("{} has face {} >= 3", carrier.id, carrier.face));
            }
        }
        for (i, enb) in self.enodebs.iter().enumerate() {
            if enb.id.index() != i {
                return Err(format!("eNodeB {i} has id {}", enb.id));
            }
            if !self.markets[enb.market.index()].enodebs.contains(&enb.id) {
                return Err(format!("{} missing from its market's list", enb.id));
            }
        }
        for (i, market) in self.markets.iter().enumerate() {
            if market.id.index() != i {
                return Err(format!("market {i} has id {}", market.id));
            }
            for &c in &market.carriers {
                if self.carriers[c.index()].market != market.id {
                    return Err(format!("{c} listed in wrong market"));
                }
            }
        }
        let listed: usize = self.markets.iter().map(|m| m.carriers.len()).sum();
        if listed != self.carriers.len() {
            return Err("markets do not partition the carriers".into());
        }
        // Values must lie on each parameter's grid.
        for def in self.catalog.defs() {
            let n = def.range.n_values();
            let values = match def.kind {
                crate::params::ParamKind::Singular => self.config.values_of(def.id),
                crate::params::ParamKind::Pairwise => self.config.pair_values_of(def.id),
            };
            if let Some(&bad) = values.iter().find(|&&v| (v as usize) >= n) {
                return Err(format!(
                    "parameter {} holds off-grid value index {bad}",
                    def.name
                ));
            }
        }
        Ok(())
    }
}

/// Dataset summary row for one market (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarketStats {
    pub market: MarketId,
    pub carriers: usize,
    pub enodebs: usize,
    /// Singular predictee count (the paper's "Parameters" column; ≈ 39 per
    /// carrier).
    pub parameter_values: usize,
    /// Pair-wise predictee count over directed X2 pairs sourced in this
    /// market (evaluated in addition; see snapshot docs).
    pub pairwise_values: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AttrDef, AttrVec, AttributeSchema};
    use crate::carrier::{Band, Carrier, Enodeb, Market, Morphology, Point, Timezone, Vendor};
    use crate::params::{ParamCatalog, ParamDef, ParamFunction, ParamKind, ValueRange};
    use crate::x2::X2Graph;
    use crate::ParamId;

    /// A hand-built minimal snapshot: one market, one eNodeB, two
    /// carriers, one X2 edge.
    fn tiny_snapshot() -> NetworkSnapshot {
        let schema = AttributeSchema::new(vec![AttrDef {
            name: "morphology".into(),
            dynamic: false,
            levels: vec!["urban".into(), "rural".into()],
        }]);
        let catalog = ParamCatalog::new(vec![
            ParamDef {
                id: ParamId(0),
                name: "s".into(),
                kind: ParamKind::Singular,
                function: ParamFunction::Mobility,
                range: ValueRange::new(0.0, 5.0, 1.0),
                default: 2,
            },
            ParamDef {
                id: ParamId(1),
                name: "p".into(),
                kind: ParamKind::Pairwise,
                function: ParamFunction::Handover,
                range: ValueRange::new(0.0, 5.0, 1.0),
                default: 1,
            },
        ]);
        let carriers = vec![
            Carrier {
                id: CarrierId(0),
                enodeb: crate::EnodebId(0),
                market: MarketId(0),
                face: 0,
                band: Band::Low,
                attrs: AttrVec::new(vec![0]),
            },
            Carrier {
                id: CarrierId(1),
                enodeb: crate::EnodebId(0),
                market: MarketId(0),
                face: 1,
                band: Band::Low,
                attrs: AttrVec::new(vec![1]),
            },
        ];
        let enodebs = vec![Enodeb {
            id: crate::EnodebId(0),
            market: MarketId(0),
            position: Point { x: 0.0, y: 0.0 },
            morphology: Morphology::Urban,
            vendor: Vendor::VendorA,
            carriers: vec![CarrierId(0), CarrierId(1)],
        }];
        let markets = vec![Market {
            id: MarketId(0),
            name: "Market 1".into(),
            timezone: Timezone::Eastern,
            carriers: vec![CarrierId(0), CarrierId(1)],
            enodebs: vec![crate::EnodebId(0)],
        }];
        let x2 = X2Graph::from_edges(2, &[(CarrierId(0), CarrierId(1))]);
        let config = Configuration::with_defaults(&catalog, 2, x2.n_pairs());
        NetworkSnapshot {
            schema,
            catalog,
            markets,
            enodebs,
            carriers,
            x2,
            config,
        }
    }

    #[test]
    fn hand_built_snapshot_validates() {
        let snap = tiny_snapshot();
        snap.validate().unwrap();
        let stats = snap.market_stats(MarketId(0));
        assert_eq!(stats.carriers, 2);
        assert_eq!(stats.enodebs, 1);
        assert_eq!(stats.parameter_values, 2, "1 singular × 2 carriers");
        assert_eq!(stats.pairwise_values, 2, "1 pair-wise × 2 directed pairs");
    }

    #[test]
    fn validation_catches_wrong_market_membership() {
        let mut snap = tiny_snapshot();
        snap.carriers[1].market = MarketId(0); // fine
        snap.markets[0].carriers = vec![CarrierId(0)]; // drop carrier 1
        assert!(snap.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_attributes() {
        let mut snap = tiny_snapshot();
        snap.carriers[0].attrs = AttrVec::new(vec![9]); // out of range
        assert!(snap.validate().is_err());
    }

    #[test]
    fn validation_catches_face_overflow() {
        let mut snap = tiny_snapshot();
        snap.carriers[0].face = 3;
        assert!(snap.validate().is_err());
    }

    #[test]
    fn pairs_in_market_covers_both_directions() {
        let snap = tiny_snapshot();
        assert_eq!(snap.pairs_in_market(MarketId(0)).len(), 2);
    }
}
