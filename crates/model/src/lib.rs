//! Domain model for the Auric reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: markets, eNodeBs, faces, carriers, the carrier *attribute*
//! schema of Table 1 of the paper, the catalog of 65 range configuration
//! parameters (39 singular + 26 pair-wise), the X2 neighbor-relation graph
//! used for geographic proximity, and the configuration store that holds a
//! value (plus its *provenance*, used for the Fig. 12 mismatch labeling) for
//! every (parameter, carrier) and (parameter, carrier-pair) combination.
//!
//! Nothing in this crate generates data or learns anything; it is the typed
//! substrate the generator (`auric-netgen`), the recommender (`auric-core`)
//! and the deployment simulator (`auric-ems`) all build on.

pub mod arena;
pub mod attrs;
pub mod carrier;
pub mod config;
pub mod delta;
pub mod ids;
pub mod params;
pub mod snapshot;
pub mod x2;

pub use arena::AttrArena;
pub use attrs::{AttrDef, AttrId, AttrValue, AttrVec, AttributeSchema};
pub use carrier::{Band, Carrier, Enodeb, Market, Morphology, Point, Timezone, Vendor};
pub use config::{Configuration, PairIdx, Provenance};
pub use delta::{
    apply_fleet_deltas, empty_snapshot, AppliedBatch, AppliedRetune, DeltaError, DeltaSlot,
    FleetDelta, RemovedCarrier, RemovedPair,
};
pub use ids::{CarrierId, EnodebId, MarketId, ParamId};
pub use params::{ParamCatalog, ParamDef, ParamFunction, ParamKind, ValueIdx, ValueRange};
pub use snapshot::NetworkSnapshot;
pub use x2::X2Graph;
