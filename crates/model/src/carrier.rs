//! Physical network entities: markets, eNodeBs, and carriers (§2.1).
//!
//! An eNodeB divides its 360° coverage into 3 faces; each face hosts one or
//! more carriers (radio channels). Carriers operate in a low/mid/high
//! frequency band, and the service provider steers users to high bands
//! first (carrier layer management). Markets group the carriers managed by
//! one engineering team — the paper's network has 28 of them, each roughly
//! a US state.

use crate::attrs::AttrVec;
use crate::ids::{CarrierId, EnodebId, MarketId};
use serde::{Deserialize, Serialize};

/// LTE frequency band class of a carrier (§2.1: LB/MB/HB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Band {
    /// Low band (e.g. 700 MHz): broad reach, used as coverage layer.
    Low,
    /// Mid band (e.g. 1900 MHz).
    Mid,
    /// High band (e.g. 2300 MHz): capacity layer, users steered here first.
    High,
}

impl Band {
    /// All bands, low to high.
    pub const ALL: [Band; 3] = [Band::Low, Band::Mid, Band::High];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Band::Low => "LB",
            Band::Mid => "MB",
            Band::High => "HB",
        }
    }
}

/// Land-use morphology of the area a carrier serves (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Morphology {
    Urban,
    Suburban,
    Rural,
}

impl Morphology {
    /// All morphologies.
    pub const ALL: [Morphology; 3] = [Morphology::Urban, Morphology::Suburban, Morphology::Rural];

    /// Display label matching the paper's examples.
    pub fn label(self) -> &'static str {
        match self {
            Morphology::Urban => "urban",
            Morphology::Suburban => "suburban",
            Morphology::Rural => "rural",
        }
    }
}

/// Radio equipment vendor. Configuration naming is vendor-specific (§2.2),
/// so Auric formulates the recommendation problem per vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Vendor {
    VendorA,
    VendorB,
    VendorC,
}

impl Vendor {
    /// All vendors.
    pub const ALL: [Vendor; 3] = [Vendor::VendorA, Vendor::VendorB, Vendor::VendorC];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Vendor::VendorA => "VendorA",
            Vendor::VendorB => "VendorB",
            Vendor::VendorC => "VendorC",
        }
    }
}

/// US timezone of a market (Table 3 picks one market per timezone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Timezone {
    Eastern,
    Central,
    Mountain,
    Pacific,
}

impl Timezone {
    /// All timezones, east to west.
    pub const ALL: [Timezone; 4] = [
        Timezone::Eastern,
        Timezone::Central,
        Timezone::Mountain,
        Timezone::Pacific,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Timezone::Eastern => "Eastern",
            Timezone::Central => "Central",
            Timezone::Mountain => "Mountain",
            Timezone::Pacific => "Pacific",
        }
    }
}

/// A 2-D position in kilometres within a market's local coordinate frame.
///
/// The generator lays eNodeBs out on a plane per market; distances feed the
/// X2 neighbor-relation construction (geographic proximity, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other`, in km.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A market: the carriers managed by one engineering team.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Market {
    pub id: MarketId,
    /// Display name, e.g. `"Market 3"`.
    pub name: String,
    pub timezone: Timezone,
    /// Carriers belonging to this market, in id order.
    pub carriers: Vec<CarrierId>,
    /// eNodeBs belonging to this market, in id order.
    pub enodebs: Vec<EnodebId>,
}

/// An LTE base station with up to 3 faces of carriers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Enodeb {
    pub id: EnodebId,
    pub market: MarketId,
    /// Position within the market plane (km).
    pub position: Point,
    pub morphology: Morphology,
    pub vendor: Vendor,
    /// Carriers hosted on this eNodeB across all faces, in id order.
    pub carriers: Vec<CarrierId>,
}

/// A carrier: one radio channel on one face of an eNodeB. The unit both of
/// configuration and of recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Carrier {
    pub id: CarrierId,
    pub enodeb: EnodebId,
    pub market: MarketId,
    /// Face index on the eNodeB (0..3).
    pub face: u8,
    pub band: Band,
    /// Attribute values (the predictor row `X_{j,*}`).
    pub attrs: AttrVec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point { x: -1.5, y: 2.0 };
        let b = Point { x: 4.0, y: -0.5 };
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    #[test]
    fn enums_cover_paper_examples() {
        assert_eq!(Band::ALL.len(), 3);
        assert_eq!(Morphology::ALL.len(), 3);
        assert_eq!(Vendor::ALL.len(), 3);
        assert_eq!(Timezone::ALL.len(), 4);
        assert_eq!(Band::Low.label(), "LB");
        assert_eq!(Morphology::Urban.label(), "urban");
    }
}
