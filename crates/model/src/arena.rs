//! A shared, immutable, column-major view of the fleet's attributes.
//!
//! The CF fit runs one job per parameter, and every job needs the same
//! inputs: each carrier's attribute levels and the X2 pair endpoints.
//! Walking `snapshot.carriers` through per-carrier structs makes every job
//! chase `N` heap pointers per attribute read, and at paper scale (400K
//! carriers, 2.2M pairs, 65 jobs) that pointer soup is what turns the fit
//! memory-bound. The [`AttrArena`] is built **once**, before the worker
//! pool starts, and shared by reference: one dense `u16` column per
//! attribute plus two `u32` endpoint columns for the directed pair list.
//! Columns are `Arc` slices so derived structures (key-column caches,
//! learner datasets) can alias them without copying.
//!
//! The arena is a *view*: it never outlives the decisions made from the
//! snapshot and is not serialized.

use crate::attrs::{AttrId, AttrValue};
use crate::snapshot::NetworkSnapshot;
use crate::x2::PairIdx;
use std::sync::Arc;

/// Column-major carrier attributes plus the pair endpoint index.
///
/// `columns[a][c]` is attribute `a`'s level for carrier index `c` — the
/// transpose of the snapshot's row-major `carriers[c].attrs`. `pair_src[p]`
/// / `pair_dst[p]` are the carrier indices of directed pair `p`, in the
/// canonical [`crate::x2::X2Graph::pairs`] order.
#[derive(Debug, Clone)]
pub struct AttrArena {
    columns: Vec<Arc<[AttrValue]>>,
    pair_src: Arc<[u32]>,
    pair_dst: Arc<[u32]>,
}

impl AttrArena {
    /// Encodes `snapshot`'s carrier attributes and pair list into columns.
    ///
    /// One pass over the carriers fills all attribute columns; one pass
    /// over `x2.pairs()` fills the endpoint columns.
    pub fn from_snapshot(snapshot: &NetworkSnapshot) -> Self {
        let n_attrs = snapshot.schema.n_attrs();
        let n_carriers = snapshot.carriers.len();
        let mut columns: Vec<Vec<AttrValue>> = vec![Vec::with_capacity(n_carriers); n_attrs];
        for carrier in &snapshot.carriers {
            for (col, &v) in columns.iter_mut().zip(carrier.attrs.as_slice()) {
                col.push(v);
            }
        }
        let n_pairs = snapshot.x2.n_pairs();
        let mut pair_src = Vec::with_capacity(n_pairs);
        let mut pair_dst = Vec::with_capacity(n_pairs);
        for (_, j, k) in snapshot.x2.pairs() {
            pair_src.push(j.index() as u32);
            pair_dst.push(k.index() as u32);
        }
        Self {
            columns: columns.into_iter().map(Arc::from).collect(),
            pair_src: Arc::from(pair_src),
            pair_dst: Arc::from(pair_dst),
        }
    }

    /// Extends the arena in place to cover `snapshot` after a delta batch.
    ///
    /// Carrier attributes are immutable once added, so an attribute column
    /// whose length already matches is kept as the *same* `Arc` (zero
    /// copy — this is what makes incremental refits cheap); grown columns
    /// copy the old prefix and read only the appended carriers; shrunk
    /// columns truncate (LIFO removal). The pair endpoint columns are
    /// always rebuilt: edge changes re-index the whole CSR pair list.
    ///
    /// The caller must apply one delta batch at a time; a batch that both
    /// removes and re-adds a carrier id would invalidate the shared
    /// prefix (`apply_fleet_deltas` rejects such batches).
    pub fn append(&mut self, snapshot: &NetworkSnapshot) {
        let n_old = self.n_carriers();
        let n_new = snapshot.carriers.len();
        if n_new != n_old {
            let mut columns: Vec<Vec<AttrValue>> = self
                .columns
                .iter()
                .map(|col| {
                    let mut v = Vec::with_capacity(n_new);
                    v.extend_from_slice(&col[..n_old.min(n_new)]);
                    v
                })
                .collect();
            for carrier in &snapshot.carriers[n_old.min(n_new)..] {
                for (col, &v) in columns.iter_mut().zip(carrier.attrs.as_slice()) {
                    col.push(v);
                }
            }
            self.columns = columns.into_iter().map(Arc::from).collect();
        }
        let n_pairs = snapshot.x2.n_pairs();
        let mut pair_src = Vec::with_capacity(n_pairs);
        let mut pair_dst = Vec::with_capacity(n_pairs);
        for (_, j, k) in snapshot.x2.pairs() {
            pair_src.push(j.index() as u32);
            pair_dst.push(k.index() as u32);
        }
        self.pair_src = Arc::from(pair_src);
        self.pair_dst = Arc::from(pair_dst);
    }

    /// Number of attribute columns.
    pub fn n_attrs(&self) -> usize {
        self.columns.len()
    }

    /// Number of carriers (length of every attribute column).
    pub fn n_carriers(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of directed X2 pairs.
    pub fn n_pairs(&self) -> usize {
        self.pair_src.len()
    }

    /// Attribute `a`'s column: one level per carrier index.
    #[inline]
    pub fn column(&self, a: AttrId) -> &[AttrValue] {
        &self.columns[a.index()]
    }

    /// Attribute `a`'s column as a shareable `Arc` slice, for structures
    /// that want to alias it without copying.
    #[inline]
    pub fn column_arc(&self, a: AttrId) -> Arc<[AttrValue]> {
        Arc::clone(&self.columns[a.index()])
    }

    /// Attribute `a`'s level for carrier index `c`.
    #[inline]
    pub fn value(&self, c: usize, a: AttrId) -> AttrValue {
        self.columns[a.index()][c]
    }

    /// Source carrier indices of the directed pair list.
    #[inline]
    pub fn pair_src(&self) -> &[u32] {
        &self.pair_src
    }

    /// Destination carrier indices of the directed pair list.
    #[inline]
    pub fn pair_dst(&self) -> &[u32] {
        &self.pair_dst
    }

    /// Endpoint carrier indices of directed pair `p`.
    #[inline]
    pub fn pair(&self, p: PairIdx) -> (usize, usize) {
        (
            self.pair_src[p as usize] as usize,
            self.pair_dst[p as usize] as usize,
        )
    }

    /// Resident bytes of the arena's columns (attribute + endpoint), for
    /// the `cf.fit.arena.bytes` gauge.
    pub fn bytes(&self) -> usize {
        let attr = self
            .columns
            .iter()
            .map(|c| c.len() * std::mem::size_of::<AttrValue>())
            .sum::<usize>();
        attr + (self.pair_src.len() + self.pair_dst.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AttrDef, AttrVec, AttributeSchema};
    use crate::carrier::{Band, Carrier, Enodeb, Market, Morphology, Point, Timezone, Vendor};
    use crate::config::Configuration;
    use crate::ids::{CarrierId, EnodebId, MarketId};
    use crate::params::ParamCatalog;
    use crate::x2::X2Graph;

    /// Three carriers on one eNodeB, a path X2 graph.
    fn snapshot() -> NetworkSnapshot {
        let schema = AttributeSchema::new(vec![
            AttrDef {
                name: "morphology".into(),
                dynamic: false,
                levels: vec!["urban".into(), "rural".into()],
            },
            AttrDef {
                name: "band".into(),
                dynamic: false,
                levels: vec!["low".into(), "mid".into(), "high".into()],
            },
        ]);
        let attrs = [[0u16, 2], [1, 1], [0, 0]];
        let carriers: Vec<Carrier> = attrs
            .iter()
            .enumerate()
            .map(|(i, row)| Carrier {
                id: CarrierId(i as u32),
                enodeb: EnodebId(0),
                market: MarketId(0),
                face: 0,
                band: Band::Low,
                attrs: AttrVec::new(row.to_vec()),
            })
            .collect();
        let x2 = X2Graph::from_edges(
            3,
            &[(CarrierId(0), CarrierId(1)), (CarrierId(1), CarrierId(2))],
        );
        let catalog = ParamCatalog::new(vec![]);
        let config = Configuration::with_defaults(&catalog, 3, x2.n_pairs());
        NetworkSnapshot {
            schema,
            catalog,
            markets: vec![Market {
                id: MarketId(0),
                name: "m".into(),
                timezone: Timezone::Eastern,
                carriers: vec![CarrierId(0), CarrierId(1), CarrierId(2)],
                enodebs: vec![EnodebId(0)],
            }],
            enodebs: vec![Enodeb {
                id: EnodebId(0),
                market: MarketId(0),
                position: Point { x: 0.0, y: 0.0 },
                morphology: Morphology::Urban,
                vendor: Vendor::VendorA,
                carriers: vec![CarrierId(0), CarrierId(1), CarrierId(2)],
            }],
            carriers,
            x2,
            config,
        }
    }

    #[test]
    fn columns_are_the_transpose_of_carrier_rows() {
        let snap = snapshot();
        let arena = AttrArena::from_snapshot(&snap);
        assert_eq!(arena.n_attrs(), 2);
        assert_eq!(arena.n_carriers(), 3);
        assert_eq!(arena.column(AttrId(0)), &[0, 1, 0]);
        assert_eq!(arena.column(AttrId(1)), &[2, 1, 0]);
        for (c, carrier) in snap.carriers.iter().enumerate() {
            for a in snap.schema.attr_ids() {
                assert_eq!(arena.value(c, a), carrier.attrs.get(a));
            }
        }
    }

    #[test]
    fn pair_columns_follow_the_canonical_pair_order() {
        let snap = snapshot();
        let arena = AttrArena::from_snapshot(&snap);
        assert_eq!(arena.n_pairs(), snap.x2.n_pairs());
        for (p, j, k) in snap.x2.pairs() {
            assert_eq!(arena.pair(p), (j.index(), k.index()));
        }
    }

    #[test]
    fn column_arcs_alias_the_arena() {
        let snap = snapshot();
        let arena = AttrArena::from_snapshot(&snap);
        let col = arena.column_arc(AttrId(1));
        assert!(Arc::ptr_eq(&col, &arena.columns[1]));
    }

    #[test]
    fn append_matches_from_snapshot_and_shares_unchanged_columns() {
        let mut snap = snapshot();
        let mut arena = AttrArena::from_snapshot(&snap);

        // Edge-only change: attr columns must stay Arc-identical, pair
        // columns must follow the re-indexed CSR.
        let col_before = arena.column_arc(AttrId(0));
        snap.x2 = X2Graph::from_edges(
            3,
            &[
                (CarrierId(0), CarrierId(1)),
                (CarrierId(1), CarrierId(2)),
                (CarrierId(0), CarrierId(2)),
            ],
        );
        arena.append(&snap);
        assert!(Arc::ptr_eq(&col_before, &arena.columns[0]));
        let fresh = AttrArena::from_snapshot(&snap);
        assert_eq!(arena.pair_src(), fresh.pair_src());
        assert_eq!(arena.pair_dst(), fresh.pair_dst());

        // Carrier growth: appended rows read from the snapshot only.
        snap.carriers.push(Carrier {
            id: CarrierId(3),
            enodeb: EnodebId(0),
            market: MarketId(0),
            face: 1,
            band: Band::Mid,
            attrs: AttrVec::new(vec![1, 2]),
        });
        snap.x2 = X2Graph::from_edges(
            4,
            &[
                (CarrierId(0), CarrierId(1)),
                (CarrierId(1), CarrierId(2)),
                (CarrierId(2), CarrierId(3)),
            ],
        );
        arena.append(&snap);
        let fresh = AttrArena::from_snapshot(&snap);
        for a in snap.schema.attr_ids() {
            assert_eq!(arena.column(a), fresh.column(a));
        }
        assert_eq!(arena.pair_src(), fresh.pair_src());
        assert_eq!(arena.pair_dst(), fresh.pair_dst());

        // LIFO shrink back to three carriers.
        snap.carriers.pop();
        snap.x2 = X2Graph::from_edges(3, &[(CarrierId(0), CarrierId(1))]);
        arena.append(&snap);
        let fresh = AttrArena::from_snapshot(&snap);
        for a in snap.schema.attr_ids() {
            assert_eq!(arena.column(a), fresh.column(a));
        }
        assert_eq!(arena.pair_src(), fresh.pair_src());
    }

    #[test]
    fn bytes_counts_all_columns() {
        let arena = AttrArena::from_snapshot(&snapshot());
        // 2 attr columns × 3 carriers × 2 bytes + 2 pair columns × 4 pairs × 4 bytes.
        assert_eq!(arena.bytes(), 2 * 3 * 2 + 2 * 4 * 4);
    }
}
