//! Newtype identifiers for the entities in the network model.
//!
//! All identifiers are dense indices into the owning collection inside a
//! [`crate::NetworkSnapshot`]: `CarrierId(7)` is element 7 of
//! `snapshot.carriers`. Using newtypes instead of bare `usize` keeps the
//! many index spaces in this workspace (carriers, eNodeBs, parameters,
//! attribute columns, X2 pairs) from being mixed up silently.

use serde::{Deserialize, Serialize};

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident($repr:ty)) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// The dense index this id denotes.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit the id's representation.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                Self(<$repr>::try_from(idx).expect("id out of range"))
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

dense_id! {
    /// Index of a market (a group of carriers managed by one engineering
    /// team; the paper divides the US network into 28 of them).
    MarketId(u16)
}

dense_id! {
    /// Index of an eNodeB (LTE base station).
    EnodebId(u32)
}

dense_id! {
    /// Index of a carrier (a radio channel on one face of an eNodeB).
    CarrierId(u32)
}

dense_id! {
    /// Index of a configuration parameter in the [`crate::ParamCatalog`].
    ParamId(u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        let c = CarrierId::from_index(12345);
        assert_eq!(c.index(), 12345);
        assert_eq!(c, CarrierId(12345));
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(MarketId(3).to_string(), "MarketId#3");
        assert_eq!(CarrierId(0).to_string(), "CarrierId#0");
    }

    #[test]
    #[should_panic(expected = "id out of range")]
    fn rejects_overflow() {
        let _ = MarketId::from_index(usize::from(u16::MAX) + 1);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ParamId(1) < ParamId(2));
        let mut v = vec![EnodebId(5), EnodebId(1), EnodebId(3)];
        v.sort();
        assert_eq!(v, vec![EnodebId(1), EnodebId(3), EnodebId(5)]);
    }
}
