//! Table 5 — the SmartLaunch production campaign (§5), replayed through
//! the EMS simulator.
//!
//! Vendors configure launching carriers from the current engineering
//! rules (the generator's latent rules — exactly the "rule-book +
//! integration" baseline the paper describes); Auric then diffs its
//! neighborhood-voted recommendation against that initial configuration
//! and pushes only the mismatches, before unlock. Fall-outs come from the
//! paper's two causes: premature off-band unlocks and EMS execution
//! timeouts.

use crate::experiments::network;
use crate::render::{pct, TextTable};
use crate::{ExpOutput, RunOptions};
use auric_core::{CfConfig, CfModel, FitOptions, Scope};
use auric_ems::{
    sample_campaign_with_post_checks, EmsBackend, EmsSettings, SmartLaunch, VendorConfigSource,
};
use auric_model::{CarrierId, NetworkSnapshot, ParamId, ValueIdx};
use auric_netgen::tuning::singular_key;
use auric_netgen::{LatentRule, NetScale};
use serde_json::json;

/// Vendor initial configuration derived from the latent engineering
/// rules: integrators set what the current rule-book says, blind to local
/// tuning pockets and neighborhood practice.
struct RuleVendor<'a> {
    snapshot: &'a NetworkSnapshot,
    rules: &'a [LatentRule],
}

impl VendorConfigSource for RuleVendor<'_> {
    fn initial_value(&self, carrier: CarrierId, param: ParamId) -> ValueIdx {
        let rule = &self.rules[param.index()];
        rule.value_for(&singular_key(rule, self.snapshot.carrier(carrier)))
    }
}

/// Table 5 — two months of launches through the pipeline.
pub fn table5(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::medium());
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let fit_span = opts.obs.span("exp.table5/fit");
    let model = CfModel::fit_with(
        snap,
        &scope,
        CfConfig::default(),
        FitOptions {
            obs: opts.obs.clone(),
            threads: None,
            key_cache: None,
        },
    );
    fit_span.close();

    // Campaign size: the paper launched 1251 carriers; cap by network
    // size. Off-band unlock probability and the EMS execution limit are
    // the §5 failure injections.
    let n_launches = 1251.min(snap.n_carriers());
    // 15% off-band unlocks and a 4% post-check failure rate (the §4.3.3
    // roll-back path).
    let plans =
        sample_campaign_with_post_checks(snap, n_launches, 0.15, 0.04, opts.seed ^ 0x7AB1E5);
    let vendor = RuleVendor {
        snapshot: snap,
        rules: &net.truth.rules,
    };
    let mut pipeline = SmartLaunch::new(
        snap,
        &model,
        EmsSettings {
            max_executions_per_push: 9,
        },
    )
    .with_obs(opts.obs.clone());
    let campaign_span = opts.obs.span("exp.table5/campaign");
    let report = pipeline.run_campaign(&plans, &vendor);
    campaign_span.close();
    let audit = pipeline.ems.audit();

    let mut table = TextTable::new(vec!["Quantity", "measured", "paper"]);
    table.row(vec![
        "New carriers launched".to_string(),
        report.launched.to_string(),
        "1251".into(),
    ]);
    table.row(vec![
        "Changes recommended by Auric".to_string(),
        format!(
            "{} ({}%)",
            report.changes_recommended,
            pct(report.recommended_rate())
        ),
        "143 (11.4%)".into(),
    ]);
    table.row(vec![
        "Changes implemented successfully".to_string(),
        format!(
            "{} ({}%)",
            report.changes_implemented,
            pct(report.implemented_rate())
        ),
        "114 (9%)".into(),
    ]);
    table.row(vec![
        "Fall-outs (off-band unlock)".to_string(),
        report.fallouts_off_band.to_string(),
        "…".into(),
    ]);
    table.row(vec![
        "Fall-outs (EMS timeout)".to_string(),
        report.fallouts_timeout.to_string(),
        "…".into(),
    ]);
    table.row(vec![
        "Fall-outs total".to_string(),
        report.fallouts().to_string(),
        "29".into(),
    ]);
    table.row(vec![
        "Parameters changed".to_string(),
        report.parameters_changed.to_string(),
        "1102".into(),
    ]);
    table.row(vec![
        "Rolled back after post-check".to_string(),
        report.rollbacks.to_string(),
        "…".into(),
    ]);

    let text = format!(
        "Table 5 — Auric operational experience with new carrier launches\n\
         (SmartLaunch pipeline over the EMS simulator; both §5 fall-out causes injected)\n\n{}",
        table.render()
    );
    ExpOutput {
        id: "table5".into(),
        title: "Table 5 — SmartLaunch campaign".into(),
        text,
        json: json!({
            "launched": report.launched,
            "changes_recommended": report.changes_recommended,
            "recommended_rate": report.recommended_rate(),
            "changes_implemented": report.changes_implemented,
            "implemented_rate": report.implemented_rate(),
            "fallouts_off_band": report.fallouts_off_band,
            "fallouts_timeout": report.fallouts_timeout,
            "parameters_changed": report.parameters_changed,
            "rollbacks": report.rollbacks,
            // Extended accounting (zero in the paper-faithful default
            // pipeline; populated under fault injection / retry policies).
            "fallouts_push_rejected": report.fallouts_push_rejected,
            "fallouts_unknown_carrier": report.fallouts_unknown_carrier,
            "fallouts_stuck_rollback": report.fallouts_stuck_rollback,
            "recovered": report.recovered,
            // EMS-side audit: accepted work plus rejections per cause.
            "audit": json!({
                "accepted_pushes": audit.accepted_pushes,
                "accepted_bytes": audit.accepted_bytes,
                "rejected_pushes": audit.rejected_pushes(),
                "rejected_unlocked": audit.rejected_unlocked,
                "rejected_timeout": audit.rejected_timeout,
                "rejected_unknown": audit.rejected_unknown,
                "rejected_transient": audit.rejected_transient,
                "rejected_partial": audit.rejected_partial,
            }),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::TuningKnobs;

    #[test]
    fn table5_shape() {
        let opts = RunOptions {
            scale: Some(NetScale::tiny()),
            knobs: TuningKnobs::default(),
            seed: 7,
            ..Default::default()
        };
        let out = table5(&opts);
        let launched = out.json["launched"].as_u64().unwrap();
        let recommended = out.json["changes_recommended"].as_u64().unwrap();
        let implemented = out.json["changes_implemented"].as_u64().unwrap();
        assert!(launched > 0);
        assert!(recommended <= launched);
        assert!(implemented <= recommended);
        // A minority of launches needs changes; most recommended changes
        // land (the Table 5 shape).
        let rate = out.json["recommended_rate"].as_f64().unwrap();
        assert!(rate < 0.8, "recommended rate {rate}");
        // Audit consistency: one accepted push per implemented launch
        // plus one revert push per rollback; rejections cover the
        // fall-outs that reached the EMS (timeouts — off-band unlocks
        // are refused before any push in the default pipeline).
        let rollbacks = out.json["rollbacks"].as_u64().unwrap();
        let audit = &out.json["audit"];
        assert_eq!(
            audit["accepted_pushes"].as_u64().unwrap(),
            implemented + rollbacks
        );
        assert!(audit["accepted_bytes"].as_u64().unwrap() > 0 || implemented == 0);
        assert_eq!(
            audit["rejected_timeout"].as_u64().unwrap(),
            out.json["fallouts_timeout"].as_u64().unwrap()
        );
        assert_eq!(audit["rejected_transient"].as_u64(), Some(0));
        assert_eq!(audit["rejected_partial"].as_u64(), Some(0));
    }
}
