//! §4.3.2 and Fig. 11 — the importance of geographic proximity: the local
//! learner (1-hop X2 voting) against the global learner, across all
//! markets.

use crate::experiments::{distinct_in_scope, fit_per_market, network};
use crate::render::{pct, TextTable};
use crate::{ExpOutput, RunOptions};
use auric_core::{evaluate_cf, CfConfig, Scope};
use auric_netgen::NetScale;
use serde_json::json;

/// §4.3.2 headline — collaborative filtering with local voting vs global
/// voting over every market (paper: 96.9% vs 96.5% on 28 markets; the
/// 0.4% gap is ~60K parameter values).
pub fn global_vs_local(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::medium());
    let snap = &net.snapshot;
    let models = fit_per_market(snap, CfConfig::default(), &opts.obs);
    let mut table = TextTable::new(vec!["Market", "global CF", "local CF", "gain"]);
    let mut rows = Vec::new();
    let mut pooled = (0usize, 0usize, 0usize); // correct_global, correct_local, total
    for (m, (scope, model)) in snap.markets.iter().zip(&models) {
        let global = evaluate_cf(snap, scope, model, false);
        let local = evaluate_cf(snap, scope, model, true);
        let (g, l) = (global.micro_accuracy(), local.micro_accuracy());
        table.row(vec![
            m.name.clone(),
            pct(g),
            pct(l),
            format!("{:+.2}", 100.0 * (l - g)),
        ]);
        rows.push(json!({"market": m.name, "global": g, "local": l}));
        let total = global.total_values();
        pooled.0 += (g * total as f64).round() as usize;
        pooled.1 += (l * total as f64).round() as usize;
        pooled.2 += total;
    }
    let g_all = pooled.0 as f64 / pooled.2.max(1) as f64;
    let l_all = pooled.1 as f64 / pooled.2.max(1) as f64;
    let improved = pooled.1.saturating_sub(pooled.0);
    let text = format!(
        "§4.3.2 — global vs local collaborative filtering (leave-one-out)\n\
         (paper, 28 markets: global 96.5% → local 96.9%; +0.4% ≈ 60K values)\n\
         measured: global {} → local {} ({:+.2} points, {} of {} values improved)\n\n{}",
        pct(g_all),
        pct(l_all),
        100.0 * (l_all - g_all),
        improved,
        pooled.2,
        table.render()
    );
    ExpOutput {
        id: "global-vs-local".into(),
        title: "§4.3.2 — global vs local collaborative filtering".into(),
        text,
        json: json!({
            "per_market": rows,
            "global": g_all,
            "local": l_all,
            "gain": l_all - g_all,
            "total_values": pooled.2,
        }),
    }
}

/// Fig. 11 — local-learner accuracy for the four highest-variability
/// parameters, across every market (paper: accuracy tracks per-market
/// variability; some markets lag even at similar variability).
pub fn fig11(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::medium());
    let snap = &net.snapshot;

    // The four highest-variability parameters, network-wide.
    let whole = Scope::whole(snap);
    let mut by_var: Vec<_> = snap
        .catalog
        .param_ids()
        .map(|p| (p, distinct_in_scope(snap, &whole, p)))
        .collect();
    by_var.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let top4: Vec<_> = by_var.iter().take(4).map(|&(p, _)| p).collect();

    let models = fit_per_market(snap, CfConfig::default(), &opts.obs);
    let mut charts = Vec::new();
    let mut text = String::from(
        "Fig. 11 — local-learner accuracy for the four most variable parameters\n\
         (paper: per-market accuracy varies with per-market variability)\n\n",
    );
    for (pi, &param) in top4.iter().enumerate() {
        let def = snap.catalog.def(param);
        let mut table = TextTable::new(vec!["Market", "accuracy", "distinct"]);
        let mut rows = Vec::new();
        for (m, (scope, model)) in snap.markets.iter().zip(&models) {
            let acc =
                auric_core::accuracy::evaluate_param(snap, scope, model, param, true).accuracy();
            let distinct = distinct_in_scope(snap, scope, param);
            table.row(vec![m.name.clone(), pct(acc), distinct.to_string()]);
            rows.push(json!({"market": m.name, "accuracy": acc, "distinct": distinct}));
        }
        text.push_str(&format!(
            "Configuration parameter {} — {} (network-wide distinct: {})\n{}\n",
            pi + 1,
            def.name,
            by_var[pi].1,
            table.render()
        ));
        charts.push(json!({"param": def.name, "per_market": rows}));
    }
    ExpOutput {
        id: "fig11".into(),
        title: "Fig. 11 — local accuracy of the top-variability parameters".into(),
        text,
        json: json!({ "parameters": charts }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::TuningKnobs;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            scale: Some(NetScale::tiny()),
            knobs: TuningKnobs::default(),
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn local_is_at_least_global_on_pooled_accuracy() {
        let out = global_vs_local(&tiny_opts());
        let g = out.json["global"].as_f64().unwrap();
        let l = out.json["local"].as_f64().unwrap();
        assert!(l >= g - 0.005, "local {l} vs global {g}");
        assert!(g > 0.8);
    }

    #[test]
    fn fig11_selects_the_four_most_variable_parameters() {
        let out = fig11(&tiny_opts());
        let params = out.json["parameters"].as_array().unwrap();
        assert_eq!(params.len(), 4);
        // Each selected parameter exists in the catalog and carries a
        // per-market series covering every market.
        for p in params {
            assert_eq!(p["per_market"].as_array().unwrap().len(), 2);
        }
    }
}
