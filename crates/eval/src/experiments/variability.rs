//! Figures 2–4: variability and skewness of the configuration parameters
//! (§2.6).

use crate::experiments::{concrete_values, distinct_in_scope, distinct_network_wide, network};
use crate::render::{bar_series, TextTable};
use crate::{ExpOutput, RunOptions};
use auric_core::Scope;
use auric_netgen::NetScale;
use auric_stats::moments::{skewness, Skew};
use serde_json::json;

/// Fig. 2 — number of distinct values per configuration parameter across
/// the whole network, reverse-sorted (paper: several exceed 10, one
/// reaches ~200).
pub fn fig2(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::medium());
    let snap = &net.snapshot;
    let distinct = distinct_network_wide(snap);
    let mut items: Vec<(String, f64)> = snap
        .catalog
        .defs()
        .iter()
        .map(|d| (d.name.clone(), distinct[d.id.index()] as f64))
        .collect();
    items.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let max = items.first().map(|x| x.1).unwrap_or(0.0);
    let over_10 = items.iter().filter(|x| x.1 > 10.0).count();

    let text = format!(
        "Fig. 2 — distinct values across configuration parameters (network-wide)\n\
         (paper: several parameters > 10 distinct values; maximum ≈ 200)\n\
         measured: {} of 65 parameters exceed 10; maximum = {}\n\n{}",
        over_10,
        max as usize,
        bar_series(&items, max, 50)
    );
    ExpOutput {
        id: "fig2".into(),
        title: "Fig. 2 — distinct values per parameter".into(),
        text,
        json: json!({
            "distinct": items.iter().map(|(n, v)| json!({"param": n, "distinct": v})).collect::<Vec<_>>(),
            "over_10": over_10,
            "max": max,
        }),
    }
}

/// Fig. 3 — distinct values per parameter for each market (paper:
/// variability is high for some markets and parameter groups, not
/// uniform).
pub fn fig3(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::medium());
    let snap = &net.snapshot;
    let mut table = TextTable::new(vec![
        "Market",
        "mean distinct",
        "max distinct",
        "params > 10",
    ]);
    let mut per_market = Vec::new();
    let mut matrix = Vec::new();
    for m in &snap.markets {
        let scope = Scope::market(snap, m.id);
        let distinct: Vec<usize> = snap
            .catalog
            .param_ids()
            .map(|p| distinct_in_scope(snap, &scope, p))
            .collect();
        let mean = distinct.iter().sum::<usize>() as f64 / distinct.len() as f64;
        let max = *distinct.iter().max().unwrap_or(&0);
        let over = distinct.iter().filter(|&&d| d > 10).count();
        table.row(vec![
            m.name.clone(),
            format!("{mean:.1}"),
            max.to_string(),
            over.to_string(),
        ]);
        per_market.push(json!({
            "market": m.name, "mean": mean, "max": max, "over_10": over,
        }));
        matrix.push(distinct);
    }
    // Cross-market dispersion: how unevenly is variability spread?
    let means: Vec<f64> = per_market
        .iter()
        .map(|j| j["mean"].as_f64().unwrap())
        .collect();
    let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - means.iter().cloned().fold(f64::INFINITY, f64::min);

    let text = format!(
        "Fig. 3 — distinct values across parameters, per market\n\
         (paper: variability is concentrated in some markets, not uniform)\n\
         measured: per-market mean-distinct spread = {spread:.1}\n\n{}",
        table.render()
    );
    ExpOutput {
        id: "fig3".into(),
        title: "Fig. 3 — distinct values per parameter per market".into(),
        text,
        json: json!({
            "per_market": per_market,
            "matrix": matrix,
            "param_names": snap.catalog.defs().iter().map(|d| d.name.clone()).collect::<Vec<_>>(),
            "mean_spread": spread,
        }),
    }
}

/// Fig. 4 — skewness of parameter value distributions across markets
/// (paper: 33 of 65 highly skewed, 12 moderately).
pub fn fig4(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::medium());
    let snap = &net.snapshot;
    let mut rows = Vec::new();
    let mut high = 0usize;
    let mut moderate = 0usize;
    let mut symmetric = 0usize;
    let mut table = TextTable::new(vec!["Parameter", "median |g1|", "class"]);
    for def in snap.catalog.defs() {
        // Per-market skewness, classified by the median magnitude.
        let mut gs: Vec<f64> = snap
            .markets
            .iter()
            .filter_map(|m| {
                let scope = Scope::market(snap, m.id);
                skewness(&concrete_values(snap, &scope, def.id))
            })
            .map(f64::abs)
            .collect();
        gs.sort_by(f64::total_cmp);
        let median = if gs.is_empty() {
            None
        } else {
            Some(gs[gs.len() / 2])
        };
        let class = Skew::classify(median);
        match class {
            Skew::High => high += 1,
            Skew::Moderate => moderate += 1,
            Skew::Symmetric => symmetric += 1,
        }
        table.row(vec![
            def.name.clone(),
            median
                .map(|g| format!("{g:.2}"))
                .unwrap_or_else(|| "-".into()),
            class.label().to_string(),
        ]);
        rows.push(json!({
            "param": def.name,
            "median_abs_skewness": median,
            "class": class.label(),
        }));
    }
    let text = format!(
        "Fig. 4 — skewness of configuration parameter values across markets\n\
         (paper: 33/65 highly skewed, 12/65 moderately skewed)\n\
         measured: {high}/65 high, {moderate}/65 moderate, {symmetric}/65 symmetric\n\n{}",
        table.render()
    );
    ExpOutput {
        id: "fig4".into(),
        title: "Fig. 4 — skewness across markets".into(),
        text,
        json: json!({
            "rows": rows,
            "high": high,
            "moderate": moderate,
            "symmetric": symmetric,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::TuningKnobs;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            scale: Some(NetScale::tiny()),
            knobs: TuningKnobs::default(),
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn fig2_reports_heavy_tail() {
        let out = fig2(&tiny_opts());
        assert!(out.json["max"].as_f64().unwrap() >= 10.0);
        assert!(
            out.text.contains("sFreqPrio"),
            "highest-variability param listed"
        );
    }

    #[test]
    fn fig3_covers_every_market() {
        let out = fig3(&tiny_opts());
        assert_eq!(out.json["per_market"].as_array().unwrap().len(), 2);
        assert_eq!(out.json["matrix"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn fig4_classes_partition_the_catalog() {
        let out = fig4(&tiny_opts());
        let h = out.json["high"].as_u64().unwrap();
        let m = out.json["moderate"].as_u64().unwrap();
        let s = out.json["symmetric"].as_u64().unwrap();
        assert_eq!(h + m + s, 65);
        assert!(h > 0, "planted skew must show up");
    }
}
