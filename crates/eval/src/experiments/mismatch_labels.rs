//! Fig. 12 — labeling the local learner's mismatches by cause (§4.3.3).

use crate::experiments::{fit_per_market, network};
use crate::render::{pct, TextTable};
use crate::{ExpOutput, RunOptions};
use auric_core::mismatch::analyze_mismatches;
use auric_core::{CfConfig, MismatchLabel};
use auric_netgen::NetScale;
use serde_json::json;

/// Fig. 12 — shares of the three engineer labels among mismatches
/// (paper: 5% update learner, 28% good recommendation, 67% inconclusive
/// over 54,915 sampled mismatches).
pub fn fig12(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::medium());
    let snap = &net.snapshot;
    let models = fit_per_market(snap, CfConfig::default(), &opts.obs);
    let mut total = auric_core::MismatchReport::default();
    for (scope, model) in &models {
        let r = analyze_mismatches(snap, scope, model);
        total.evaluated += r.evaluated;
        total.mismatches += r.mismatches;
        total.update_learner += r.update_learner;
        total.good_recommendation += r.good_recommendation;
        total.inconclusive += r.inconclusive;
    }

    let mut table = TextTable::new(vec!["Label", "count", "share %", "paper %"]);
    table.row(vec![
        "update learner".to_string(),
        total.update_learner.to_string(),
        pct(total.share(MismatchLabel::UpdateLearner)),
        "5".into(),
    ]);
    table.row(vec![
        "good recommendation".to_string(),
        total.good_recommendation.to_string(),
        pct(total.share(MismatchLabel::GoodRecommendation)),
        "28".into(),
    ]);
    table.row(vec![
        "inconclusive".to_string(),
        total.inconclusive.to_string(),
        pct(total.share(MismatchLabel::Inconclusive)),
        "67".into(),
    ]);

    let text = format!(
        "Fig. 12 — engineer labeling of recommendation mismatches\n\
         (paper: 54,915 mismatches → 5% update learner / 28% good / 67% inconclusive;\n\
          overall accuracy ≈ 96%, i.e. ≈ 4% mismatch rate)\n\
         measured: {} of {} values mismatched ({}%)\n\n{}",
        total.mismatches,
        total.evaluated,
        pct(total.mismatch_rate()),
        table.render()
    );
    ExpOutput {
        id: "fig12".into(),
        title: "Fig. 12 — mismatch labeling".into(),
        text,
        json: json!({
            "evaluated": total.evaluated,
            "mismatches": total.mismatches,
            "mismatch_rate": total.mismatch_rate(),
            "update_learner": total.share(MismatchLabel::UpdateLearner),
            "good_recommendation": total.share(MismatchLabel::GoodRecommendation),
            "inconclusive": total.share(MismatchLabel::Inconclusive),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::{NetScale, TuningKnobs};

    #[test]
    fn fig12_shares_sum_to_one() {
        let opts = RunOptions {
            scale: Some(NetScale::tiny()),
            knobs: TuningKnobs::default(),
            seed: 7,
            ..Default::default()
        };
        let out = fig12(&opts);
        let u = out.json["update_learner"].as_f64().unwrap();
        let g = out.json["good_recommendation"].as_f64().unwrap();
        let i = out.json["inconclusive"].as_f64().unwrap();
        assert!((u + g + i - 1.0).abs() < 1e-9, "{u} {g} {i}");
        assert!(out.json["mismatches"].as_u64().unwrap() > 0);
    }
}
