//! Ablations of Auric's design choices (ours, not in the paper): the
//! voting-support threshold, the chi-square significance level, the
//! locality radius, and the dependency-selection strategy.

use crate::experiments::{fit_per_market, network};
use crate::render::{pct, TextTable};
use crate::{ExpOutput, RunOptions};
use auric_core::{evaluate_cf, CfConfig, CfModel, Scope};
use auric_model::NetworkSnapshot;
use auric_netgen::NetScale;
use serde_json::json;

/// Pooled micro-accuracy over per-market models — the same methodology
/// the headline experiments use, so ablation numbers are comparable.
fn per_market_accuracy(
    snapshot: &NetworkSnapshot,
    config: CfConfig,
    local: bool,
    obs: &auric_obs::Recorder,
) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (scope, model) in fit_per_market(snapshot, config, obs) {
        let report = evaluate_cf(snapshot, &scope, &model, local);
        let t = report.total_values();
        correct += (report.micro_accuracy() * t as f64).round() as usize;
        total += t;
    }
    correct as f64 / total.max(1) as f64
}

/// Sweep of the voting-support threshold (paper fixes 75%). The model is
/// fitted once — the threshold only affects recommendation time.
pub fn vote_threshold(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::small());
    let snap = &net.snapshot;
    let mut table = TextTable::new(vec!["support", "local acc", "global acc"]);
    let mut rows = Vec::new();
    for &support in &[0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 1.0] {
        let config = CfConfig {
            support,
            ..CfConfig::default()
        };
        let local = per_market_accuracy(snap, config, true, &opts.obs);
        let global = per_market_accuracy(snap, config, false, &opts.obs);
        table.row(vec![format!("{support:.2}"), pct(local), pct(global)]);
        rows.push(json!({"support": support, "local": local, "global": global}));
    }
    ExpOutput {
        id: "ablation-vote".into(),
        title: "Ablation — voting-support threshold".into(),
        text: format!(
            "Ablation — voting-support threshold (paper uses 0.75)\n\n{}",
            table.render()
        ),
        json: json!({ "rows": rows }),
    }
}

/// Sweep of the chi-square significance level (paper fixes p = 0.01);
/// each level refits the dependency model.
pub fn alpha_sweep(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::small());
    let snap = &net.snapshot;
    let mut table = TextTable::new(vec!["alpha", "local acc", "mean dependent attrs"]);
    let mut rows = Vec::new();
    for &alpha in &[0.1, 0.05, 0.01, 0.001] {
        let config = CfConfig {
            alpha,
            ..CfConfig::default()
        };
        let local = per_market_accuracy(snap, config, true, &opts.obs);
        // Dependent-set size measured on the first market's fit.
        let scope = Scope::market(snap, snap.markets[0].id);
        let model = CfModel::fit_with(
            snap,
            &scope,
            config,
            auric_core::FitOptions {
                obs: opts.obs.clone(),
                threads: None,
                key_cache: None,
            },
        );
        let mean_deps = model
            .params()
            .iter()
            .map(|p| p.dependent.len())
            .sum::<usize>() as f64
            / model.params().len() as f64;
        table.row(vec![
            format!("{alpha}"),
            pct(local),
            format!("{mean_deps:.2}"),
        ]);
        rows.push(json!({"alpha": alpha, "local": local, "mean_dependent": mean_deps}));
    }
    ExpOutput {
        id: "ablation-alpha".into(),
        title: "Ablation — chi-square significance level".into(),
        text: format!(
            "Ablation — chi-square significance level (paper uses p = 0.01)\n\n{}",
            table.render()
        ),
        json: json!({ "rows": rows }),
    }
}

/// Sweep of the locality radius: 0 hops (pure global) through 3 hops.
pub fn hops_sweep(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::small());
    let snap = &net.snapshot;
    let mut table = TextTable::new(vec!["hops", "accuracy"]);
    let mut rows = Vec::new();
    for hops in 0..=3usize {
        let config = CfConfig {
            hops,
            ..CfConfig::default()
        };
        // hops = 0 means the neighborhood is empty: pure global voting.
        let acc = per_market_accuracy(snap, config, hops > 0, &opts.obs);
        table.row(vec![hops.to_string(), pct(acc)]);
        rows.push(json!({"hops": hops, "accuracy": acc}));
    }
    ExpOutput {
        id: "ablation-hops".into(),
        title: "Ablation — locality radius".into(),
        text: format!(
            "Ablation — X2 locality radius (paper uses 1-hop)\n\n{}",
            table.render()
        ),
        json: json!({ "rows": rows }),
    }
}

/// Conditional forward selection (ours) vs the paper's literal marginal
/// chi-square selection.
pub fn dependency_selection(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::small());
    let snap = &net.snapshot;
    let mut table = TextTable::new(vec!["selection", "local acc", "mean dependent attrs"]);
    let mut rows = Vec::new();
    for (name, marginal) in [
        ("conditional (ours)", false),
        ("marginal (paper literal)", true),
    ] {
        let config = CfConfig {
            marginal_selection: marginal,
            ..CfConfig::default()
        };
        let acc = per_market_accuracy(snap, config, true, &opts.obs);
        let scope = Scope::market(snap, snap.markets[0].id);
        let model = CfModel::fit_with(
            snap,
            &scope,
            config,
            auric_core::FitOptions {
                obs: opts.obs.clone(),
                threads: None,
                key_cache: None,
            },
        );
        let mean_deps = model
            .params()
            .iter()
            .map(|p| p.dependent.len())
            .sum::<usize>() as f64
            / model.params().len() as f64;
        table.row(vec![name.to_string(), pct(acc), format!("{mean_deps:.2}")]);
        rows.push(json!({"selection": name, "accuracy": acc, "mean_dependent": mean_deps}));
    }
    ExpOutput {
        id: "ablation-dependency".into(),
        title: "Ablation — dependency selection strategy".into(),
        text: format!(
            "Ablation — dependency selection: conditional forward selection vs\n\
             the paper's literal marginal chi-square (see DESIGN.md)\n\n{}",
            table.render()
        ),
        json: json!({ "rows": rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::TuningKnobs;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            scale: Some(NetScale::tiny()),
            knobs: TuningKnobs::default(),
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn vote_sweep_produces_all_rows() {
        let out = vote_threshold(&tiny_opts());
        assert_eq!(out.json["rows"].as_array().unwrap().len(), 7);
    }

    #[test]
    fn alpha_sweep_monotone_dependent_counts() {
        let out = alpha_sweep(&tiny_opts());
        let rows = out.json["rows"].as_array().unwrap();
        // Mean dependent-attribute count shrinks (weakly) as alpha tightens.
        let deps: Vec<f64> = rows
            .iter()
            .map(|r| r["mean_dependent"].as_f64().unwrap())
            .collect();
        assert!(deps.windows(2).all(|w| w[1] <= w[0] + 0.75), "{deps:?}");
    }

    #[test]
    fn hops_zero_equals_global() {
        let out = hops_sweep(&tiny_opts());
        let rows = out.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 4);
        for r in rows {
            let a = r["accuracy"].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn conditional_beats_marginal() {
        let out = dependency_selection(&tiny_opts());
        let rows = out.json["rows"].as_array().unwrap();
        let cond = rows[0]["accuracy"].as_f64().unwrap();
        let marg = rows[1]["accuracy"].as_f64().unwrap();
        assert!(
            cond >= marg,
            "conditional {cond} should not lose to marginal {marg}"
        );
    }
}
