//! Table 3 — the four-market dataset summary (one market per timezone).

use crate::experiments::network;
use crate::render::TextTable;
use crate::{ExpOutput, RunOptions};
use auric_model::Timezone;
use auric_netgen::NetScale;
use serde_json::json;

/// Regenerates Table 3: per-market carriers, eNodeBs, and parameter-value
/// counts for four markets covering the four US timezones.
pub fn table3(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::small());
    let snap = &net.snapshot;

    // One market per timezone, first match in market order — mirroring the
    // paper's "four markets with each one covering a different timezone".
    let mut picks = Vec::new();
    for tz in Timezone::ALL {
        if let Some(m) = snap.markets.iter().find(|m| m.timezone == tz) {
            picks.push(m.id);
        }
    }

    let mut table = TextTable::new(vec![
        "Market",
        "Timezone",
        "Carriers",
        "eNodeBs",
        "Parameters",
        "Pairwise values",
    ]);
    let mut rows_json = Vec::new();
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for (i, &m) in picks.iter().enumerate() {
        let stats = snap.market_stats(m);
        let market = snap.market(m);
        table.row(vec![
            format!("Market {}", i + 1),
            market.timezone.label().to_string(),
            stats.carriers.to_string(),
            stats.enodebs.to_string(),
            stats.parameter_values.to_string(),
            stats.pairwise_values.to_string(),
        ]);
        rows_json.push(json!({
            "market": market.name,
            "timezone": market.timezone.label(),
            "carriers": stats.carriers,
            "enodebs": stats.enodebs,
            "parameter_values": stats.parameter_values,
            "pairwise_values": stats.pairwise_values,
        }));
        totals.0 += stats.carriers;
        totals.1 += stats.enodebs;
        totals.2 += stats.parameter_values;
        totals.3 += stats.pairwise_values;
    }
    table.row(vec![
        "All four".to_string(),
        String::new(),
        totals.0.to_string(),
        totals.1.to_string(),
        totals.2.to_string(),
        totals.3.to_string(),
    ]);

    let text = format!(
        "Table 3 — dataset for comparing global learners (one market per timezone)\n\
         (paper: 116,012 carriers / 7,634 eNodeBs / 4.5M parameter values ≈ 39 per carrier)\n\n{}",
        table.render()
    );
    ExpOutput {
        id: "table3".into(),
        title: "Table 3 — four-market dataset summary".into(),
        text,
        json: json!({
            "rows": rows_json,
            "total_carriers": totals.0,
            "total_enodebs": totals.1,
            "total_parameter_values": totals.2,
            "params_per_carrier": totals.2 as f64 / totals.0.max(1) as f64,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_four_markets_and_paper_ratio() {
        let out = table3(&RunOptions::default());
        assert!(out.text.contains("Mountain"));
        assert!(out.text.contains("Pacific"));
        let ratio = out.json["params_per_carrier"].as_f64().unwrap();
        // The paper's "Parameters" column is ≈ 38–39 per carrier; ours is
        // exactly 39 (all singular predictees present).
        assert!((ratio - 39.0).abs() < 1.0, "ratio {ratio}");
    }
}
