//! `stream-ingest` — streaming fleet ingestion + incremental fit (ours;
//! the paper fits on a finished dataset, long-running deployments don't
//! get one).
//!
//! Replays the generator as an ordered delta stream from the empty
//! fleet: Phase A batches stand markets up carrier by carrier, Phase B
//! batches retune live parameters (pockets, stale trials, noise). A
//! single CF model rides the stream through [`CfModel::apply_delta`],
//! and on a fixed stride the experiment refits the post-batch snapshot
//! from scratch and asserts the incremental model serializes
//! **byte-identically** — the differential check from the test suite,
//! promoted to a pinned artifact.
//!
//! Everything is seeded, so the `cf.delta.*` counters land
//! deterministically on `opts.obs` — CI pins them with an obs-baseline
//! diff and a double-run byte comparison.

use crate::render::TextTable;
use crate::{ExpOutput, RunOptions};
use auric_core::{CfConfig, CfModel, DeltaApply, FitOptions, Scope, SharedKeyColumns};
use auric_model::{apply_fleet_deltas, empty_snapshot, AttrArena};
use auric_netgen::{stream, NetScale};
use serde_json::json;

/// Full-refit comparison stride: every `STRIDE`-th batch plus the final
/// one gets the byte-equality check (a full refit per check keeps the
/// experiment honest without quadratic cost).
const STRIDE: usize = 8;

/// Per-phase accounting row.
#[derive(Default)]
struct PhaseTally {
    batches: u64,
    events: u64,
    patched: u64,
    rebuilt: u64,
    untouched: u64,
}

/// The streaming-ingestion scenario.
pub fn stream_ingest(opts: &RunOptions) -> ExpOutput {
    let scale = opts.scale.unwrap_or(NetScale::tiny()).with_seed(opts.seed);
    let mut s = stream(&scale, &opts.knobs);
    let mut snapshot = empty_snapshot(s.schema().clone(), s.catalog().clone());
    let mut arena = AttrArena::from_snapshot(&snapshot);
    let mut scope = Scope::whole(&snapshot);
    let mut model = CfModel::fit_with(
        &snapshot,
        &scope,
        CfConfig::default(),
        FitOptions {
            obs: opts.obs.clone(),
            threads: None,
            key_cache: None,
        },
    );

    let mut structural = PhaseTally::default();
    let mut retune = PhaseTally::default();
    let mut carriers_added = 0u64;
    let mut carriers_removed = 0u64;
    let mut obs_added = 0u64;
    let mut obs_removed = 0u64;
    let mut saturated = 0u64;
    let mut checked = 0u64;
    let batches: Vec<_> = std::iter::from_fn(|| s.next_batch()).collect();
    let n_batches = batches.len();
    for (i, batch) in batches.iter().enumerate() {
        let digest = apply_fleet_deltas(&mut snapshot, batch).expect("stream batch is consistent");
        arena.append(&snapshot);
        let before = std::mem::replace(&mut scope, Scope::whole(&snapshot));
        // A fresh per-batch cache: every param sharing a key layout
        // splices its column once, the rest borrow it.
        let cache = SharedKeyColumns::new();
        let report = model.apply_delta(&DeltaApply {
            snapshot: &snapshot,
            arena: &arena,
            scope_before: &before,
            scope_after: &scope,
            batch: &digest,
            key_cache: Some(cache),
        });
        let tally = if digest.structural() {
            &mut structural
        } else {
            &mut retune
        };
        tally.batches += 1;
        tally.events += digest.events as u64;
        tally.patched += report.params_patched as u64;
        tally.rebuilt += report.params_rebuilt as u64;
        tally.untouched += report.params_untouched as u64;
        carriers_added += digest.added_carriers.len() as u64;
        carriers_removed += digest.removed.len() as u64;
        obs_added += report.obs_added;
        obs_removed += report.obs_removed;
        saturated += report.count_saturated;
        if i % STRIDE == 0 || i + 1 == n_batches {
            let full = CfModel::fit(&snapshot, &scope, CfConfig::default());
            let ours = serde_json::to_string(&model).expect("model serializes");
            let refit = serde_json::to_string(&full).expect("model serializes");
            assert_eq!(
                ours, refit,
                "batch {i}: incremental model diverged from full refit"
            );
            checked += 1;
        }
    }

    let mut table = TextTable::new(vec![
        "phase",
        "batches",
        "events",
        "patched",
        "rebuilt",
        "untouched",
    ]);
    for (name, t) in [("structural", &structural), ("retune", &retune)] {
        table.row(vec![
            name.to_string(),
            format!("{}", t.batches),
            format!("{}", t.events),
            format!("{}", t.patched),
            format!("{}", t.rebuilt),
            format!("{}", t.untouched),
        ]);
    }
    let text = format!(
        "stream-ingest — streaming fleet ingestion, incremental refit per batch\n\
         replayed the generator as a delta stream from the empty fleet\n\n{}\n\
         final fleet: {} carriers, {} directed pairs \
         ({carriers_added} added, {carriers_removed} removed in-stream)\n\
         table churn: {obs_added} obs added, {obs_removed} removed, {saturated} saturated\n\
         {checked} full-refit byte-equality checks passed (stride {STRIDE})\n",
        table.render(),
        snapshot.n_carriers(),
        snapshot.x2.n_pairs(),
    );
    let json = json!({
        "batches": structural.batches + retune.batches,
        "structural_batches": structural.batches,
        "retune_batches": retune.batches,
        "events": structural.events + retune.events,
        "carriers": snapshot.n_carriers(),
        "pairs": snapshot.x2.n_pairs(),
        "carriers_added": carriers_added,
        "carriers_removed": carriers_removed,
        "params_patched": structural.patched + retune.patched,
        "params_rebuilt": structural.rebuilt + retune.rebuilt,
        "params_untouched": structural.untouched + retune.untouched,
        "obs_added": obs_added,
        "obs_removed": obs_removed,
        "count_saturated": saturated,
        "refit_checks": checked,
    });
    ExpOutput {
        id: "stream-ingest".into(),
        title: "Streaming ingestion: incremental fit == full refit".into(),
        text,
        json,
    }
}
