//! `serve-batch` — deterministic batched-serving scenario (ours; the
//! paper stops at model quality, serving is our deployment layer).
//!
//! Drives a small fixed request script through the `auric-serve` front
//! door with batching, coalescing, and the epoch-validated response
//! cache all active, in three waves per market:
//!
//! 1. a cold batch with duplicate probes — exercises coalescing,
//! 2. the same batch again — exercises cache hits,
//! 3. a hot refit, then the batch a third time — exercises epoch
//!    invalidation (the refit must clear the cache, so wave 3 misses
//!    and re-dispatches).
//!
//! Everything is seeded and single-threaded per market, so the serving
//! counters (`serve.batch.*`, `serve.cache.*`) land deterministically
//! on `opts.obs` — CI pins them with an obs-baseline diff.

use std::sync::Arc;

use crate::experiments::{fit_per_market, network};
use crate::render::TextTable;
use crate::{ExpOutput, RunOptions};
use auric_core::recommend::NewCarrier;
use auric_core::CfConfig;
use auric_model::{CarrierId, MarketId, NetworkSnapshot};
use auric_netgen::NetScale;
use auric_serve::{Request, RequestKind, Service, ServiceConfig, ShardFaultPlan, ShardFaultRates};
use serde_json::json;

fn clone_of(snap: &NetworkSnapshot, c: CarrierId) -> NewCarrier {
    NewCarrier {
        attrs: snap.carrier(c).attrs.clone(),
        neighbors: snap.x2.neighbors(c).to_vec(),
    }
}

/// One market's wave: eight requests over four carriers with the first
/// two probes duplicated (the coalescing bait).
fn wave(snap: &NetworkSnapshot, market: MarketId, t: u64, id_base: u64) -> Vec<Request> {
    let carriers = snap.carriers_in_market(market);
    let c = |i: usize| carriers[i % carriers.len()];
    let kinds = vec![
        RequestKind::Singular { carrier: c(0) },
        RequestKind::Singular { carrier: c(0) },
        RequestKind::Singular { carrier: c(1) },
        RequestKind::ColdStart(clone_of(snap, c(1))),
        RequestKind::Kpi { carrier: c(2) },
        RequestKind::Singular { carrier: c(1) },
        RequestKind::ColdStart(clone_of(snap, c(1))),
        RequestKind::Singular { carrier: c(3) },
    ];
    kinds
        .into_iter()
        .enumerate()
        .map(|(i, kind)| Request {
            id: id_base + i as u64,
            market,
            submitted_us: t,
            deadline_us: t + 50_000,
            kind,
        })
        .collect()
}

/// The batched-serving scenario.
pub fn serve_batch(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::tiny());
    let snap = Arc::new(net.snapshot);
    let fits = fit_per_market(&snap, CfConfig::default(), &opts.obs);
    let models = snap
        .markets
        .iter()
        .map(|m| m.id)
        .zip(fits.into_iter().map(|(_, model)| model))
        .collect();
    let mut config = ServiceConfig::default();
    config.shard.warmup_us = 0;
    let svc = Service::new(
        Arc::clone(&snap),
        models,
        ShardFaultPlan {
            seed: opts.seed,
            rates: ShardFaultRates::none(),
        },
        config,
        opts.obs.clone(),
    );

    let mut answered = 0u64;
    let mut submitted = Vec::new();
    for (mi, m) in snap.markets.iter().enumerate() {
        let id_base = u64::from(m.id.0) << 32;
        let mut count = |reqs: &[Request]| {
            answered += svc.call_batch(reqs).iter().filter(|r| r.is_ok()).count() as u64;
        };
        count(&wave(&snap, m.id, 0, id_base));
        count(&wave(&snap, m.id, 10_000, id_base + 8));
        svc.refit(
            m.id,
            fit_per_market(&snap, CfConfig::default(), &opts.obs)
                .swap_remove(mi)
                .1,
            20_000,
        )
        .expect("faultless refit");
        count(&wave(&snap, m.id, 20_000, id_base + 16));
        submitted.push((m.id, 24u64));
    }

    let violations = svc.invariant_violations(&submitted);
    assert!(violations.is_empty(), "serving invariants: {violations:?}");
    let stats = svc.stats();

    let mut table = TextTable::new(vec![
        "market",
        "admitted",
        "dispatched",
        "cache hits",
        "coalesced",
        "epoch",
    ]);
    for s in &stats.shards {
        table.row(vec![
            format!("{}", s.market),
            format!("{}", s.admitted),
            format!("{}", s.dispatched),
            format!("{}", s.cache_hits),
            format!("{}", s.coalesced),
            format!("{}", s.model_epoch),
        ]);
    }
    let total =
        |f: fn(&auric_serve::ShardStats) -> u64| -> u64 { stats.shards.iter().map(f).sum() };
    let text = format!(
        "serve-batch — batching, coalescing, and epoch-validated caching\n\
         three waves per market: cold (coalesce), warm (cache hit), post-refit (invalidated)\n\n{}\n\
         answered {answered}, dispatched {} of {} admitted \
         (cache absorbed {}, coalescing {})\n",
        table.render(),
        total(|s| s.dispatched),
        total(|s| s.admitted),
        total(|s| s.cache_hits),
        total(|s| s.coalesced),
    );
    let json = json!({
        "answered": answered,
        "admitted": total(|s| s.admitted),
        "dispatched": total(|s| s.dispatched),
        "cache_hits": total(|s| s.cache_hits),
        "coalesced": total(|s| s.coalesced),
        "shards": stats.shards,
    });
    svc.shutdown();
    ExpOutput {
        id: "serve-batch".into(),
        title: "Batched serving: coalescing + epoch-validated cache".into(),
        text,
        json,
    }
}
