//! Table 4 and Fig. 10 — the five global learners compared across four
//! markets (§4.3.1).
//!
//! The four classic learners run k-fold cross-validation per parameter
//! (the paper's "standard machine learning cross-validation approach");
//! collaborative filtering runs exact leave-one-out. Accuracies are
//! macro-averaged over the 65 parameters per market, exactly like
//! Table 4's rows.

use crate::experiments::{distinct_in_scope, network, parallel_map};
use crate::render::{pct, TextTable};
use crate::{ExpOutput, RunOptions};
use auric_core::datasets::dataset_for_param;
use auric_core::{evaluate_cf, CfConfig, CfModel, Scope};
use auric_learners::{
    cross_val_accuracy, Classifier, Dataset, DecisionTree, KnnClassifier, MlpClassifier, Model,
    RandomForest,
};
use auric_model::{ParamId, Timezone};
use auric_netgen::NetScale;
use serde_json::json;

/// Column order of Table 4.
pub const LEARNERS: [&str; 5] = [
    "Random forest",
    "k-Nearest neighbors",
    "Decision tree",
    "Deep neural network",
    "Collaborative filtering",
];

/// Caps an inner classifier's training set — the practical stand-in for
/// scikit-learn's cluster-scale training budget (documented in DESIGN.md).
/// Subsampling is deterministic (striding), so runs reproduce.
struct Capped<C: Classifier> {
    inner: C,
    max_rows: usize,
}

impl<C: Classifier> Classifier for Capped<C> {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        if data.n_rows() <= self.max_rows {
            return self.inner.fit(data);
        }
        let stride = data.n_rows().div_ceil(self.max_rows);
        let idx: Vec<usize> = (0..data.n_rows()).step_by(stride).collect();
        self.inner.fit(&data.subset(&idx))
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Row budget for the classic learners' cross-validation. The paper ran
/// scikit-learn over 4.5M values on carrier-grade hardware; this harness
/// runs on whatever `cargo` runs on, so each (parameter, market) dataset
/// is deterministically subsampled to this many rows before CV.
/// Overridable via `AURIC_EVAL_MAX_ROWS`.
fn classic_row_budget() -> usize {
    std::env::var("AURIC_EVAL_MAX_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1200)
}

/// Deterministic stride subsample of a dataset to at most `max` rows.
fn subsample(data: Dataset, max: usize) -> Dataset {
    if data.n_rows() <= max {
        return data;
    }
    let stride = data.n_rows().div_ceil(max);
    let idx: Vec<usize> = (0..data.n_rows()).step_by(stride).collect();
    data.subset(&idx)
}

/// The classic learners with the paper's hyperparameters, epoch-budgeted
/// for the harness.
fn classic_learners() -> Vec<Box<dyn Classifier>> {
    let mut mlp = MlpClassifier::paper();
    mlp.max_iter = 35;
    mlp.patience = 5;
    mlp.learning_rate = 2e-3;
    vec![
        Box::new(RandomForest::paper()),
        Box::new(KnnClassifier::paper()),
        Box::new(DecisionTree::paper()),
        Box::new(Capped {
            inner: mlp,
            max_rows: 600,
        }),
    ]
}

/// Per-parameter accuracy row.
#[derive(Debug, Clone)]
pub struct ParamRow {
    pub param: ParamId,
    pub name: String,
    pub distinct: usize,
    /// Accuracy per learner, in [`LEARNERS`] order.
    pub accuracy: [f64; 5],
}

/// One market's results.
#[derive(Debug, Clone)]
pub struct MarketResult {
    pub market_name: String,
    pub timezone: &'static str,
    pub carriers: usize,
    pub rows: Vec<ParamRow>,
}

impl MarketResult {
    /// Macro-average per learner over all parameters (Table 4 cell).
    pub fn macro_accuracy(&self) -> [f64; 5] {
        let mut acc = [0.0; 5];
        for row in &self.rows {
            for (a, r) in acc.iter_mut().zip(row.accuracy) {
                *a += r;
            }
        }
        for a in &mut acc {
            *a /= self.rows.len().max(1) as f64;
        }
        acc
    }
}

/// Runs the five global learners over the four timezone markets.
pub fn run_global_learners(opts: &RunOptions) -> Vec<MarketResult> {
    run_global_learners_filtered(opts, None)
}

/// Like [`run_global_learners`], restricted to a parameter subset. The
/// full catalog is expensive under `cargo test` (the MLP dominates), so
/// tests exercise the machinery on a few parameters; `None` runs all 65.
pub fn run_global_learners_filtered(
    opts: &RunOptions,
    params: Option<&[ParamId]>,
) -> Vec<MarketResult> {
    let net = network(opts, NetScale::small());
    let snap = &net.snapshot;

    // One market per timezone, as in Table 3.
    let mut picks = Vec::new();
    for tz in Timezone::ALL {
        if let Some(m) = snap.markets.iter().find(|m| m.timezone == tz) {
            picks.push(m.id);
        }
    }

    picks
        .iter()
        .enumerate()
        .map(|(mi, &m)| {
            let scope = Scope::market(snap, m);
            let cf = CfModel::fit_with(
                snap,
                &scope,
                CfConfig::default(),
                auric_core::FitOptions {
                    obs: opts.obs.clone(),
                    threads: None,
                    key_cache: None,
                },
            );
            let cf_report = evaluate_cf(snap, &scope, &cf, false);
            let param_ids: Vec<ParamId> = match params {
                Some(ps) => ps.to_vec(),
                None => snap.catalog.param_ids().collect(),
            };
            let budget = classic_row_budget();
            let rows = parallel_map(param_ids.len(), |i| {
                let param = param_ids[i];
                let pi = param.index();
                let data = subsample(dataset_for_param(snap, &scope, param), budget);
                let learners = classic_learners();
                let mut accuracy = [0.0; 5];
                for (li, learner) in learners.iter().enumerate() {
                    accuracy[li] =
                        cross_val_accuracy(learner.as_ref(), &data, 3, opts.seed ^ pi as u64);
                }
                accuracy[4] = cf_report.per_param[pi].accuracy();
                ParamRow {
                    param,
                    name: snap.catalog.def(param).name.clone(),
                    distinct: distinct_in_scope(snap, &scope, param),
                    accuracy,
                }
            });
            MarketResult {
                market_name: format!("Market {}", mi + 1),
                timezone: snap.market(m).timezone.label(),
                carriers: scope.n_carriers(),
                rows,
            }
        })
        .collect()
}

/// Table 4 — average accuracy of the five global learners per market.
pub fn table4(opts: &RunOptions) -> ExpOutput {
    let results = run_global_learners(opts);
    let mut table = TextTable::new(
        std::iter::once("".to_string())
            .chain(LEARNERS.iter().map(|s| s.to_string()))
            .collect::<Vec<String>>(),
    );
    let mut json_rows = Vec::new();
    let mut all = [0.0; 5];
    for r in &results {
        let acc = r.macro_accuracy();
        table.row(
            std::iter::once(r.market_name.clone())
                .chain(acc.iter().map(|&a| pct(a)))
                .collect::<Vec<String>>(),
        );
        json_rows.push(json!({
            "market": r.market_name,
            "timezone": r.timezone,
            "accuracy": LEARNERS.iter().zip(acc).map(|(l, a)| json!({"learner": l, "accuracy": a})).collect::<Vec<_>>(),
        }));
        for (t, a) in all.iter_mut().zip(acc) {
            *t += a;
        }
    }
    for a in &mut all {
        *a /= results.len().max(1) as f64;
    }
    table.row(
        std::iter::once("All four".to_string())
            .chain(all.iter().map(|&a| pct(a)))
            .collect::<Vec<String>>(),
    );

    let cf_wins = all[4] >= all[..4].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let text = format!(
        "Table 4 — average accuracy of five global learners (macro over 65 parameters)\n\
         (paper, all four: RF 92.11  kNN 91.18  DT 91.68  DNN 91.70  CF 95.48)\n\
         measured: collaborative filtering {} the classic learners\n\n{}",
        if cf_wins {
            "outperforms"
        } else {
            "does NOT outperform"
        },
        table.render()
    );
    ExpOutput {
        id: "table4".into(),
        title: "Table 4 — five global learners × four markets".into(),
        text,
        json: json!({
            "markets": json_rows,
            "all_four": LEARNERS.iter().zip(all).map(|(l, a)| json!({"learner": l, "accuracy": a})).collect::<Vec<_>>(),
            "cf_wins": cf_wins,
        }),
    }
}

/// Fig. 10 — per-parameter accuracy of the five global learners per
/// market, reverse-sorted by variability.
pub fn fig10(opts: &RunOptions) -> ExpOutput {
    let results = run_global_learners(opts);
    let mut text = String::from(
        "Fig. 10 — per-parameter accuracy of five global learners, by market\n\
         (paper: accuracy drops as variability rises; learners correlate)\n\n",
    );
    let mut json_markets = Vec::new();
    for r in &results {
        let mut rows = r.rows.clone();
        rows.sort_by(|a, b| b.distinct.cmp(&a.distinct).then(a.name.cmp(&b.name)));
        let mut table = TextTable::new(vec![
            "Parameter",
            "distinct",
            "RF",
            "kNN",
            "DT",
            "DNN",
            "CF",
        ]);
        for row in &rows {
            table.row(vec![
                row.name.clone(),
                row.distinct.to_string(),
                pct(row.accuracy[0]),
                pct(row.accuracy[1]),
                pct(row.accuracy[2]),
                pct(row.accuracy[3]),
                pct(row.accuracy[4]),
            ]);
        }
        // The paper's headline correlation: accuracy vs variability.
        let (hi_var, lo_var): (Vec<&ParamRow>, Vec<&ParamRow>) =
            rows.iter().partition(|x| x.distinct > 10);
        let mean = |xs: &[&ParamRow]| -> f64 {
            if xs.is_empty() {
                return 1.0;
            }
            xs.iter().map(|x| x.accuracy[4]).sum::<f64>() / xs.len() as f64
        };
        text.push_str(&format!(
            "{} ({} carriers, {} timezone) — CF accuracy: high-variability params {} vs low {}\n{}\n",
            r.market_name,
            r.carriers,
            r.timezone,
            pct(mean(&hi_var)),
            pct(mean(&lo_var)),
            table.render()
        ));
        json_markets.push(json!({
            "market": r.market_name,
            "rows": rows.iter().map(|x| json!({
                "param": x.name,
                "distinct": x.distinct,
                "accuracy": x.accuracy.to_vec(),
            })).collect::<Vec<_>>(),
        }));
    }
    ExpOutput {
        id: "fig10".into(),
        title: "Fig. 10 — per-parameter accuracy of five global learners".into(),
        text,
        json: json!({ "markets": json_markets, "learners": LEARNERS }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::TuningKnobs;

    fn tiny_opts() -> RunOptions {
        RunOptions {
            scale: Some(NetScale::tiny()),
            knobs: TuningKnobs::default(),
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn runner_produces_per_market_rows() {
        // Tiny scale has 2 markets (2 timezones present). Restricted to
        // three parameters: the full catalog is a release-mode workload
        // (`auric-eval table4`), not a unit test.
        let params = [ParamId(0), ParamId(5), ParamId(40)];
        let results = run_global_learners_filtered(&tiny_opts(), Some(&params));
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.rows.len(), 3);
            for row in &r.rows {
                for a in row.accuracy {
                    assert!((0.0..=1.0).contains(&a));
                }
            }
        }
    }

    #[test]
    fn capped_wrapper_subsamples() {
        let rows: Vec<Vec<u16>> = (0..100).map(|i| vec![(i % 3) as u16]).collect();
        let values: Vec<u16> = (0..100).map(|i| (i % 3) as u16 * 5).collect();
        let data = Dataset::new(rows, values, None);
        let capped = Capped {
            inner: DecisionTree::paper(),
            max_rows: 10,
        };
        let model = capped.fit(&data);
        // Even from 10 rows the clean signal is learnable.
        assert_eq!(model.predict(&[0]), 0);
        assert_eq!(model.predict(&[2]), 10);
    }
}
