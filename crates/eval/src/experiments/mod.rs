//! One module per paper artifact, plus the ablations. Shared plumbing
//! lives here: network generation, per-market model fitting, and distinct
//! value counting.

pub mod ablation;
pub mod chaos;
pub mod dataset;
pub mod global_learners;
pub mod kpi_loop;
pub mod local_learner;
pub mod mismatch_labels;
pub mod operations;
pub mod serve_batch;
pub mod stream_ingest;
pub mod variability;

use crate::RunOptions;
use auric_core::{CfConfig, CfModel, FitOptions, Scope, SharedKeyColumns};
use auric_model::{NetworkSnapshot, ParamId, ParamKind};
use auric_netgen::{generate, GeneratedNetwork, NetScale};
use auric_obs::Recorder;

/// Generates the experiment network: the option override, else `default`.
pub fn network(opts: &RunOptions, default: NetScale) -> GeneratedNetwork {
    let scale = opts.scale.unwrap_or(default).with_seed(opts.seed);
    generate(&scale, &opts.knobs)
}

/// Fits one CF model per market (the paper's per-market methodology).
/// Returned in market order. Fit metrics land on `obs`, which stays
/// attached to each model so recommendation metrics follow.
pub fn fit_per_market(
    snapshot: &NetworkSnapshot,
    config: CfConfig,
    obs: &Recorder,
) -> Vec<(Scope, CfModel)> {
    let span = obs.span("eval.fit_per_market");
    // Key columns span the whole snapshot, not the fit scope, so per-market
    // fits that land on the same (kind, ordered layout) can reuse them.
    let key_cache = SharedKeyColumns::new();
    let models = snapshot
        .markets
        .iter()
        .map(|m| {
            let scope = Scope::market(snapshot, m.id);
            let opts = FitOptions {
                obs: obs.clone(),
                threads: None,
                key_cache: Some(key_cache.clone()),
            };
            let model = CfModel::fit_with(snapshot, &scope, config, opts);
            (scope, model)
        })
        .collect();
    span.close();
    models
}

/// Maps `f` over `0..n` in parallel, preserving order. The workhorse for
/// per-parameter fan-out in the heavy experiments.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let n_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4)
        .min(n);
    let chunk_len = n.div_ceil(n_threads);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for (t, chunk) in out.chunks_mut(chunk_len).enumerate() {
            let base = t * chunk_len;
            let f = &f;
            s.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    });
    out.into_iter().map(Option::unwrap).collect()
}

/// Number of distinct values `param` takes over an explicit slot list
/// (carrier indices for singular, pair indices for pair-wise).
pub fn distinct_in_scope(snapshot: &NetworkSnapshot, scope: &Scope, param: ParamId) -> usize {
    match snapshot.catalog.def(param).kind {
        ParamKind::Singular => snapshot
            .config
            .distinct_values(param, scope.carriers.iter().map(|c| c.index())),
        ParamKind::Pairwise => snapshot
            .config
            .distinct_values(param, scope.pairs.iter().map(|&p| p as usize)),
    }
}

/// Network-wide distinct values per parameter, in catalog order.
pub fn distinct_network_wide(snapshot: &NetworkSnapshot) -> Vec<usize> {
    let whole = Scope::whole(snapshot);
    snapshot
        .catalog
        .param_ids()
        .map(|p| distinct_in_scope(snapshot, &whole, p))
        .collect()
}

/// The concrete (grid) values of `param` over a scope, for the skewness
/// analysis.
pub fn concrete_values(snapshot: &NetworkSnapshot, scope: &Scope, param: ParamId) -> Vec<f64> {
    let range = snapshot.catalog.def(param).range;
    match snapshot.catalog.def(param).kind {
        ParamKind::Singular => scope
            .carriers
            .iter()
            .map(|&c| range.value(snapshot.config.value(param, c)))
            .collect(),
        ParamKind::Pairwise => scope
            .pairs
            .iter()
            .map(|&q| range.value(snapshot.config.pair_value(param, q)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::TuningKnobs;

    #[test]
    fn helpers_are_consistent() {
        let opts = RunOptions {
            scale: None,
            knobs: TuningKnobs::none(),
            seed: 3,
            ..Default::default()
        };
        let net = network(&opts, NetScale::tiny());
        let snap = &net.snapshot;
        let models = fit_per_market(snap, CfConfig::default(), &opts.obs);
        assert_eq!(models.len(), snap.markets.len());
        let distinct = distinct_network_wide(snap);
        assert_eq!(distinct.len(), snap.catalog.len());
        // Per-market distinct never exceeds network-wide distinct.
        for (m, (scope, _)) in snap.markets.iter().zip(&models) {
            for p in snap.catalog.param_ids() {
                assert!(
                    distinct_in_scope(snap, scope, p) <= distinct[p.index()],
                    "market {} param {p}",
                    m.name
                );
            }
        }
        // Concrete values land on each parameter's grid.
        let whole = Scope::whole(snap);
        for p in snap.catalog.param_ids().take(5) {
            let vals = concrete_values(snap, &whole, p);
            let range = snap.catalog.def(p).range;
            assert!(vals.iter().all(|&v| range.contains(v)));
        }
    }
}
