//! `ops-chaos` — fault-rate × retry-policy sweep over the SmartLaunch
//! pipeline (ours; the paper only *counts* its two fall-out causes).
//!
//! Each cell replays the same launch campaign through a seeded
//! [`FaultInjector`] at a uniform fault rate, under one of three retry
//! postures: the paper-faithful one-shot pipeline, bounded retries with
//! backoff, and retries plus batch splitting. Reported per cell:
//! fall-outs by cause, launches recovered by the resilience layer, and
//! the invariant-checker verdict (which must be clean everywhere).

use crate::experiments::network;
use crate::render::{pct, TextTable};
use crate::{ExpOutput, RunOptions};
use auric_core::{CfConfig, CfModel, FitOptions, Scope};
use auric_ems::{
    sample_campaign_with_post_checks, Ems, EmsSettings, FaultInjector, FaultPlan, InvariantChecker,
    LaunchPolicy, RetryPolicy, SmartLaunch, VendorConfigSource,
};
use auric_model::{CarrierId, NetworkSnapshot, ParamId, ValueIdx};
use auric_netgen::tuning::singular_key;
use auric_netgen::{LatentRule, NetScale};
use serde_json::json;

/// Vendor initial configuration derived from the latent engineering
/// rules (same source as `table5`).
struct RuleVendor<'a> {
    snapshot: &'a NetworkSnapshot,
    rules: &'a [LatentRule],
}

impl VendorConfigSource for RuleVendor<'_> {
    fn initial_value(&self, carrier: CarrierId, param: ParamId) -> ValueIdx {
        let rule = &self.rules[param.index()];
        rule.value_for(&singular_key(rule, self.snapshot.carrier(carrier)))
    }
}

const FAULT_RATES: [f64; 4] = [0.0, 0.05, 0.15, 0.30];

fn policies() -> [(&'static str, RetryPolicy); 3] {
    [
        ("no-retry", RetryPolicy::none()),
        ("retry", RetryPolicy::retrying()),
        ("retry+split", RetryPolicy::resilient()),
    ]
}

/// The chaos sweep.
pub fn ops_chaos(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::small());
    let snap = &net.snapshot;
    let scope = Scope::whole(snap);
    let fit_span = opts.obs.span("exp.ops-chaos/fit");
    let model = CfModel::fit_with(
        snap,
        &scope,
        CfConfig::default(),
        FitOptions {
            obs: opts.obs.clone(),
            threads: None,
            key_cache: None,
        },
    );
    fit_span.close();
    let vendor = RuleVendor {
        snapshot: snap,
        rules: &net.truth.rules,
    };

    // One campaign, replayed identically through every cell. The small
    // execution limit (as in table5) makes oversized batches a real
    // hazard, so the split policy has timeouts to recover.
    let n_launches = 300.min(snap.n_carriers());
    let plans = sample_campaign_with_post_checks(snap, n_launches, 0.05, 0.04, opts.seed ^ 0xC4A05);
    let settings = EmsSettings {
        max_executions_per_push: 9,
    };

    let mut table = TextTable::new(vec![
        "fault rate",
        "policy",
        "recommended",
        "implemented",
        "recovered",
        "off-band",
        "timeout",
        "rejected",
        "unknown",
        "stuck",
        "violations",
    ]);
    let mut cells = Vec::new();
    let mut total_violations = 0usize;
    for (fi, &rate) in FAULT_RATES.iter().enumerate() {
        for (pi, (policy_name, retry)) in policies().into_iter().enumerate() {
            let plan = FaultPlan::uniform(
                opts.seed ^ (0xFA_0715 + 31 * fi as u64 + 7 * pi as u64),
                rate,
            );
            let injector = FaultInjector::new(Ems::new(settings), plan).with_obs(opts.obs.clone());
            let mut pipeline =
                SmartLaunch::with_backend(snap, &model, injector, LaunchPolicy::default(), retry)
                    .with_obs(opts.obs.clone());
            let report = pipeline.run_campaign(&plans, &vendor);
            let violations = InvariantChecker::check(&pipeline.trace, &report, &pipeline.ems);
            total_violations += violations.len();
            let fired = pipeline.ems.fired();
            table.row(vec![
                format!("{:.0}%", rate * 100.0),
                policy_name.to_string(),
                report.changes_recommended.to_string(),
                format!(
                    "{} ({}%)",
                    report.changes_implemented,
                    pct(report.implemented_rate())
                ),
                report.recovered.to_string(),
                report.fallouts_off_band.to_string(),
                report.fallouts_timeout.to_string(),
                report.fallouts_push_rejected.to_string(),
                report.fallouts_unknown_carrier.to_string(),
                report.fallouts_stuck_rollback.to_string(),
                violations.len().to_string(),
            ]);
            cells.push(json!({
                "fault_rate": rate,
                "policy": policy_name,
                "launched": report.launched,
                "changes_recommended": report.changes_recommended,
                "changes_implemented": report.changes_implemented,
                "recovered": report.recovered,
                "rollbacks": report.rollbacks,
                "fallouts": json!({
                    "off_band": report.fallouts_off_band,
                    "timeout": report.fallouts_timeout,
                    "push_rejected": report.fallouts_push_rejected,
                    "unknown_carrier": report.fallouts_unknown_carrier,
                    "stuck_rollback": report.fallouts_stuck_rollback,
                    "total": report.fallouts(),
                }),
                "faults_fired": json!({
                    "transient": fired.transient_failures,
                    "partial": fired.partial_applications,
                    "dropped_registrations": fired.dropped_registrations,
                    "spurious_unlocks": fired.spurious_unlocks,
                    "latency_timeouts": fired.latency_timeouts,
                }),
                "backoff_ms": pipeline.elapsed_backoff_ms(),
                "invariant_violations": violations.len(),
            }));
        }
    }

    let text = format!(
        "ops-chaos — fault-injected SmartLaunch: fall-out vs recovery\n\
         (uniform per-fault rate; same {n}-launch campaign replayed per cell;\n\
         EMS execution limit {lim}; invariant checker runs on every cell)\n\n{t}\n\
         total invariant violations: {v}",
        n = plans.len(),
        lim = settings.max_executions_per_push,
        t = table.render(),
        v = total_violations,
    );
    ExpOutput {
        id: "ops-chaos".into(),
        title: "ops-chaos — fault-rate × retry-policy resilience sweep".into(),
        text,
        json: json!({
            "launches": plans.len(),
            "max_executions_per_push": settings.max_executions_per_push,
            "fault_rates": FAULT_RATES,
            "cells": cells,
            "total_invariant_violations": total_violations,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::TuningKnobs;

    #[test]
    fn chaos_sweep_shape_and_invariants() {
        let opts = RunOptions {
            scale: Some(NetScale::tiny()),
            knobs: TuningKnobs::default(),
            seed: 11,
            ..Default::default()
        };
        let out = ops_chaos(&opts);
        assert_eq!(out.json["total_invariant_violations"].as_u64(), Some(0));
        let cells = out.json["cells"].as_array().unwrap();
        assert_eq!(cells.len(), FAULT_RATES.len() * 3);
        for cell in cells {
            let rec = cell["changes_recommended"].as_u64().unwrap();
            let imp = cell["changes_implemented"].as_u64().unwrap();
            let fall = cell["fallouts"]["total"].as_u64().unwrap();
            assert_eq!(rec, imp + fall, "accounting conserves launches");
        }
        // At zero faults nothing injected can fall out: no rejected
        // pushes, no unknown carriers, no stuck rollbacks — and the
        // splitting policy also absorbs structural timeouts. Off-band
        // unlocks remain (they are planned, not injected).
        for cell in cells.iter().take(3) {
            assert_eq!(cell["fallouts"]["push_rejected"].as_u64(), Some(0));
            assert_eq!(cell["fallouts"]["unknown_carrier"].as_u64(), Some(0));
            assert_eq!(cell["fallouts"]["stuck_rollback"].as_u64(), Some(0));
        }
        assert_eq!(
            cells[2]["fallouts"]["timeout"].as_u64(),
            Some(0),
            "retry+split at zero faults absorbs structural timeouts"
        );
    }
}
