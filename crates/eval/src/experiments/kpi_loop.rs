//! `kpi_loop` — the closed §6 feedback loop, end to end (ours).
//!
//! The scenario Table 5's injected post-check flags cannot express: a bad
//! engineering practice that the model *learned from the data*. We sweep
//! a hostile `qRxLevMin` (the coverage gate at its maximum, -44 dBm)
//! across one market's standing carriers and fit Auric on that poisoned
//! network. Local voting now faithfully recommends the hostile value for
//! every launch in the market — the data said so — and a pipeline without
//! KPI feedback implements it, re-creating the coverage holes on every
//! launched carrier.
//!
//! With the loop closed, the same campaign self-corrects:
//!
//! 1. [`KpiPostCheck`] simulates traffic before and after each change set
//!    and flags the degradation;
//! 2. SmartLaunch rolls the launch back to the vendor configuration
//!    (PR-2's transactional journal);
//! 3. the rolled-back `(parameter, value)` pairs accumulate strikes in
//!    the [`Quarantine`] ledger and, once quarantined, are suppressed
//!    from later launches without ever being pushed;
//! 4. after the expiry rounds the pair is released (the appeal),
//!    re-offends, and is re-quarantined — visible as a rollback resurgence
//!    in the round table.
//!
//! Deterministic throughout: seeded generation, seeded traffic, seeded
//! campaign; with `--obs` the metrics report is byte-identical across
//! runs (CI diffs two of them).

use crate::experiments::network;
use crate::render::TextTable;
use crate::{ExpOutput, RunOptions};
use auric_core::{CfConfig, CfModel, FitOptions, Scope};
use auric_ems::{
    EmsSettings, LaunchOutcome, LaunchPlan, LaunchRecord, Quarantine, QuarantinePolicy,
    SmartLaunch, VendorConfigSource,
};
use auric_kpi::{simulate, KpiPostCheck, TrafficModel};
use auric_model::{CarrierId, NetworkSnapshot, ParamId, Provenance, ValueIdx};
use auric_netgen::NetScale;
use serde_json::json;

/// Campaign rounds to run; with `EXPIRY_ROUNDS = 2` the quarantined pair
/// is released at the start of round 4 and re-offends there.
const ROUNDS: u64 = 4;
const STRIKES: u32 = 2;
const EXPIRY_ROUNDS: u64 = 2;
/// Neighborhood mean-health drop a launch may cost before rollback.
const DEGRADATION_THRESHOLD: f64 = 0.05;

/// Vendor integrators configure launching carriers straight from the
/// catalog defaults — the clean slate the rollback restores.
struct DefaultVendor<'a> {
    snapshot: &'a NetworkSnapshot,
}

impl VendorConfigSource for DefaultVendor<'_> {
    fn initial_value(&self, _carrier: CarrierId, param: ParamId) -> ValueIdx {
        self.snapshot.catalog.def(param).default
    }
}

/// The network as the campaign left it: every launched carrier starts
/// from the vendor (catalog-default) configuration, and only launches
/// whose changes were *implemented and kept* retain them — rollbacks and
/// suppressions leave the vendor values standing.
fn operated(snap: &NetworkSnapshot, trace: &[LaunchRecord]) -> NetworkSnapshot {
    let mut out = snap.clone();
    for rec in trace {
        for p in out.catalog.singular_ids() {
            let d = out.catalog.def(p).default;
            out.config.set_value(p, rec.carrier, d, Provenance::Noise);
        }
        if let LaunchOutcome::ChangesImplemented { .. } = rec.outcome {
            for c in &rec.changes {
                out.config
                    .set_value(c.param, rec.carrier, c.value, Provenance::Noise);
            }
        }
    }
    out
}

/// Mean simulated health over `carriers`.
fn mean_health(snap: &NetworkSnapshot, traffic: &TrafficModel, carriers: &[CarrierId]) -> f64 {
    let report = simulate(snap, traffic).expect("generated catalog has the simulator parameters");
    let sum: f64 = carriers
        .iter()
        .map(|&c| report.kpi(c).map_or(1.0, |k| k.health()))
        .sum();
    sum / carriers.len().max(1) as f64
}

/// One campaign round's accounting.
struct RoundStats {
    implemented: usize,
    rollbacks: usize,
    suppressed: usize,
    quarantined_pairs: usize,
    health: f64,
}

/// The closed-loop campaign (§6): poisoned market, KPI post-check,
/// auto-rollback, quarantine with expiry.
pub fn kpi_loop(opts: &RunOptions) -> ExpOutput {
    let net = network(opts, NetScale::tiny());
    let mut snap = net.snapshot;

    // The victims: one whole market's standing carriers.
    let market = snap.markets[0].id;
    let victims: Vec<CarrierId> = snap.carriers_in_market(market).to_vec();

    // The poison: a bad engineering rule swept the coverage gate to its
    // maximum across the market. The model will be fit on this.
    let q = snap
        .catalog
        .by_name("qRxLevMin")
        .expect("generated catalog has qRxLevMin");
    let hostile = (snap.catalog.def(q).range.n_values() - 1) as ValueIdx;
    for &c in &victims {
        snap.config.set_value(q, c, hostile, Provenance::Noise);
    }

    let fit_span = opts.obs.span("exp.kpi_loop/fit");
    let scope = Scope::whole(&snap);
    let model = CfModel::fit_with(
        &snap,
        &scope,
        CfConfig::default(),
        FitOptions {
            obs: opts.obs.clone(),
            threads: None,
            key_cache: None,
        },
    );
    fit_span.close();

    let vendor = DefaultVendor { snapshot: &snap };
    let plans: Vec<LaunchPlan> = victims
        .iter()
        .map(|&c| LaunchPlan {
            carrier: c,
            off_band_unlock: false,
            post_check_failed: false,
        })
        .collect();
    let traffic = TrafficModel::default();

    // Reference points: the poisoned network as-is, the recovery target
    // (every victim relaunched on vendor defaults), and the open-loop arm
    // (the same campaign with no KPI feedback — every learned change
    // lands, hostile ones included).
    let poisoned_health = mean_health(&snap, &traffic, &victims);
    let all_defaults: Vec<LaunchRecord> = victims
        .iter()
        .map(|&c| LaunchRecord {
            carrier: c,
            changes: Vec::new(),
            vendor_initial: Vec::new(),
            outcome: LaunchOutcome::NoChangesNeeded,
        })
        .collect();
    let vendor_health = mean_health(&operated(&snap, &all_defaults), &traffic, &victims);
    let mut open_loop = SmartLaunch::new(
        &snap,
        &model,
        EmsSettings {
            max_executions_per_push: 9,
        },
    );
    open_loop.run_campaign(&plans, &vendor);
    let open_loop_health = mean_health(&operated(&snap, &open_loop.trace), &traffic, &victims);

    // The closed loop: KPI post-check + quarantine, multiple rounds.
    let mut pipeline = SmartLaunch::new(
        &snap,
        &model,
        EmsSettings {
            max_executions_per_push: 9,
        },
    )
    .with_obs(opts.obs.clone())
    .with_post_check(Box::new(KpiPostCheck::new(
        &snap,
        traffic,
        DEGRADATION_THRESHOLD,
    )))
    .with_quarantine(Quarantine::new(QuarantinePolicy {
        enabled: true,
        strikes: STRIKES,
        expiry_rounds: EXPIRY_ROUNDS,
    }));

    let span = opts.obs.span("exp.kpi_loop/campaign");
    let mut rounds: Vec<RoundStats> = Vec::new();
    let mut trace_start = 0usize;
    let mut suppressed_before = 0usize;
    for _ in 0..ROUNDS {
        let report = pipeline.run_campaign(&plans, &vendor);
        let trace = &pipeline.trace[trace_start..];
        trace_start = pipeline.trace.len();
        let health = mean_health(&operated(&snap, trace), &traffic, &victims);
        rounds.push(RoundStats {
            implemented: report.changes_implemented - report.rollbacks,
            rollbacks: report.rollbacks,
            suppressed: pipeline.suppressed_total - suppressed_before,
            quarantined_pairs: pipeline
                .quarantine
                .entries()
                .iter()
                .filter(|e| e.quarantined_at.is_some())
                .count(),
            health,
        });
        suppressed_before = pipeline.suppressed_total;
    }
    span.close();

    let mut table = TextTable::new(vec![
        "Round",
        "implemented",
        "rolled back",
        "suppressed",
        "quarantined pairs",
        "mean health",
    ]);
    for (i, r) in rounds.iter().enumerate() {
        table.row(vec![
            (i + 1).to_string(),
            r.implemented.to_string(),
            r.rollbacks.to_string(),
            r.suppressed.to_string(),
            r.quarantined_pairs.to_string(),
            format!("{:.3}", r.health),
        ]);
    }
    let text = format!(
        "KPI feedback loop — poisoned market, auto-rollback and quarantine (§6)\n\
         market 0: {} carriers, qRxLevMin swept to -44 dBm before fitting\n\n\
         mean health  poisoned network:        {:.3}\n\
         mean health  open loop (no feedback): {:.3}\n\
         mean health  vendor defaults (target): {:.3}\n\n{}",
        victims.len(),
        poisoned_health,
        open_loop_health,
        vendor_health,
        table.render()
    );

    ExpOutput {
        id: "kpi_loop".into(),
        title: "KPI feedback loop — auto-rollback + quarantine campaign".into(),
        text,
        json: json!({
            "market_carriers": victims.len(),
            "poisoned_health": poisoned_health,
            "open_loop_health": open_loop_health,
            "vendor_health": vendor_health,
            "threshold": DEGRADATION_THRESHOLD,
            "strikes": STRIKES,
            "expiry_rounds": EXPIRY_ROUNDS,
            "suppressed_total": pipeline.suppressed_total,
            "rounds": rounds.iter().enumerate().map(|(i, r)| json!({
                "round": i + 1,
                "implemented": r.implemented,
                "rollbacks": r.rollbacks,
                "suppressed": r.suppressed,
                "quarantined_pairs": r.quarantined_pairs,
                "mean_health": r.health,
            })).collect::<Vec<_>>(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::TuningKnobs;

    #[test]
    fn closed_loop_recovers_where_open_loop_degrades() {
        let opts = RunOptions {
            scale: Some(NetScale::tiny()),
            knobs: TuningKnobs::default(),
            seed: 7,
            ..Default::default()
        };
        let out = kpi_loop(&opts);
        let poisoned = out.json["poisoned_health"].as_f64().unwrap();
        let open_loop = out.json["open_loop_health"].as_f64().unwrap();
        let vendor = out.json["vendor_health"].as_f64().unwrap();
        let rounds = out.json["rounds"].as_array().unwrap();
        assert_eq!(rounds.len(), ROUNDS as usize);

        // The poison is real: the open-loop campaign re-implements the
        // learned hostile value and lands well below the vendor target.
        assert!(
            open_loop < vendor - 0.02,
            "open loop {open_loop} vs vendor {vendor}"
        );
        assert!(poisoned < vendor - 0.02);

        // Round 1: the KPI post-check catches the degradation and rolls
        // back; the strike threshold then quarantines the pair, so later
        // launches in the round are suppressed without a push.
        let r1 = &rounds[0];
        assert!(r1["rollbacks"].as_u64().unwrap() > 0, "no rollback: {r1:?}");
        assert!(r1["quarantined_pairs"].as_u64().unwrap() > 0);
        assert!(r1["suppressed"].as_u64().unwrap() > 0);

        // Round 2 runs under quarantine: suppression instead of rollback.
        let r2 = &rounds[1];
        assert_eq!(r2["rollbacks"].as_u64().unwrap(), 0, "round 2: {r2:?}");
        assert!(r2["suppressed"].as_u64().unwrap() > 0);

        // The appeal: round 4 begins after the expiry, releases the pair,
        // and the re-offense is caught (and re-quarantined) all over.
        let r4 = &rounds[3];
        assert!(
            r4["rollbacks"].as_u64().unwrap() > 0,
            "released pair must re-offend: {r4:?}"
        );

        // Every closed-loop round ends healthier than the open loop, and
        // near the vendor target — the recovery the loop exists for.
        for r in rounds {
            let h = r["mean_health"].as_f64().unwrap();
            assert!(h > open_loop + 0.02, "round health {h} vs open loop");
            assert!(h > vendor - 0.05, "round health {h} vs vendor {vendor}");
        }
    }
}
