//! Plain-text rendering: aligned tables and horizontal bar series, so an
//! experiment's stdout reads like the paper's tables and figures.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders a labeled horizontal bar chart (one row per item), scaled to
/// `width` characters at `max` — the text stand-in for the paper's bar
/// figures.
pub fn bar_series(items: &[(String, f64)], max: f64, width: usize) -> String {
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let frac = if max > 0.0 {
            (v / max).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let bars = (frac * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$}  {:>10.3}  |{}{}|\n",
            v,
            "#".repeat(bars),
            " ".repeat(width - bars),
        ));
    }
    out
}

/// Formats a ratio as a percentage with two decimals, like the paper's
/// accuracy tables.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["a-much-longer-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines
            .iter()
            .all(|l| l.len() == lines[0].len() || l.trim_end().len() <= lines[0].len()));
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].contains("12345"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn bars_scale_to_max() {
        let s = bar_series(
            &[
                ("full".into(), 10.0),
                ("half".into(), 5.0),
                ("zero".into(), 0.0),
            ],
            10.0,
            10,
        );
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("##########"));
        assert!(lines[1].contains("#####"));
        assert!(!lines[2].contains('#'));
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.9548), "95.48");
        assert_eq!(pct(1.0), "100.00");
    }
}
