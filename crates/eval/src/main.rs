//! `auric-eval` — regenerate the paper's tables and figures.
//!
//! ```text
//! auric-eval <experiment>... [--scale tiny|small|medium|full]
//!            [--seed N] [--json DIR] [--obs] [--list]
//! auric-eval all [--scale ...]
//! ```
//!
//! Each experiment prints its report to stdout; with `--json DIR` the
//! machine-readable result is written to `DIR/<id>.json` as well. With
//! `--obs` each experiment runs under a fresh deterministic recorder and
//! its metrics report is written to `DIR/<id>.obs.json` (or printed when
//! no `--json` directory is given); two runs at the same scale and seed
//! produce byte-identical obs reports.

use auric_eval::{run_experiment, RunOptions, EXPERIMENTS};
use auric_netgen::NetScale;
use auric_obs::Recorder;
use std::process::ExitCode;

fn usage() -> String {
    format!(
        "usage: auric-eval <experiment>... [--scale tiny|small|medium|full] [--seed N] [--json DIR]\n\
         experiments: all, {}",
        EXPERIMENTS.join(", ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut opts = RunOptions::default();
    let mut json_dir: Option<String> = None;
    let mut with_obs = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                println!("{}", EXPERIMENTS.join("\n"));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--scale" => {
                let Some(v) = it.next() else {
                    eprintln!("--scale needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                opts.scale = Some(match v.as_str() {
                    "tiny" => NetScale::tiny(),
                    "small" => NetScale::small(),
                    "medium" => NetScale::medium(),
                    "full" => NetScale::full(),
                    other => {
                        eprintln!("unknown scale {other:?}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                });
            }
            "--seed" => {
                let Some(v) = it.next() else {
                    eprintln!("--seed needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match v.parse() {
                    Ok(s) => opts.seed = s,
                    Err(e) => {
                        eprintln!("bad seed {v:?}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => {
                let Some(v) = it.next() else {
                    eprintln!("--json needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                json_dir = Some(v.clone());
            }
            "--obs" => with_obs = true,
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if names.iter().any(|n| n == "all") {
        names = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    for name in &names {
        let started = std::time::Instant::now();
        // A fresh recorder per experiment keeps each obs report
        // self-contained; the manual clock makes it deterministic.
        if with_obs {
            opts.obs = Recorder::deterministic();
        }
        match run_experiment(name, &opts) {
            Ok(out) => {
                println!(
                    "==> {} ({:.1}s)\n",
                    out.title,
                    started.elapsed().as_secs_f64()
                );
                println!("{}", out.text);
                if let Some(dir) = &json_dir {
                    let path = format!("{dir}/{}.json", out.id);
                    match serde_json::to_string_pretty(&out.json) {
                        Ok(body) => {
                            if let Err(e) = std::fs::write(&path, body) {
                                eprintln!("cannot write {path}: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                        Err(e) => {
                            eprintln!("cannot serialize {name}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if with_obs {
                    let report = opts.obs.report_json();
                    if let Some(dir) = &json_dir {
                        let path = format!("{dir}/{}.obs.json", out.id);
                        if let Err(e) = std::fs::write(&path, report) {
                            eprintln!("cannot write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    } else {
                        println!("--- obs: {} ---\n{report}", out.id);
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
