//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation from the synthetic network substrate.
//!
//! Each experiment lives in [`experiments`] and produces an
//! [`ExpOutput`]: a rendered ASCII report plus a JSON value for
//! machine-readable archiving (EXPERIMENTS.md records the paper-vs-
//! measured comparison). The `auric-eval` binary dispatches by name:
//!
//! ```text
//! cargo run --release -p auric-eval -- table4 --scale small --seed 7
//! cargo run --release -p auric-eval -- all
//! ```
//!
//! | name            | paper artifact                                  |
//! |-----------------|--------------------------------------------------|
//! | `fig2`          | Fig. 2 — distinct values per parameter           |
//! | `fig3`          | Fig. 3 — distinct values per parameter × market  |
//! | `fig4`          | Fig. 4 — skewness across markets                 |
//! | `table3`        | Table 3 — four-market dataset summary            |
//! | `table4`        | Table 4 — five global learners × four markets    |
//! | `fig10`         | Fig. 10 — per-parameter accuracy, four markets   |
//! | `fig11`         | Fig. 11 — local accuracy of top-variability params |
//! | `global-vs-local` | §4.3.2 — global vs local CF headline           |
//! | `fig12`         | Fig. 12 — mismatch labeling shares               |
//! | `table5`        | Table 5 — SmartLaunch campaign                   |
//! | `ops-chaos`     | fault-rate × retry-policy resilience sweep (ours)|
//! | `kpi_loop`      | §6 closed loop — KPI rollback + quarantine (ours)|
//! | `serve-batch`   | batched serving: coalescing + epoch cache (ours) |
//! | `stream-ingest` | streaming ingestion: incremental fit == refit (ours) |
//! | `ablation-vote` | voting-threshold sweep (ours)                    |
//! | `ablation-alpha`| significance-level sweep (ours)                  |
//! | `ablation-hops` | locality-radius sweep (ours)                     |
//! | `ablation-dependency` | marginal vs conditional selection (ours)   |

pub mod experiments;
pub mod render;

use auric_netgen::{NetScale, TuningKnobs};
use auric_obs::Recorder;
use serde::Serialize;

/// Options shared by every experiment run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Scale override; `None` uses each experiment's own default.
    pub scale: Option<NetScale>,
    pub knobs: TuningKnobs,
    pub seed: u64,
    /// Per-run metrics sink: stage spans, CF fit/recommendation metrics,
    /// SmartLaunch counters. Disabled by default; pass
    /// [`Recorder::deterministic`] for byte-reproducible reports.
    pub obs: Recorder,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            scale: None,
            knobs: TuningKnobs::default(),
            seed: 7,
            obs: Recorder::disabled(),
        }
    }
}

/// One experiment's rendered output.
#[derive(Debug, Clone, Serialize)]
pub struct ExpOutput {
    /// Experiment id, e.g. `"table4"`.
    pub id: String,
    /// Human title, e.g. `"Table 4 — average accuracy of five global learners"`.
    pub title: String,
    /// Rendered ASCII report.
    pub text: String,
    /// Machine-readable result.
    pub json: serde_json::Value,
}

/// The registry of experiment names, in presentation order.
pub const EXPERIMENTS: [&str; 18] = [
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "table4",
    "fig10",
    "global-vs-local",
    "fig11",
    "fig12",
    "table5",
    "ops-chaos",
    "kpi_loop",
    "serve-batch",
    "stream-ingest",
    "ablation-vote",
    "ablation-alpha",
    "ablation-hops",
    "ablation-dependency",
];

/// Runs one experiment by name.
///
/// # Errors
/// Returns an error string for unknown names.
pub fn run_experiment(name: &str, opts: &RunOptions) -> Result<ExpOutput, String> {
    let span = opts.obs.span(&format!("exp.{name}"));
    let out = dispatch(name, opts);
    span.close();
    out
}

fn dispatch(name: &str, opts: &RunOptions) -> Result<ExpOutput, String> {
    match name {
        "table3" => Ok(experiments::dataset::table3(opts)),
        "fig2" => Ok(experiments::variability::fig2(opts)),
        "fig3" => Ok(experiments::variability::fig3(opts)),
        "fig4" => Ok(experiments::variability::fig4(opts)),
        "table4" => Ok(experiments::global_learners::table4(opts)),
        "fig10" => Ok(experiments::global_learners::fig10(opts)),
        "global-vs-local" => Ok(experiments::local_learner::global_vs_local(opts)),
        "fig11" => Ok(experiments::local_learner::fig11(opts)),
        "fig12" => Ok(experiments::mismatch_labels::fig12(opts)),
        "table5" => Ok(experiments::operations::table5(opts)),
        "ops-chaos" => Ok(experiments::chaos::ops_chaos(opts)),
        "kpi_loop" => Ok(experiments::kpi_loop::kpi_loop(opts)),
        "serve-batch" => Ok(experiments::serve_batch::serve_batch(opts)),
        "stream-ingest" => Ok(experiments::stream_ingest::stream_ingest(opts)),
        "ablation-vote" => Ok(experiments::ablation::vote_threshold(opts)),
        "ablation-alpha" => Ok(experiments::ablation::alpha_sweep(opts)),
        "ablation-hops" => Ok(experiments::ablation::hops_sweep(opts)),
        "ablation-dependency" => Ok(experiments::ablation::dependency_selection(opts)),
        other => Err(format!(
            "unknown experiment {other:?}; known: {}",
            EXPERIMENTS.join(", ")
        )),
    }
}
