//! The observability reports of the eval driver must be deterministic:
//! two runs of the same experiment at the same scale and seed, each with
//! a fresh deterministic recorder, produce byte-identical obs JSON.
//!
//! A fast subset covers the instrumented layers — `table5` (CF fit plus
//! the SmartLaunch/EMS campaign), `ops-chaos` (fault injection and
//! retries), `global-vs-local` (per-market fits), `kpi_loop` (the KPI
//! post-check, rollback and quarantine counters), `serve-batch` (the
//! batched serving counters). The full 17-experiment sweep is exercised
//! by `auric-eval all --obs` (see EXPERIMENTS.md); running it twice
//! here would dominate the test suite.

use auric_eval::{run_experiment, RunOptions};
use auric_netgen::NetScale;
use auric_obs::Recorder;

fn obs_report(name: &str) -> String {
    let opts = RunOptions {
        scale: Some(NetScale::tiny()),
        seed: 7,
        obs: Recorder::deterministic(),
        ..Default::default()
    };
    run_experiment(name, &opts).expect("experiment runs");
    opts.obs.report_json()
}

#[test]
fn obs_reports_are_byte_identical_across_runs() {
    for name in [
        "table5",
        "ops-chaos",
        "global-vs-local",
        "kpi_loop",
        "serve-batch",
    ] {
        let a = obs_report(name);
        let b = obs_report(name);
        assert_eq!(a, b, "{name}: obs reports differ between identical runs");

        // Non-trivial: the per-experiment span and the CF fit counters
        // must be present — an empty report would mean the layer was
        // silently left uninstrumented.
        assert!(
            a.contains(&format!("\"exp.{name}\"")),
            "{name}: missing experiment span in {a}"
        );
        assert!(
            a.contains("\"cf.fit.params\""),
            "{name}: missing CF fit counters in {a}"
        );

        // The feedback-loop experiment must surface its verdict,
        // rollback and quarantine counters.
        if name == "kpi_loop" {
            for counter in [
                "\"ems.postcheck.degraded\"",
                "\"ems.postcheck.pass\"",
                "\"ems.quarantine.suppressed\"",
                "\"ems.quarantine.added\"",
                "\"ems.quarantine.released\"",
                "\"ems.rollback.total\"",
            ] {
                assert!(a.contains(counter), "{name}: missing {counter}");
            }
        }

        // The batched-serving experiment must surface its coalescing
        // and epoch-validated-cache counters.
        if name == "serve-batch" {
            for counter in [
                "\"serve.batch.size\"",
                "\"serve.batch.groups\"",
                "\"serve.batch.coalesced\"",
                "\"serve.cache.hit\"",
                "\"serve.cache.miss\"",
                "\"serve.cache.insert\"",
                "\"serve.cache.invalidated\"",
            ] {
                assert!(a.contains(counter), "{name}: missing {counter}");
            }
        }
    }
}

#[test]
fn disabled_recorder_reports_nothing() {
    let opts = RunOptions {
        scale: Some(NetScale::tiny()),
        seed: 7,
        ..Default::default()
    };
    run_experiment("global-vs-local", &opts).expect("experiment runs");
    assert_eq!(
        opts.obs.report_json(),
        "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {},\n  \"spans\": {}\n}"
    );
}
