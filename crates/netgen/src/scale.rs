//! Scale presets and tuning knobs for the generator.

use serde::{Deserialize, Serialize};

/// How big a network to generate.
///
/// The paper's snapshot is 28 markets / ~400K carriers; that is CI-hostile,
/// so sizes are parameterized with presets from unit-test scale up to a
/// shape-faithful "full" scale. Carrier counts follow from eNodeB counts:
/// ~3 faces × 2–4 carriers, i.e. ≈ 7–10 carriers per eNodeB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetScale {
    /// Number of markets (the paper has 28).
    pub n_markets: usize,
    /// Mean number of eNodeBs per market; actual counts vary ±40% by
    /// market so market sizes differ the way Table 3's do.
    pub enbs_per_market: usize,
    /// Master seed; every downstream stage derives its own stream from it.
    pub seed: u64,
}

impl NetScale {
    /// Unit-test scale: 2 markets, a few hundred carriers. Fast enough for
    /// proptest shrinking loops.
    pub fn tiny() -> Self {
        Self {
            n_markets: 2,
            enbs_per_market: 10,
            seed: 7,
        }
    }

    /// Small scale: 4 markets (one per timezone, like Table 3's subset),
    /// ~2–3K carriers.
    pub fn small() -> Self {
        Self {
            n_markets: 4,
            enbs_per_market: 40,
            seed: 7,
        }
    }

    /// Medium scale: all 28 markets, ~10–15K carriers. The eval binary's
    /// default.
    pub fn medium() -> Self {
        Self {
            n_markets: 28,
            enbs_per_market: 30,
            seed: 7,
        }
    }

    /// Full shape: 28 markets, ~60–80K carriers. Slow; used by the
    /// headline experiment runs, not by tests.
    pub fn full() -> Self {
        Self {
            n_markets: 28,
            enbs_per_market: 150,
            seed: 7,
        }
    }

    /// Replaces the seed (each experiment wants its own stream).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for NetScale {
    fn default() -> Self {
        Self::medium()
    }
}

/// Rates of the configuration-perturbing processes layered on top of the
/// engineering rules. Defaults are tuned (empirically, via the eval
/// harness) so the synthetic network lands near the paper's headline
/// numbers: ~4% mismatch rate for the local learner, of which ~28% are
/// stale-trial "good recommendations" and ~5% "update learner" causes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningKnobs {
    /// Probability that a market has geographic tuning pockets
    /// (optimization campaigns) at all.
    pub pocket_prob: f64,
    /// Maximum pockets per market when present.
    pub max_pockets: usize,
    /// How many parameters one pocket campaign tunes together (uniform in
    /// this range). Campaign-style tuning is what concentrates Table 5's
    /// recommended changes on few carriers with many parameters each.
    pub params_per_pocket: (usize, usize),
    /// Pocket radius range in km (uniform).
    pub pocket_radius_km: (f64, f64),
    /// Fraction of pockets whose cause is hidden from the attribute schema
    /// (terrain / propagation — the paper's missing-attribute cause).
    pub hidden_pocket_frac: f64,
    /// Per-parameter probability of having a stale abandoned trial.
    pub stale_trial_prob: f64,
    /// Fraction of a market's value slots a stale trial touched.
    pub stale_trial_frac: f64,
    /// Per-parameter probability of an in-progress certification trial.
    pub live_trial_prob: f64,
    /// Fraction of the trial region's slots flipped so far (kept below the
    /// voting threshold: the paper notes these are "not in the majority").
    pub live_trial_frac: f64,
    /// Per-slot probability of one-off noise.
    pub noise_rate: f64,
}

impl Default for TuningKnobs {
    fn default() -> Self {
        Self {
            pocket_prob: 0.8,
            max_pockets: 2,
            params_per_pocket: (6, 16),
            pocket_radius_km: (2.5, 5.0),
            hidden_pocket_frac: 0.55,
            stale_trial_prob: 0.65,
            stale_trial_frac: 0.018,
            live_trial_prob: 0.30,
            live_trial_frac: 0.35,
            noise_rate: 0.008,
        }
    }
}

impl TuningKnobs {
    /// A perfectly clean network: rules only. Useful for tests that want
    /// learners to reach 100% and for ablations.
    pub fn none() -> Self {
        Self {
            pocket_prob: 0.0,
            max_pockets: 0,
            params_per_pocket: (5, 16),
            pocket_radius_km: (2.0, 6.0),
            hidden_pocket_frac: 0.0,
            stale_trial_prob: 0.0,
            stale_trial_frac: 0.0,
            live_trial_prob: 0.0,
            live_trial_frac: 0.0,
            noise_rate: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let sizes = [
            NetScale::tiny(),
            NetScale::small(),
            NetScale::medium(),
            NetScale::full(),
        ]
        .map(|s| s.n_markets * s.enbs_per_market);
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = NetScale::small();
        let b = a.with_seed(99);
        assert_eq!(a.n_markets, b.n_markets);
        assert_eq!(a.enbs_per_market, b.enbs_per_market);
        assert_eq!(b.seed, 99);
    }

    #[test]
    fn clean_knobs_disable_everything() {
        let k = TuningKnobs::none();
        assert_eq!(k.noise_rate, 0.0);
        assert_eq!(k.pocket_prob, 0.0);
        assert_eq!(k.stale_trial_prob, 0.0);
        assert_eq!(k.live_trial_prob, 0.0);
    }
}
