//! Streaming fleet generation: the same fleet as [`crate::generate`],
//! emitted as an ordered sequence of [`FleetDelta`] events without ever
//! materializing the whole snapshot.
//!
//! Collected into an empty snapshot (via
//! [`auric_model::apply_fleet_deltas`]), the event sequence reproduces
//! `generate(scale, knobs)` **byte for byte** — carriers, X2 graph,
//! configuration values *and* provenance. The pinned differential tests
//! at the bottom of this file are the contract.
//!
//! ## How the replay works
//!
//! `generate()` runs five global passes (topology, rules, pockets, stale
//! trials, live trials, noise), each drawing from its own seeded RNG.
//! The stream re-cuts those passes along boundaries that bound memory:
//!
//! - **Phase A — one market at a time.** Topology is already a
//!   per-market RNG stream ([`crate::topology::build_market`]), X2 edges
//!   never cross market lines, and the dynamic attributes are in-market
//!   functions, so market `m` can be built, attribute-filled, emitted and
//!   dropped. `apply_pockets` iterates markets in order from one RNG, so
//!   market `m`'s pocket draws happen inline with a persistent RNG and
//!   the stream's draw sequence equals the batch pass's.
//! - **Phase B — one parameter at a time.** The stale/live/noise passes
//!   each iterate parameters in catalog order from their own RNG; running
//!   `stale(p); live(p); noise(p)` per parameter with three persistent
//!   RNGs preserves each pass's exact draw sequence, and per-slot write
//!   order (rule < pocket < stale < live < noise) is preserved because
//!   the three sub-passes only touch parameter `p`'s slots.
//!
//! The noise pass must know each hit slot's *current* value. The stream
//! never holds a configuration, so it reconstructs it: last write wins
//! among this parameter's live hits, stale hits, pocket overrides (a
//! small map kept from Phase A) and the latent-rule value (recomputed
//! from the carrier's attributes). Carrier attributes come from an
//! LRU-1 market cache that deterministically regenerates one market at a
//! time — slot iteration is in market order, so each pass re-derives a
//! market at most once plus one random market for the live trial.

use std::collections::{HashMap, VecDeque};

use crate::generator::{GeneratedNetwork, GroundTruth};
use crate::names;
use crate::rules::{generate_rules, LatentRule};
use crate::scale::{NetScale, TuningKnobs};
use crate::topology;
use crate::tuning::{self, Pocket};
use auric_model::delta::{apply_fleet_deltas, empty_snapshot, DeltaSlot, FleetDelta};
use auric_model::{
    AttributeSchema, Band, Carrier, CarrierId, Enodeb, Morphology, PairIdx, ParamCatalog, ParamId,
    ParamKind, Provenance, ValueIdx, X2Graph,
};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Where one market's entities live in the global id spaces. Markets are
/// contiguous ranges of carrier ids, and the global X2 CSR is the
/// concatenation of the per-market CSRs (edges never cross markets), so
/// pair ids are contiguous per market too.
#[derive(Debug, Clone, Copy)]
struct MarketMeta {
    enb_base: usize,
    n_enbs: usize,
    carrier_base: usize,
    n_carriers: usize,
    pair_base: usize,
    n_pairs: usize,
}

/// One regenerated market: enough to answer attribute, rule-value and
/// pair-endpoint queries.
struct MarketData {
    enodebs: Vec<Enodeb>,
    /// Carriers with final (dynamic-filled) attributes, global ids.
    carriers: Vec<Carrier>,
    /// Market-local X2 graph (indices offset by `carrier_base`).
    x2: X2Graph,
}

/// A deterministic iterator of [`FleetDelta`] events reproducing
/// `generate(scale, knobs)` without holding the fleet. See the module
/// docs; create with [`stream`].
pub struct FleetStream {
    scale: NetScale,
    knobs: TuningKnobs,
    schema: AttributeSchema,
    catalog: ParamCatalog,
    rules: Vec<LatentRule>,
    pockets_rng: ChaCha8Rng,
    stale_rng: ChaCha8Rng,
    live_rng: ChaCha8Rng,
    noise_rng: ChaCha8Rng,
    meta: Vec<MarketMeta>,
    /// Ground-truth pockets emitted so far (for [`Self::collect_network`]).
    pockets: Vec<Pocket>,
    /// Pocket overrides by slot, kept for noise-pass value reconstruction.
    pocket_sing: HashMap<(ParamId, CarrierId), ValueIdx>,
    pocket_pair: HashMap<(ParamId, PairIdx), ValueIdx>,
    cache: Option<(usize, MarketData)>,
    queue: VecDeque<FleetDelta>,
    next_market: usize,
    next_param: usize,
}

/// Streams `generate(scale, knobs)` as [`FleetDelta`] events. Same seed
/// ⇒ identical event sequence; collected, byte-identical to the batch
/// generator.
pub fn stream(scale: &NetScale, knobs: &TuningKnobs) -> FleetStream {
    assert!(scale.n_markets > 0, "need at least one market");
    assert!(
        scale.enbs_per_market >= 2,
        "need at least two eNodeBs per market"
    );
    let schema = names::build_schema(scale.n_markets);
    let catalog = ParamCatalog::standard();
    let rules = generate_rules(&catalog, scale.seed ^ 0x5EED_0F0F);
    FleetStream {
        scale: *scale,
        knobs: *knobs,
        schema,
        catalog,
        rules,
        // Same seeds as generate()'s pass calls, including each pass's
        // internal XOR constant.
        pockets_rng: ChaCha8Rng::seed_from_u64((scale.seed ^ 0x01) ^ 0xB0C4_E75A),
        stale_rng: ChaCha8Rng::seed_from_u64((scale.seed ^ 0x02) ^ 0x57A1_E7A1),
        live_rng: ChaCha8Rng::seed_from_u64((scale.seed ^ 0x03) ^ 0x11FE_77AB),
        noise_rng: ChaCha8Rng::seed_from_u64((scale.seed ^ 0x04) ^ 0x0D15_EA5E),
        meta: Vec::new(),
        pockets: Vec::new(),
        pocket_sing: HashMap::new(),
        pocket_pair: HashMap::new(),
        cache: None,
        queue: VecDeque::new(),
        next_market: 0,
        next_param: 0,
    }
}

impl Iterator for FleetStream {
    type Item = FleetDelta;

    fn next(&mut self) -> Option<FleetDelta> {
        while self.queue.is_empty() && !self.step() {}
        self.queue.pop_front()
    }
}

impl FleetStream {
    /// The attribute schema of the streamed fleet.
    pub fn schema(&self) -> &AttributeSchema {
        &self.schema
    }

    /// The parameter catalog of the streamed fleet.
    pub fn catalog(&self) -> &ParamCatalog {
        &self.catalog
    }

    /// The latent rules (ground truth — never feed to a learner).
    pub fn rules(&self) -> &[LatentRule] {
        &self.rules
    }

    /// Drains the next natural batch of events: one market's build
    /// (including its pockets) during Phase A, one parameter's
    /// stale/live/noise retunes during Phase B. Batches are safe units
    /// for [`apply_fleet_deltas`] — each rebuilds the X2 CSR at most
    /// once. `None` when the stream is exhausted.
    pub fn next_batch(&mut self) -> Option<Vec<FleetDelta>> {
        while self.queue.is_empty() && !self.step() {}
        if self.queue.is_empty() {
            None
        } else {
            Some(self.queue.drain(..).collect())
        }
    }

    /// Runs the stream to completion, folding every event into a fresh
    /// snapshot. Byte-identical to [`crate::generate`] with the same
    /// inputs (the differential tests pin this).
    ///
    /// # Panics
    /// Panics if the collected snapshot fails validation — a stream bug,
    /// never a caller error.
    pub fn collect_network(mut self) -> GeneratedNetwork {
        let mut snapshot = empty_snapshot(self.schema.clone(), self.catalog.clone());
        while let Some(batch) = self.next_batch() {
            apply_fleet_deltas(&mut snapshot, &batch)
                .unwrap_or_else(|e| panic!("stream emitted an inconsistent batch: {e}"));
        }
        snapshot
            .validate()
            .unwrap_or_else(|e| panic!("streamed snapshot failed validation: {e}"));
        GeneratedNetwork {
            snapshot,
            truth: GroundTruth {
                rules: self.rules,
                pockets: self.pockets,
            },
        }
    }

    /// Advances the machine by one unit of work (one market or one
    /// parameter), pushing its events. Returns `true` when exhausted.
    /// May push zero events (a parameter with no tuning hits).
    fn step(&mut self) -> bool {
        if self.next_market < self.scale.n_markets {
            let m = self.next_market;
            self.next_market += 1;
            self.emit_market(m);
            false
        } else if self.next_param < self.catalog.len() {
            let p = self.next_param;
            self.next_param += 1;
            self.emit_param_tuning(p);
            false
        } else {
            true
        }
    }

    /// Phase A: build market `m`, emit its adds and pocket retunes, and
    /// leave its data in the cache.
    fn emit_market(&mut self, m: usize) {
        let (enb_base, carrier_base, pair_base) = self
            .meta
            .last()
            .map(|mm| {
                (
                    mm.enb_base + mm.n_enbs,
                    mm.carrier_base + mm.n_carriers,
                    mm.pair_base + mm.n_pairs,
                )
            })
            .unwrap_or((0, 0, 0));
        let data = build_market_data(&self.scale, &self.schema, m, enb_base, carrier_base);
        self.meta.push(MarketMeta {
            enb_base,
            n_enbs: data.enodebs.len(),
            carrier_base,
            n_carriers: data.carriers.len(),
            pair_base,
            n_pairs: data.x2.n_pairs(),
        });

        let market_id = data.enodebs[0].market;
        self.queue.push_back(FleetDelta::AddMarket {
            id: market_id,
            name: format!("Market {}", m + 1),
            timezone: auric_model::Timezone::ALL[m % 4],
        });
        for enb in &data.enodebs {
            let mut shell = enb.clone();
            shell.carriers.clear();
            self.queue
                .push_back(FleetDelta::AddEnodeb { enodeb: shell });
            for &cid in &enb.carriers {
                let c = &data.carriers[cid.index() - carrier_base];
                let base: Vec<ValueIdx> = self
                    .catalog
                    .singular_ids()
                    .map(|p| {
                        let rule = &self.rules[p.index()];
                        rule.value_for(&tuning::singular_key(rule, c))
                    })
                    .collect();
                self.queue.push_back(FleetDelta::AddCarrier {
                    carrier: c.clone(),
                    base,
                });
            }
        }
        // One event per undirected edge, in pair order (already deduped
        // and sorted by the CSR build).
        let pairwise: Vec<ParamId> = self.catalog.pairwise_ids().collect();
        for (_, lj, lk) in data.x2.pairs() {
            if lj >= lk {
                continue;
            }
            let cj = &data.carriers[lj.index()];
            let ck = &data.carriers[lk.index()];
            let pair_base_values = |src: &Carrier, dst: &Carrier| -> Vec<ValueIdx> {
                pairwise
                    .iter()
                    .map(|&p| {
                        let rule = &self.rules[p.index()];
                        rule.value_for(&tuning::pairwise_key(rule, src, dst))
                    })
                    .collect()
            };
            self.queue.push_back(FleetDelta::AddX2Edge {
                a: cj.id,
                b: ck.id,
                base_ab: pair_base_values(cj, ck),
                base_ba: pair_base_values(ck, cj),
            });
        }

        self.emit_market_pockets(m, &data, enb_base, carrier_base, pair_base);
        self.cache = Some((m, data));
    }

    /// Market `m`'s slice of the `apply_pockets` pass: identical draws
    /// from the persistent pockets RNG, emitted as retune events.
    fn emit_market_pockets(
        &mut self,
        _m: usize,
        data: &MarketData,
        enb_base: usize,
        carrier_base: usize,
        pair_base: usize,
    ) {
        let market_id = data.enodebs[0].market;
        let market_enbs: Vec<_> = data.enodebs.iter().map(|e| e.id).collect();
        if self.pockets_rng.random_range(0.0..1.0) >= self.knobs.pocket_prob
            || self.knobs.max_pockets == 0
            || market_enbs.is_empty()
        {
            return;
        }
        let n = self.pockets_rng.random_range(1..=self.knobs.max_pockets);
        let dense: Vec<_> = market_enbs
            .iter()
            .filter(|&&e| data.enodebs[e.index() - enb_base].morphology != Morphology::Rural)
            .copied()
            .collect();
        let candidates = if dense.is_empty() {
            &market_enbs
        } else {
            &dense
        };
        for _ in 0..n {
            let center_enb = candidates[self.pockets_rng.random_range(0..candidates.len())];
            let center = data.enodebs[center_enb.index() - enb_base].position;
            let radius = self
                .pockets_rng
                .random_range(self.knobs.pocket_radius_km.0..=self.knobs.pocket_radius_km.1);
            let hidden = self.pockets_rng.random_range(0.0..1.0) < self.knobs.hidden_pocket_frac;
            let band = Band::ALL[self.pockets_rng.random_range(0..3usize)];
            let why = Provenance::Pocket {
                hidden_attribute: hidden,
            };
            let n_params = self
                .pockets_rng
                .random_range(self.knobs.params_per_pocket.0..=self.knobs.params_per_pocket.1)
                .min(self.catalog.len());
            let mut chosen: Vec<ParamId> = Vec::with_capacity(n_params);
            while chosen.len() < n_params {
                let p = ParamId(self.pockets_rng.random_range(0..self.catalog.len() as u16));
                if !chosen.contains(&p) {
                    chosen.push(p);
                }
            }
            chosen.sort_unstable();

            let in_pocket = |c: &Carrier| {
                c.market == market_id
                    && c.band == band
                    && data.enodebs[c.enodeb.index() - enb_base]
                        .position
                        .distance(center)
                        <= radius
            };
            let mut params = Vec::with_capacity(chosen.len());
            for &pid in &chosen {
                let (kind, grid) = {
                    let def = self.catalog.def(pid);
                    (def.kind, def.range.n_values())
                };
                let value = {
                    let rule = &self.rules[pid.index()];
                    tuning::override_value(&mut self.pockets_rng, rule, grid, None)
                };
                match kind {
                    ParamKind::Singular => {
                        for c in &data.carriers {
                            if in_pocket(c) {
                                self.queue.push_back(FleetDelta::Retune {
                                    param: pid,
                                    slot: DeltaSlot::Carrier(c.id),
                                    value,
                                    why,
                                });
                                self.pocket_sing.insert((pid, c.id), value);
                            }
                        }
                    }
                    ParamKind::Pairwise => {
                        for c in &data.carriers {
                            if in_pocket(c) {
                                let local = CarrierId::from_index(c.id.index() - carrier_base);
                                for p in data.x2.pairs_from(local) {
                                    let (lj, lk) = data.x2.pair(p);
                                    self.queue.push_back(FleetDelta::Retune {
                                        param: pid,
                                        slot: DeltaSlot::Pair(
                                            CarrierId::from_index(carrier_base + lj.index()),
                                            CarrierId::from_index(carrier_base + lk.index()),
                                        ),
                                        value,
                                        why,
                                    });
                                    self.pocket_pair
                                        .insert((pid, pair_base as PairIdx + p), value);
                                }
                            }
                        }
                    }
                }
                params.push((pid, value));
            }
            self.pockets.push(Pocket {
                market: market_id,
                center,
                radius_km: radius,
                band,
                params,
                hidden,
            });
        }
    }

    /// Phase B: parameter `pi`'s slice of the stale/live/noise passes,
    /// in that order, each from its own persistent RNG.
    fn emit_param_tuning(&mut self, pi: usize) {
        let def = self.catalog.defs()[pi].clone();
        let rule = self.rules[pi].clone();
        let total_carriers = self.total_carriers();
        let total_pairs = self.total_pairs();

        // Per-parameter hit maps for noise-pass value reconstruction.
        let mut stale_sing: HashMap<CarrierId, ValueIdx> = HashMap::new();
        let mut stale_pair: HashMap<PairIdx, ValueIdx> = HashMap::new();
        let mut live_sing: HashMap<CarrierId, ValueIdx> = HashMap::new();
        let mut live_pair: HashMap<PairIdx, ValueIdx> = HashMap::new();

        // --- apply_stale_trials, parameter slice ---
        if self.stale_rng.random_range(0.0..1.0) < self.knobs.stale_trial_prob {
            let value = rule.noise_pool[self.stale_rng.random_range(0..rule.noise_pool.len())];
            match def.kind {
                ParamKind::Singular => {
                    for ci in 0..total_carriers {
                        if self.stale_rng.random_range(0.0..1.0) < self.knobs.stale_trial_frac {
                            let cid = CarrierId::from_index(ci);
                            self.queue.push_back(FleetDelta::Retune {
                                param: def.id,
                                slot: DeltaSlot::Carrier(cid),
                                value,
                                why: Provenance::StaleTrial,
                            });
                            stale_sing.insert(cid, value);
                        }
                    }
                }
                ParamKind::Pairwise => {
                    for p in 0..total_pairs as PairIdx {
                        if self.stale_rng.random_range(0.0..1.0) < self.knobs.stale_trial_frac {
                            let (gj, gk) = self.pair_endpoints(p);
                            self.queue.push_back(FleetDelta::Retune {
                                param: def.id,
                                slot: DeltaSlot::Pair(gj, gk),
                                value,
                                why: Provenance::StaleTrial,
                            });
                            stale_pair.insert(p, value);
                        }
                    }
                }
            }
        }

        // --- apply_live_trials, parameter slice ---
        if self.live_rng.random_range(0.0..1.0) < self.knobs.live_trial_prob {
            let value = rule.noise_pool[self.live_rng.random_range(0..rule.noise_pool.len())];
            let mi = self.live_rng.random_range(0..self.scale.n_markets);
            let tac = self.live_rng.random_range(0..names::TACS_PER_MARKET as u16)
                + mi as u16 * names::TACS_PER_MARKET as u16;
            let mm = self.meta[mi];
            match def.kind {
                ParamKind::Singular => {
                    for ci in mm.carrier_base..mm.carrier_base + mm.n_carriers {
                        let cid = CarrierId::from_index(ci);
                        // Short-circuit mirrors the batch pass: the frac
                        // draw is only consumed for in-trial carriers.
                        if self.carrier_tac(cid) == tac
                            && self.live_rng.random_range(0.0..1.0) < self.knobs.live_trial_frac
                        {
                            self.queue.push_back(FleetDelta::Retune {
                                param: def.id,
                                slot: DeltaSlot::Carrier(cid),
                                value,
                                why: Provenance::TrialInProgress,
                            });
                            live_sing.insert(cid, value);
                        }
                    }
                }
                ParamKind::Pairwise => {
                    for ci in mm.carrier_base..mm.carrier_base + mm.n_carriers {
                        let cid = CarrierId::from_index(ci);
                        if self.carrier_tac(cid) != tac {
                            continue;
                        }
                        let local = CarrierId::from_index(ci - mm.carrier_base);
                        let range = {
                            let data = self.market_data(mi);
                            data.x2.pairs_from(local)
                        };
                        for lp in range {
                            if self.live_rng.random_range(0.0..1.0) < self.knobs.live_trial_frac {
                                let p = mm.pair_base as PairIdx + lp;
                                let (gj, gk) = self.pair_endpoints(p);
                                self.queue.push_back(FleetDelta::Retune {
                                    param: def.id,
                                    slot: DeltaSlot::Pair(gj, gk),
                                    value,
                                    why: Provenance::TrialInProgress,
                                });
                                live_pair.insert(p, value);
                            }
                        }
                    }
                }
            }
        }

        // --- apply_noise, parameter slice ---
        if self.knobs.noise_rate > 0.0 {
            match def.kind {
                ParamKind::Singular => {
                    for ci in 0..total_carriers {
                        if self.noise_rng.random_range(0.0..1.0) < self.knobs.noise_rate {
                            let cid = CarrierId::from_index(ci);
                            // Last write wins: live > stale > pocket > rule.
                            let cur = live_sing
                                .get(&cid)
                                .or_else(|| stale_sing.get(&cid))
                                .or_else(|| self.pocket_sing.get(&(def.id, cid)))
                                .copied()
                                .unwrap_or_else(|| self.rule_value_singular(&rule, cid));
                            let v = tuning::override_value(
                                &mut self.noise_rng,
                                &rule,
                                def.range.n_values(),
                                Some(cur),
                            );
                            self.queue.push_back(FleetDelta::Retune {
                                param: def.id,
                                slot: DeltaSlot::Carrier(cid),
                                value: v,
                                why: Provenance::Noise,
                            });
                        }
                    }
                }
                ParamKind::Pairwise => {
                    for p in 0..total_pairs as PairIdx {
                        if self.noise_rng.random_range(0.0..1.0) < self.knobs.noise_rate {
                            let cur = live_pair
                                .get(&p)
                                .or_else(|| stale_pair.get(&p))
                                .or_else(|| self.pocket_pair.get(&(def.id, p)))
                                .copied()
                                .unwrap_or_else(|| self.rule_value_pairwise(&rule, p));
                            let v = tuning::override_value(
                                &mut self.noise_rng,
                                &rule,
                                def.range.n_values(),
                                Some(cur),
                            );
                            let (gj, gk) = self.pair_endpoints(p);
                            self.queue.push_back(FleetDelta::Retune {
                                param: def.id,
                                slot: DeltaSlot::Pair(gj, gk),
                                value: v,
                                why: Provenance::Noise,
                            });
                        }
                    }
                }
            }
        }
    }

    fn total_carriers(&self) -> usize {
        self.meta
            .last()
            .map(|mm| mm.carrier_base + mm.n_carriers)
            .unwrap_or(0)
    }

    fn total_pairs(&self) -> usize {
        self.meta
            .last()
            .map(|mm| mm.pair_base + mm.n_pairs)
            .unwrap_or(0)
    }

    fn market_of_carrier(&self, ci: usize) -> usize {
        self.meta
            .partition_point(|mm| mm.carrier_base + mm.n_carriers <= ci)
    }

    fn market_of_pair(&self, p: PairIdx) -> usize {
        self.meta
            .partition_point(|mm| mm.pair_base + mm.n_pairs <= p as usize)
    }

    /// The (deterministically regenerated) data of market `m`.
    fn market_data(&mut self, m: usize) -> &MarketData {
        if self.cache.as_ref().map(|(i, _)| *i) != Some(m) {
            let mm = self.meta[m];
            let data =
                build_market_data(&self.scale, &self.schema, m, mm.enb_base, mm.carrier_base);
            self.cache = Some((m, data));
        }
        &self.cache.as_ref().expect("just filled").1
    }

    /// Global directed pair `p`'s endpoints as global carrier ids.
    fn pair_endpoints(&mut self, p: PairIdx) -> (CarrierId, CarrierId) {
        let m = self.market_of_pair(p);
        let mm = self.meta[m];
        let data = self.market_data(m);
        let (lj, lk) = data.x2.pair(p - mm.pair_base as PairIdx);
        (
            CarrierId::from_index(mm.carrier_base + lj.index()),
            CarrierId::from_index(mm.carrier_base + lk.index()),
        )
    }

    /// Carrier `cid`'s tracking-area code.
    fn carrier_tac(&mut self, cid: CarrierId) -> u16 {
        let m = self.market_of_carrier(cid.index());
        let base = self.meta[m].carrier_base;
        let data = self.market_data(m);
        data.carriers[cid.index() - base]
            .attrs
            .get(crate::attr_idx::TAC)
    }

    /// The latent-rule value for a singular parameter on `cid`.
    fn rule_value_singular(&mut self, rule: &LatentRule, cid: CarrierId) -> ValueIdx {
        let m = self.market_of_carrier(cid.index());
        let base = self.meta[m].carrier_base;
        let data = self.market_data(m);
        let c = &data.carriers[cid.index() - base];
        rule.value_for(&tuning::singular_key(rule, c))
    }

    /// The latent-rule value for a pair-wise parameter on global pair `p`.
    fn rule_value_pairwise(&mut self, rule: &LatentRule, p: PairIdx) -> ValueIdx {
        let m = self.market_of_pair(p);
        let mm = self.meta[m];
        let data = self.market_data(m);
        let (lj, lk) = data.x2.pair(p - mm.pair_base as PairIdx);
        let key =
            tuning::pairwise_key(rule, &data.carriers[lj.index()], &data.carriers[lk.index()]);
        rule.value_for(&key)
    }
}

/// Builds market `m` and finishes it: market-local X2 CSR plus filled
/// dynamic attributes. Pure function of `(scale, m, bases)` — this is
/// what makes the LRU-1 cache regenerable.
fn build_market_data(
    scale: &NetScale,
    schema: &AttributeSchema,
    m: usize,
    enb_base: usize,
    carrier_base: usize,
) -> MarketData {
    let mb = topology::build_market(scale, schema, m, enb_base, carrier_base);
    let local_edges: Vec<(CarrierId, CarrierId)> = mb
        .edges
        .iter()
        .map(|&(a, b)| {
            (
                CarrierId::from_index(a.index() - carrier_base),
                CarrierId::from_index(b.index() - carrier_base),
            )
        })
        .collect();
    let x2 = X2Graph::from_edges(mb.carriers.len(), &local_edges);
    let mut carriers = mb.carriers;
    topology::fill_dynamic_attrs(
        &mut carriers,
        &mb.enodebs,
        &x2,
        schema,
        enb_base,
        carrier_base,
    );
    MarketData {
        enodebs: mb.enodebs,
        carriers,
        x2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn same_seed_same_event_sequence() {
        let scale = NetScale::tiny();
        let knobs = TuningKnobs::default();
        let a: Vec<FleetDelta> = stream(&scale, &knobs).collect();
        let b: Vec<FleetDelta> = stream(&scale, &knobs).collect();
        assert_eq!(a.len(), b.len());
        assert_eq!(a, b, "same seed must give the identical delta sequence");
        let c: Vec<FleetDelta> = stream(&scale.with_seed(8), &knobs).collect();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn collected_stream_is_byte_identical_to_generate() {
        let scale = NetScale::tiny();
        let knobs = TuningKnobs::default();
        let batch = generate(&scale, &knobs);
        let streamed = stream(&scale, &knobs).collect_network();
        assert_eq!(batch.snapshot.markets, streamed.snapshot.markets);
        assert_eq!(batch.snapshot.enodebs, streamed.snapshot.enodebs);
        assert_eq!(batch.snapshot.carriers, streamed.snapshot.carriers);
        assert_eq!(batch.snapshot.x2, streamed.snapshot.x2);
        assert_eq!(
            batch.snapshot.config, streamed.snapshot.config,
            "configuration (values and provenance) must match"
        );
        assert_eq!(batch.truth.pockets, streamed.truth.pockets);
        assert_eq!(batch.truth.rules, streamed.truth.rules);
        // Byte-level pin: the serialized snapshots are identical.
        assert_eq!(
            serde_json::to_string(&batch.snapshot).unwrap(),
            serde_json::to_string(&streamed.snapshot).unwrap()
        );
    }

    #[test]
    fn clean_knobs_stream_matches_generate() {
        let scale = NetScale::tiny();
        let knobs = TuningKnobs::none();
        let batch = generate(&scale, &knobs);
        let streamed = stream(&scale, &knobs).collect_network();
        assert_eq!(batch.snapshot.config, streamed.snapshot.config);
        assert!(streamed.truth.pockets.is_empty());
        // A clean stream is adds only: no retune events at all.
        let events: Vec<FleetDelta> = stream(&scale, &knobs).collect();
        assert!(events
            .iter()
            .all(|e| !matches!(e, FleetDelta::Retune { .. })));
    }

    #[test]
    fn other_seeds_and_market_counts_round_trip() {
        for seed in [1u64, 99, 31337] {
            let scale = NetScale {
                n_markets: 3,
                enbs_per_market: 6,
                seed,
            };
            let knobs = TuningKnobs::default();
            let batch = generate(&scale, &knobs);
            let streamed = stream(&scale, &knobs).collect_network();
            assert_eq!(
                batch.snapshot.config, streamed.snapshot.config,
                "seed {seed}"
            );
            assert_eq!(batch.snapshot.carriers, streamed.snapshot.carriers);
            assert_eq!(batch.truth.pockets, streamed.truth.pockets);
        }
    }

    #[test]
    fn batches_are_market_then_param_shaped() {
        let scale = NetScale::tiny();
        let knobs = TuningKnobs::default();
        let mut s = stream(&scale, &knobs);
        let first = s.next_batch().expect("market batch");
        assert!(matches!(first[0], FleetDelta::AddMarket { .. }));
        let second = s.next_batch().expect("second market batch");
        assert!(matches!(second[0], FleetDelta::AddMarket { .. }));
        // Everything after Phase A is retunes only.
        while let Some(batch) = s.next_batch() {
            assert!(batch.iter().all(|e| matches!(e, FleetDelta::Retune { .. })));
        }
    }
}
