//! Latent engineering rules: the ground-truth mapping from carrier
//! attributes to configuration values.
//!
//! In the real network, a parameter's value is (mostly) a function of a
//! handful of carrier attributes — the rule-book plus per-market tuning
//! culture (§2.4, §2.6). The generator models this as one [`LatentRule`]
//! per parameter:
//!
//! - a small set of **relevant attributes** (1–3; for pair-wise parameters
//!   drawn from both endpoints of the pair),
//! - a **palette** of plausible values with skewed usage weights (a
//!   dominant default plus rarer tunings — this is what makes 33/65
//!   parameters highly skewed in Fig. 4), and
//! - a deterministic hash from each relevant-attribute combination to a
//!   palette entry, so the mapping behaves like a fixed (but arbitrary)
//!   rule table without materializing every combination.
//!
//! Because the mapping is per *combination*, attribute interactions are
//! the norm — marginal distributions can be flat while combinations are
//! decisive, which is exactly the regime where exact-match voting shines
//! and greedy axis-aligned splits struggle.

use crate::attr_idx;
use auric_model::{AttrId, AttrValue, ParamCatalog, ParamId, ValueIdx};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which endpoint of a directed X2 pair an attribute is read from.
/// Singular parameters only use [`Side::Src`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The carrier being configured.
    Src,
    /// Its X2 neighbor (pair-wise parameters only).
    Dst,
}

/// One relevant attribute of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RuleAttr {
    pub side: Side,
    pub attr: AttrId,
}

/// The latent rule for one parameter. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatentRule {
    pub param: ParamId,
    /// Relevant attributes, in a fixed order (the rule key order).
    pub relevant: Vec<RuleAttr>,
    /// Distinct plausible values; entry 0 is the dominant one.
    pub palette: Vec<ValueIdx>,
    /// A small fixed pool of off-palette values that one-off deviations
    /// (noise, trials, pocket experiments) draw from. Keeping this pool
    /// small bounds each parameter's distinct-value count the way Fig. 2
    /// observes.
    pub noise_pool: Vec<ValueIdx>,
    /// Cumulative probability bounds over the palette (last entry 1.0).
    cum_weights: Vec<f64>,
    /// Private stream for the combination → palette hash.
    hash_seed: u64,
}

impl LatentRule {
    /// The rule's value for a relevant-attribute combination `key`
    /// (projected in `relevant` order). Pure and deterministic.
    pub fn value_for(&self, key: &[AttrValue]) -> ValueIdx {
        assert_eq!(key.len(), self.relevant.len(), "rule key has wrong arity");
        let mut h = splitmix64(self.hash_seed);
        for &v in key {
            h = splitmix64(h ^ (v as u64 + 0x1234_5678));
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let pos = self
            .cum_weights
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.palette.len() - 1);
        self.palette[pos]
    }

    /// The weight of palette entry `i` (for diagnostics).
    pub fn weight(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cum_weights[i - 1] };
        self.cum_weights[i] - prev
    }
}

/// SplitMix64 step: the stateless mixing function under the rule hash.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pool of attributes singular rules may depend on. TAC, neighbor counts
/// and neighbor channel deliberately stay out: they are the *distractor*
/// attributes whose irrelevance the dependency learner must discover.
const SRC_POOL: [AttrId; 10] = [
    attr_idx::FREQUENCY,
    attr_idx::CARRIER_TYPE,
    attr_idx::MORPHOLOGY,
    attr_idx::BANDWIDTH,
    attr_idx::MIMO,
    attr_idx::HARDWARE,
    attr_idx::CELL_SIZE,
    attr_idx::MARKET,
    attr_idx::VENDOR,
    attr_idx::SOFTWARE,
];

/// Pool for the neighbor side of pair-wise rules (handover behavior cares
/// about what you hand over *to*).
const DST_POOL: [AttrId; 4] = [
    attr_idx::FREQUENCY,
    attr_idx::MORPHOLOGY,
    attr_idx::BANDWIDTH,
    attr_idx::CELL_SIZE,
];

/// Generates one latent rule per catalog parameter. Deterministic in
/// `seed`.
pub fn generate_rules(catalog: &ParamCatalog, seed: u64) -> Vec<LatentRule> {
    catalog
        .defs()
        .iter()
        .map(|def| {
            let mut rng = ChaCha8Rng::seed_from_u64(
                seed ^ (def.id.0 as u64).wrapping_mul(0xA24B_AED4_963E_E407),
            );
            // Parameter 0 (sFreqPrio) anchors Fig. 2's ~200-distinct tail:
            // per-market, per-layer priority schemes give it a rich rule
            // keyed on several attributes, spreading over its huge palette.
            let relevant = if def.id.0 == 0 {
                vec![
                    RuleAttr {
                        side: Side::Src,
                        attr: attr_idx::MARKET,
                    },
                    RuleAttr {
                        side: Side::Src,
                        attr: attr_idx::FREQUENCY,
                    },
                    RuleAttr {
                        side: Side::Src,
                        attr: attr_idx::MORPHOLOGY,
                    },
                    RuleAttr {
                        side: Side::Src,
                        attr: attr_idx::BANDWIDTH,
                    },
                ]
            } else {
                sample_relevant(&mut rng, def.kind == auric_model::ParamKind::Pairwise)
            };
            let palette_size = sample_palette_size(&mut rng, def.id.0, def.range.n_values());
            let palette = sample_palette(&mut rng, def.default, def.range.n_values(), palette_size);
            let noise_pool = sample_noise_pool(&mut rng, &palette, def.range.n_values());
            let cum_weights = sample_weights(&mut rng, palette.len(), def.id.0 == 0);
            LatentRule {
                param: def.id,
                relevant,
                palette,
                noise_pool,
                cum_weights,
                hash_seed: rng.random_range(0..u64::MAX),
            }
        })
        .collect()
}

/// Samples 1–3 relevant attributes; pair-wise rules include at least one
/// neighbor-side attribute. Market participates in ~45% of rules — that
/// is what makes per-market variability differ (Fig. 3) and per-market
/// tuning real.
fn sample_relevant(rng: &mut ChaCha8Rng, pairwise: bool) -> Vec<RuleAttr> {
    let mut out: Vec<RuleAttr> = Vec::new();
    let n_src: usize = *[1usize, 2, 2, 3][..]
        .get(rng.random_range(0..4usize))
        .unwrap();
    if rng.random_range(0.0..1.0) < 0.45 {
        out.push(RuleAttr {
            side: Side::Src,
            attr: attr_idx::MARKET,
        });
    }
    while out.iter().filter(|r| r.side == Side::Src).count() < n_src {
        let a = SRC_POOL[rng.random_range(0..SRC_POOL.len())];
        if !out.iter().any(|r| r.side == Side::Src && r.attr == a) {
            out.push(RuleAttr {
                side: Side::Src,
                attr: a,
            });
        }
    }
    if pairwise {
        let n_dst = 1 + usize::from(rng.random_range(0.0..1.0) < 0.3);
        let mut added = 0;
        while added < n_dst {
            let a = DST_POOL[rng.random_range(0..DST_POOL.len())];
            if !out.iter().any(|r| r.side == Side::Dst && r.attr == a) {
                out.push(RuleAttr {
                    side: Side::Dst,
                    attr: a,
                });
                added += 1;
            }
        }
    }
    out
}

/// Samples the palette size. The mix is tuned to Fig. 2's shape: most
/// parameters take 2–7 distinct values, several exceed 10, and one
/// parameter approaches 200 (the first parameter — `sFreqPrio`, whose
/// 10000-point grid invites per-market priority schemes — is pinned to
/// the top of the distribution).
fn sample_palette_size(rng: &mut ChaCha8Rng, param_index: u16, grid: usize) -> usize {
    let size = if param_index == 0 {
        190
    } else {
        let r: f64 = rng.random_range(0.0..1.0);
        if r < 0.55 {
            rng.random_range(2..=5)
        } else if r < 0.78 {
            rng.random_range(5..=9)
        } else if r < 0.93 {
            rng.random_range(9..=20)
        } else {
            rng.random_range(20..=60)
        }
    };
    size.min(grid)
}

/// Samples `size` distinct grid indices: the default plus values spread
/// around it (engineers tune within a plausible region, not uniformly over
/// the whole range).
fn sample_palette(
    rng: &mut ChaCha8Rng,
    default: ValueIdx,
    grid: usize,
    size: usize,
) -> Vec<ValueIdx> {
    let mut palette = vec![default];
    let spread = ((grid as f64) / 5.0).max(2.0);
    let mut attempts = 0;
    while palette.len() < size && attempts < 20 * size {
        attempts += 1;
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (default as f64 + g * spread).round();
        if v < 0.0 || v >= grid as f64 {
            continue;
        }
        let v = v as ValueIdx;
        if !palette.contains(&v) {
            palette.push(v);
        }
    }
    // Degenerate grids may not fit `size` distinct values near the
    // default; fall back to scanning outward.
    let mut offset = 1i64;
    while palette.len() < size {
        for cand in [default as i64 - offset, default as i64 + offset] {
            if cand >= 0 && (cand as usize) < grid {
                let v = cand as ValueIdx;
                if !palette.contains(&v) {
                    palette.push(v);
                }
            }
        }
        offset += 1;
    }
    palette
}

/// Samples a small pool of extra values one-off deviations draw from.
fn sample_noise_pool(rng: &mut ChaCha8Rng, palette: &[ValueIdx], grid: usize) -> Vec<ValueIdx> {
    let default = palette[0] as i64;
    let spread = ((grid as f64) / 4.0).max(3.0);
    let mut pool = Vec::new();
    let mut attempts = 0;
    while pool.len() < 3 && attempts < 200 {
        attempts += 1;
        let off = (rng.random_range(-1.0..1.0) * spread).round() as i64;
        let v = (default + off).clamp(0, grid as i64 - 1) as ValueIdx;
        if !palette.contains(&v) && !pool.contains(&v) {
            pool.push(v);
        }
    }
    // Degenerate grids: fall back to (possibly palette) values so the
    // pool is never empty.
    let mut cand = 0;
    while pool.is_empty() && (cand as usize) < grid {
        pool.push(cand);
        cand += 1;
    }
    pool
}

/// Samples skew-controlled cumulative weights: the dominant entry carries
/// mass α drawn from one of three regimes (high/moderate/balanced, mixed
/// ~45/15/40 to land near Fig. 4's 33-high / 12-moderate / 20-symmetric
/// split), the rest decays geometrically with jitter. `flat` (used for
/// the huge-palette parameter that anchors Fig. 2's 200-distinct tail)
/// spreads mass uniformly.
fn sample_weights(rng: &mut ChaCha8Rng, n: usize, flat: bool) -> Vec<f64> {
    if n == 1 {
        return vec![1.0];
    }
    if flat {
        return (1..=n).map(|i| i as f64 / n as f64).collect();
    }
    let r: f64 = rng.random_range(0.0..1.0);
    if r >= 0.62 {
        // Balanced class (~38% of parameters): near-uniform usage, the
        // Fig. 4 "approximately symmetric" population.
        let raw: Vec<f64> = (0..n).map(|_| rng.random_range(0.8..1.2)).collect();
        let sum: f64 = raw.iter().sum();
        let mut cum = 0.0;
        return raw
            .iter()
            .map(|w| {
                cum += w / sum;
                cum
            })
            .collect();
    }
    let alpha: f64 = if r < 0.47 {
        rng.random_range(0.78..0.93)
    } else {
        rng.random_range(0.58..0.70)
    };
    let mut raw = vec![alpha];
    let mut rest: Vec<f64> = (0..n - 1)
        .map(|i| (0.8f64).powi(i as i32) * rng.random_range(0.4..1.0))
        .collect();
    let rest_sum: f64 = rest.iter().sum();
    for w in &mut rest {
        *w *= (1.0 - alpha) / rest_sum;
    }
    raw.extend(rest);
    let mut cum = 0.0;
    raw.iter()
        .map(|w| {
            cum += w;
            cum
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_model::ParamKind;

    fn rules() -> (ParamCatalog, Vec<LatentRule>) {
        let catalog = ParamCatalog::standard();
        let r = generate_rules(&catalog, 99);
        (catalog, r)
    }

    #[test]
    fn one_rule_per_parameter() {
        let (catalog, rules) = rules();
        assert_eq!(rules.len(), catalog.len());
        for (def, rule) in catalog.defs().iter().zip(&rules) {
            assert_eq!(def.id, rule.param);
            assert!(!rule.relevant.is_empty());
            assert!(rule.relevant.len() <= 5);
            assert!(!rule.palette.is_empty());
            assert_eq!(rule.palette[0], def.default, "palette leads with default");
            // Palette values on-grid and distinct.
            let mut sorted = rule.palette.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), rule.palette.len(), "palette distinct");
            assert!(sorted.iter().all(|&v| (v as usize) < def.range.n_values()));
        }
    }

    #[test]
    fn pairwise_rules_use_both_sides() {
        let (catalog, rules) = rules();
        for def in catalog.defs() {
            let rule = &rules[def.id.index()];
            let has_dst = rule.relevant.iter().any(|r| r.side == Side::Dst);
            match def.kind {
                ParamKind::Pairwise => assert!(has_dst, "{} lacks a neighbor attr", def.name),
                ParamKind::Singular => assert!(!has_dst, "{} is singular", def.name),
            }
        }
    }

    #[test]
    fn rule_mapping_is_deterministic_and_total() {
        let (_, rules) = rules();
        let rule = &rules[3];
        let key: Vec<AttrValue> = rule.relevant.iter().map(|_| 1).collect();
        let v1 = rule.value_for(&key);
        let v2 = rule.value_for(&key);
        assert_eq!(v1, v2);
        assert!(rule.palette.contains(&v1));
    }

    #[test]
    fn different_keys_can_get_different_values() {
        let (_, rules) = rules();
        // Find a rule with a rich palette; over many keys it must emit
        // more than one distinct value.
        let rule = rules
            .iter()
            .find(|r| r.palette.len() >= 4)
            .expect("some rule has a rich palette");
        let mut seen = std::collections::HashSet::new();
        for k in 0..200u16 {
            let key: Vec<AttrValue> = rule.relevant.iter().map(|_| k % 7).collect();
            seen.insert(rule.value_for(&key));
        }
        assert!(seen.len() > 1, "rule is unexpectedly constant");
    }

    #[test]
    fn dominant_value_dominates_for_skewed_rules() {
        let (_, rules) = rules();
        // The generator draws ~62% of parameters from the two skewed
        // regimes (dominant mass ≥ 0.58); the balanced class spreads mass
        // near-uniformly. Assert the planted shape rather than a knife-edge
        // mean, which wobbles with the sampling stream: a solid fraction of
        // rules must be dominated, and the overall mean must sit far above
        // what a uniform palette would give.
        let multi: Vec<&LatentRule> = rules.iter().filter(|r| r.palette.len() > 1).collect();
        let dominated = multi.iter().filter(|r| r.weight(0) >= 0.55).count();
        assert!(
            dominated * 10 >= multi.len() * 4,
            "only {dominated}/{} rules have a dominant value",
            multi.len()
        );
        let mean_alpha: f64 = rules.iter().map(|r| r.weight(0)).sum::<f64>() / rules.len() as f64;
        assert!(mean_alpha > 0.45, "mean dominant mass {mean_alpha}");
    }

    #[test]
    fn first_parameter_has_huge_palette() {
        let (_, rules) = rules();
        assert!(
            rules[0].palette.len() >= 150,
            "sFreqPrio palette {} too small for Fig. 2's 200-distinct parameter",
            rules[0].palette.len()
        );
    }

    #[test]
    fn weights_are_a_distribution() {
        let (_, rules) = rules();
        for rule in &rules {
            let last = *rule.cum_weights.last().unwrap();
            assert!((last - 1.0).abs() < 1e-9, "cum weights end at {last}");
            assert!(rule.cum_weights.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        }
    }

    #[test]
    fn regeneration_is_deterministic() {
        let catalog = ParamCatalog::standard();
        assert_eq!(generate_rules(&catalog, 5), generate_rules(&catalog, 5));
        assert_ne!(generate_rules(&catalog, 5), generate_rules(&catalog, 6));
    }
}
