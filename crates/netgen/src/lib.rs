//! Synthetic LTE network and configuration ground-truth generator.
//!
//! The paper evaluates on a proprietary snapshot of a large US LTE network:
//! 400K+ carriers across 28 markets with 65 actively-tuned range
//! parameters. This crate is the substitute substrate (see DESIGN.md): a
//! deterministic generator that reproduces the *causal structure* the paper
//! attributes its phenomena to, so that the relative results — variability
//! and skew (Figs. 2–4), collaborative filtering beating classic learners
//! (Table 4, Fig. 10), locality beating global voting (§4.3.2, Fig. 11),
//! and the mismatch categories (Fig. 12) — emerge from the same mechanisms
//! rather than being hard-coded.
//!
//! The generative process, in order:
//!
//! 1. **Topology** ([`topology`]): markets on a plane, eNodeBs clustered
//!    around urban cores, 3 faces each, carriers per face by morphology and
//!    band, X2 relations from radio adjacency, Table-1 attributes.
//! 2. **Engineering rules** ([`rules`]): per parameter, a latent rule over
//!    a small set of relevant attributes maps each attribute combination to
//!    a value from a skewed per-parameter palette. This is the "rule-book +
//!    per-market tuning" the paper's engineers maintain.
//! 3. **Local tuning pockets** ([`tuning`]): geographic clusters whose
//!    engineers overrode a parameter — some driven by factors absent from
//!    the attribute schema (terrain), the paper's "update learner" cause.
//! 4. **Trials** ([`tuning`]): stale leftovers of abandoned trials (the
//!    28% "good recommendation" cause) and in-progress certification
//!    roll-outs (the other "update learner" cause).
//! 5. **Noise** ([`tuning`]): one-off manual deviations with no cause.
//!
//! Everything is driven by a single seed; identical inputs give identical
//! snapshots, byte for byte.

pub mod generator;
pub mod names;
pub mod rules;
pub mod scale;
pub mod stream;
pub mod topology;
pub mod tuning;

pub use generator::{generate, GeneratedNetwork, GroundTruth};
pub use rules::LatentRule;
pub use scale::{NetScale, TuningKnobs};
pub use stream::{stream, FleetStream};
pub use tuning::Pocket;

/// Attribute column indices matching
/// [`auric_model::attrs::table1_schema`]'s order. Kept as constants so the
/// generator and its tests agree on positions without string lookups.
pub mod attr_idx {
    use auric_model::AttrId;

    pub const FREQUENCY: AttrId = AttrId(0);
    pub const CARRIER_TYPE: AttrId = AttrId(1);
    pub const CARRIER_INFO: AttrId = AttrId(2);
    pub const MORPHOLOGY: AttrId = AttrId(3);
    pub const BANDWIDTH: AttrId = AttrId(4);
    pub const MIMO: AttrId = AttrId(5);
    pub const HARDWARE: AttrId = AttrId(6);
    pub const CELL_SIZE: AttrId = AttrId(7);
    pub const TAC: AttrId = AttrId(8);
    pub const MARKET: AttrId = AttrId(9);
    pub const VENDOR: AttrId = AttrId(10);
    pub const NEIGHBOR_CHANNEL: AttrId = AttrId(11);
    pub const NEIGHBORS_SAME_ENB: AttrId = AttrId(12);
    pub const SOFTWARE: AttrId = AttrId(13);
}
