//! The configuration-perturbing processes layered over the latent rules:
//! geographic tuning pockets, stale and in-progress trials, and one-off
//! noise. Each writes [`Provenance`] so the Fig. 12 mismatch labeling can
//! be reproduced mechanically.

use crate::rules::{LatentRule, Side};
use crate::scale::TuningKnobs;
use crate::topology::Topology;
use auric_model::{
    AttrValue, Carrier, Configuration, MarketId, ParamCatalog, ParamId, ParamKind, Point,
    Provenance, ValueIdx,
};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A geographic tuning pocket: one optimization campaign in which
/// engineers overrode a *set* of parameters together on every `band`-layer
/// carrier of `market` within `radius_km` of `center`. Campaign-style
/// tuning (many parameters, one area) is what gives Table 5 its shape —
/// a launched carrier either needs no changes or needs many.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pocket {
    pub market: MarketId,
    pub center: Point,
    pub radius_km: f64,
    /// Frequency-band layer the tuning applies to.
    pub band: auric_model::Band,
    /// The tuned parameters and their pocket values.
    pub params: Vec<(ParamId, ValueIdx)>,
    /// True when the pocket's cause (terrain, propagation) is absent from
    /// the attribute schema — the paper's "update learner" cause (i).
    pub hidden: bool,
}

/// Builds the rule key for a singular parameter on carrier `c`.
pub fn singular_key(rule: &LatentRule, c: &Carrier) -> Vec<AttrValue> {
    rule.relevant
        .iter()
        .map(|r| {
            debug_assert_eq!(r.side, Side::Src, "singular rules read only the carrier");
            c.attrs.get(r.attr)
        })
        .collect()
}

/// Builds the rule key for a pair-wise parameter on pair `(j, k)`.
pub fn pairwise_key(rule: &LatentRule, j: &Carrier, k: &Carrier) -> Vec<AttrValue> {
    rule.relevant
        .iter()
        .map(|r| match r.side {
            Side::Src => j.attrs.get(r.attr),
            Side::Dst => k.attrs.get(r.attr),
        })
        .collect()
}

/// Applies every latent rule, producing the clean rule-driven
/// configuration (all provenance [`Provenance::Rule`]).
pub fn apply_rules(topo: &Topology, catalog: &ParamCatalog, rules: &[LatentRule]) -> Configuration {
    let mut cfg = Configuration::with_defaults(catalog, topo.carriers.len(), topo.x2.n_pairs());
    for def in catalog.defs() {
        let rule = &rules[def.id.index()];
        match def.kind {
            ParamKind::Singular => {
                for c in &topo.carriers {
                    let v = rule.value_for(&singular_key(rule, c));
                    cfg.set_value(def.id, c.id, v, Provenance::Rule);
                }
            }
            ParamKind::Pairwise => {
                for (p, j, k) in topo.x2.pairs() {
                    let key =
                        pairwise_key(rule, &topo.carriers[j.index()], &topo.carriers[k.index()]);
                    cfg.set_pair_value(def.id, p, rule.value_for(&key), Provenance::Rule);
                }
            }
        }
    }
    cfg
}

/// Picks an override value distinct from `avoid`: a rare palette entry or
/// one of the rule's small fixed noise-pool values. Drawing from bounded
/// per-parameter pools (instead of the whole grid) keeps each parameter's
/// distinct-value count in Fig. 2's observed range.
pub(crate) fn override_value(
    rng: &mut ChaCha8Rng,
    rule: &LatentRule,
    _grid: usize,
    avoid: Option<ValueIdx>,
) -> ValueIdx {
    for _ in 0..64 {
        let v = if rng.random_range(0.0..1.0) < 0.6 && rule.palette.len() > 1 {
            rule.palette[rng.random_range(1..rule.palette.len())]
        } else {
            rule.noise_pool[rng.random_range(0..rule.noise_pool.len())]
        };
        if Some(v) != avoid {
            return v;
        }
    }
    // Degenerate single-value grids: nothing else to pick.
    rule.palette[0]
}

/// Carves geographic tuning pockets (optimization campaigns) and applies
/// their overrides. Returns the pockets for ground-truth bookkeeping.
pub fn apply_pockets(
    cfg: &mut Configuration,
    topo: &Topology,
    catalog: &ParamCatalog,
    rules: &[LatentRule],
    knobs: &TuningKnobs,
    seed: u64,
) -> Vec<Pocket> {
    let mut pockets = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0C4_E75A);
    for market in &topo.markets {
        if rng.random_range(0.0..1.0) >= knobs.pocket_prob
            || knobs.max_pockets == 0
            || market.enodebs.is_empty()
        {
            continue;
        }
        let n = rng.random_range(1..=knobs.max_pockets);
        // Tuning campaigns target dense areas (the paper's motivating
        // example is downtown Manhattan): centers land on urban or
        // suburban eNodeBs, where the X2 neighborhood is geographically
        // tight and local voting has signal.
        let dense: Vec<_> = market
            .enodebs
            .iter()
            .filter(|&&e| topo.enodebs[e.index()].morphology != auric_model::Morphology::Rural)
            .copied()
            .collect();
        let candidates = if dense.is_empty() {
            &market.enodebs
        } else {
            &dense
        };
        for _ in 0..n {
            let center_enb = candidates[rng.random_range(0..candidates.len())];
            let center = topo.enodebs[center_enb.index()].position;
            let radius = rng.random_range(knobs.pocket_radius_km.0..=knobs.pocket_radius_km.1);
            let hidden = rng.random_range(0.0..1.0) < knobs.hidden_pocket_frac;
            let band = auric_model::Band::ALL[rng.random_range(0..3usize)];
            let why = Provenance::Pocket {
                hidden_attribute: hidden,
            };

            // The campaign's parameter set: a handful tuned together.
            let n_params = rng
                .random_range(knobs.params_per_pocket.0..=knobs.params_per_pocket.1)
                .min(catalog.len());
            let mut chosen: Vec<ParamId> = Vec::with_capacity(n_params);
            while chosen.len() < n_params {
                let p = ParamId(rng.random_range(0..catalog.len() as u16));
                if !chosen.contains(&p) {
                    chosen.push(p);
                }
            }
            chosen.sort_unstable();

            let in_pocket = |c: &Carrier| {
                c.market == market.id
                    && c.band == band
                    && topo.enodebs[c.enodeb.index()].position.distance(center) <= radius
            };
            let mut params = Vec::with_capacity(chosen.len());
            for &pid in &chosen {
                let def = catalog.def(pid);
                let rule = &rules[pid.index()];
                let value = override_value(&mut rng, rule, def.range.n_values(), None);
                match def.kind {
                    ParamKind::Singular => {
                        for &cid in &market.carriers {
                            if in_pocket(&topo.carriers[cid.index()]) {
                                cfg.set_value(pid, cid, value, why);
                            }
                        }
                    }
                    ParamKind::Pairwise => {
                        for &cid in &market.carriers {
                            if in_pocket(&topo.carriers[cid.index()]) {
                                for p in topo.x2.pairs_from(cid) {
                                    cfg.set_pair_value(pid, p, value, why);
                                }
                            }
                        }
                    }
                }
                params.push((pid, value));
            }
            pockets.push(Pocket {
                market: market.id,
                center,
                radius_km: radius,
                band,
                params,
                hidden,
            });
        }
    }
    pockets
}

/// Sprinkles stale-trial leftovers: per parameter (with probability
/// `stale_trial_prob`), a scattered `stale_trial_frac` of slots keep an
/// abandoned trial's value. Scattered — not clustered — so neighborhood
/// majorities vote against them and Auric's disagreement is the *better*
/// configuration (the paper's 28% "good recommendation").
pub fn apply_stale_trials(
    cfg: &mut Configuration,
    topo: &Topology,
    catalog: &ParamCatalog,
    rules: &[LatentRule],
    knobs: &TuningKnobs,
    seed: u64,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x57A1_E7A1);
    for def in catalog.defs() {
        if rng.random_range(0.0..1.0) >= knobs.stale_trial_prob {
            continue;
        }
        let rule = &rules[def.id.index()];
        // Abandoned trials tried a *new* value, not one of the standing
        // palette values — draw from the rule's bounded noise pool.
        let value = rule.noise_pool[rng.random_range(0..rule.noise_pool.len())];
        match def.kind {
            ParamKind::Singular => {
                for c in &topo.carriers {
                    if rng.random_range(0.0..1.0) < knobs.stale_trial_frac {
                        cfg.set_value(def.id, c.id, value, Provenance::StaleTrial);
                    }
                }
            }
            ParamKind::Pairwise => {
                for p in 0..topo.x2.n_pairs() as u32 {
                    if rng.random_range(0.0..1.0) < knobs.stale_trial_frac {
                        cfg.set_pair_value(def.id, p, value, Provenance::StaleTrial);
                    }
                }
            }
        }
    }
}

/// Runs in-progress certification trials: per parameter (with probability
/// `live_trial_prob`), one market's TAC block flips `live_trial_frac` of
/// its slots to the candidate value. Kept below the voting threshold —
/// the paper notes these recommendations mismatch precisely because the
/// trial value "was not in the majority".
pub fn apply_live_trials(
    cfg: &mut Configuration,
    topo: &Topology,
    catalog: &ParamCatalog,
    rules: &[LatentRule],
    knobs: &TuningKnobs,
    seed: u64,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x11FE_77AB);
    for def in catalog.defs() {
        if rng.random_range(0.0..1.0) >= knobs.live_trial_prob {
            continue;
        }
        let rule = &rules[def.id.index()];
        // The certification candidate is likewise a new value.
        let value = rule.noise_pool[rng.random_range(0..rule.noise_pool.len())];
        let market = &topo.markets[rng.random_range(0..topo.markets.len())];
        let tac = rng.random_range(0..crate::names::TACS_PER_MARKET as u16)
            + market.id.0 * crate::names::TACS_PER_MARKET as u16;
        let in_trial = |c: &Carrier| c.attrs.get(crate::attr_idx::TAC) == tac;
        match def.kind {
            ParamKind::Singular => {
                for &cid in &market.carriers {
                    if in_trial(&topo.carriers[cid.index()])
                        && rng.random_range(0.0..1.0) < knobs.live_trial_frac
                    {
                        cfg.set_value(def.id, cid, value, Provenance::TrialInProgress);
                    }
                }
            }
            ParamKind::Pairwise => {
                for &cid in &market.carriers {
                    if !in_trial(&topo.carriers[cid.index()]) {
                        continue;
                    }
                    for p in topo.x2.pairs_from(cid) {
                        if rng.random_range(0.0..1.0) < knobs.live_trial_frac {
                            cfg.set_pair_value(def.id, p, value, Provenance::TrialInProgress);
                        }
                    }
                }
            }
        }
    }
}

/// Adds one-off noise: each slot independently deviates with probability
/// `noise_rate` to an arbitrary plausible value. These are the
/// irreducible "inconclusive" mismatches.
pub fn apply_noise(
    cfg: &mut Configuration,
    topo: &Topology,
    catalog: &ParamCatalog,
    rules: &[LatentRule],
    knobs: &TuningKnobs,
    seed: u64,
) {
    if knobs.noise_rate <= 0.0 {
        return;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0D15_EA5E);
    for def in catalog.defs() {
        let rule = &rules[def.id.index()];
        match def.kind {
            ParamKind::Singular => {
                for c in &topo.carriers {
                    if rng.random_range(0.0..1.0) < knobs.noise_rate {
                        let cur = cfg.value(def.id, c.id);
                        let v = override_value(&mut rng, rule, def.range.n_values(), Some(cur));
                        cfg.set_value(def.id, c.id, v, Provenance::Noise);
                    }
                }
            }
            ParamKind::Pairwise => {
                for p in 0..topo.x2.n_pairs() as u32 {
                    if rng.random_range(0.0..1.0) < knobs.noise_rate {
                        let cur = cfg.pair_value(def.id, p);
                        let v = override_value(&mut rng, rule, def.range.n_values(), Some(cur));
                        cfg.set_pair_value(def.id, p, v, Provenance::Noise);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::build_schema;
    use crate::rules::generate_rules;
    use crate::scale::NetScale;
    use crate::topology;

    fn fixture() -> (Topology, ParamCatalog, Vec<LatentRule>) {
        let scale = NetScale {
            n_markets: 2,
            enbs_per_market: 8,
            seed: 3,
        };
        let schema = build_schema(scale.n_markets);
        let topo = topology::build(&scale, &schema);
        let catalog = ParamCatalog::standard();
        let rules = generate_rules(&catalog, 3);
        (topo, catalog, rules)
    }

    #[test]
    fn rules_fill_every_slot_with_rule_provenance() {
        let (topo, catalog, rules) = fixture();
        let cfg = apply_rules(&topo, &catalog, &rules);
        for def in catalog.defs() {
            match def.kind {
                ParamKind::Singular => {
                    for c in &topo.carriers {
                        assert_eq!(cfg.provenance(def.id, c.id), Provenance::Rule);
                        assert!((cfg.value(def.id, c.id) as usize) < def.range.n_values());
                    }
                }
                ParamKind::Pairwise => {
                    for p in 0..topo.x2.n_pairs() as u32 {
                        assert_eq!(cfg.pair_provenance(def.id, p), Provenance::Rule);
                    }
                }
            }
        }
    }

    #[test]
    fn rule_values_are_attribute_determined() {
        // Two carriers with identical relevant attributes get identical
        // rule values for every singular parameter.
        let (topo, catalog, rules) = fixture();
        let cfg = apply_rules(&topo, &catalog, &rules);
        for def in catalog.singular_ids() {
            let rule = &rules[def.index()];
            let mut by_key = std::collections::HashMap::new();
            for c in &topo.carriers {
                let key = singular_key(rule, c);
                let v = cfg.value(def, c.id);
                let prev = by_key.insert(key, v);
                if let Some(prev) = prev {
                    assert_eq!(prev, v, "same key, different value");
                }
            }
        }
    }

    #[test]
    fn pockets_are_geographically_coherent() {
        let (topo, catalog, rules) = fixture();
        let mut cfg = apply_rules(&topo, &catalog, &rules);
        let knobs = TuningKnobs {
            pocket_prob: 1.0,
            ..TuningKnobs::default()
        };
        let pockets = apply_pockets(&mut cfg, &topo, &catalog, &rules, &knobs, 17);
        assert!(!pockets.is_empty());
        for pocket in &pockets {
            assert!(!pocket.params.is_empty(), "campaign pocket tunes something");
            for &(pid, _) in &pocket.params {
                if catalog.def(pid).kind != ParamKind::Singular {
                    continue;
                }
                // Every in-market carrier of the pocket's band inside the
                // radius carries pocket provenance — possibly from a later
                // pocket of the same parameter that overwrote this one.
                for &cid in &topo.markets[pocket.market.index()].carriers {
                    let c = &topo.carriers[cid.index()];
                    let d = topo.enodebs[c.enodeb.index()]
                        .position
                        .distance(pocket.center);
                    if d <= pocket.radius_km && c.band == pocket.band {
                        let prov = cfg.provenance(pid, cid);
                        assert!(
                            matches!(prov, Provenance::Pocket { .. }),
                            "carrier inside pocket has provenance {prov:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stale_trials_are_scattered_at_the_requested_rate() {
        let (topo, catalog, rules) = fixture();
        let mut cfg = apply_rules(&topo, &catalog, &rules);
        let knobs = TuningKnobs {
            stale_trial_prob: 1.0,
            stale_trial_frac: 0.05,
            ..TuningKnobs::none()
        };
        apply_stale_trials(&mut cfg, &topo, &catalog, &rules, &knobs, 11);
        let mut stale = 0usize;
        let mut total = 0usize;
        for def in catalog.singular_ids() {
            for c in &topo.carriers {
                total += 1;
                if cfg.provenance(def, c.id) == Provenance::StaleTrial {
                    stale += 1;
                }
            }
        }
        let rate = stale as f64 / total as f64;
        assert!(
            (rate - 0.05).abs() < 0.02,
            "stale rate {rate} far from requested 0.05"
        );
    }

    #[test]
    fn noise_respects_rate_and_changes_values() {
        let (topo, catalog, rules) = fixture();
        let clean = apply_rules(&topo, &catalog, &rules);
        let mut cfg = clean.clone();
        let knobs = TuningKnobs {
            noise_rate: 0.1,
            ..TuningKnobs::none()
        };
        apply_noise(&mut cfg, &topo, &catalog, &rules, &knobs, 23);
        let mut noisy = 0usize;
        let mut total = 0usize;
        for def in catalog.singular_ids() {
            for c in &topo.carriers {
                total += 1;
                if cfg.provenance(def, c.id) == Provenance::Noise {
                    noisy += 1;
                    assert_ne!(
                        cfg.value(def, c.id),
                        clean.value(def, c.id),
                        "noise must actually change the value"
                    );
                }
            }
        }
        let rate = noisy as f64 / total as f64;
        assert!((rate - 0.1).abs() < 0.03, "noise rate {rate}");
    }

    #[test]
    fn zero_knobs_leave_config_untouched() {
        let (topo, catalog, rules) = fixture();
        let clean = apply_rules(&topo, &catalog, &rules);
        let mut cfg = clean.clone();
        let knobs = TuningKnobs::none();
        let pockets = apply_pockets(&mut cfg, &topo, &catalog, &rules, &knobs, 1);
        apply_stale_trials(&mut cfg, &topo, &catalog, &rules, &knobs, 2);
        apply_live_trials(&mut cfg, &topo, &catalog, &rules, &knobs, 3);
        apply_noise(&mut cfg, &topo, &catalog, &rules, &knobs, 4);
        assert!(pockets.is_empty());
        assert_eq!(cfg, clean);
    }

    #[test]
    fn live_trials_stay_within_one_tac() {
        let (topo, catalog, rules) = fixture();
        let mut cfg = apply_rules(&topo, &catalog, &rules);
        let knobs = TuningKnobs {
            live_trial_prob: 1.0,
            live_trial_frac: 0.5,
            ..TuningKnobs::none()
        };
        apply_live_trials(&mut cfg, &topo, &catalog, &rules, &knobs, 7);
        for def in catalog.singular_ids() {
            let tacs: std::collections::HashSet<u16> = topo
                .carriers
                .iter()
                .filter(|c| cfg.provenance(def, c.id) == Provenance::TrialInProgress)
                .map(|c| c.attrs.get(crate::attr_idx::TAC))
                .collect();
            assert!(tacs.len() <= 1, "trial for {def} spans TACs {tacs:?}");
        }
    }
}
