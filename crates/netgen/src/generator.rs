//! Top-level generator: topology + rules + tuning → a validated
//! [`NetworkSnapshot`] plus the ground truth that produced it.

use crate::names;
use crate::rules::{self, LatentRule};
use crate::scale::{NetScale, TuningKnobs};
use crate::topology;
use crate::tuning::{self, Pocket};
use auric_model::{AttrArena, NetworkSnapshot, ParamCatalog};
use serde::{Deserialize, Serialize};

/// Everything the generator knows that the learners must *discover*:
/// the latent rules and the tuning pockets. Exposed for diagnostics,
/// generator tests and the mismatch-labeling evaluation — never fed to a
/// learner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    pub rules: Vec<LatentRule>,
    pub pockets: Vec<Pocket>,
}

/// A generated network: the observable snapshot and the hidden truth.
#[derive(Debug, Clone)]
pub struct GeneratedNetwork {
    pub snapshot: NetworkSnapshot,
    pub truth: GroundTruth,
}

impl GeneratedNetwork {
    /// Encodes the generated fleet's attributes into a shared columnar
    /// [`AttrArena`] — build it once before fanning jobs out and pass it
    /// to the `_in` fit/dataset entry points.
    pub fn arena(&self) -> AttrArena {
        AttrArena::from_snapshot(&self.snapshot)
    }
}

/// Generates a network at `scale` with tuning processes `knobs`.
/// Deterministic: equal inputs give byte-identical outputs.
///
/// # Panics
/// Panics if the generated snapshot fails validation — that is a bug in
/// the generator, never a caller error.
pub fn generate(scale: &NetScale, knobs: &TuningKnobs) -> GeneratedNetwork {
    let schema = names::build_schema(scale.n_markets);
    let catalog = ParamCatalog::standard();
    let topo = topology::build(scale, &schema);
    let rules = rules::generate_rules(&catalog, scale.seed ^ 0x5EED_0F0F);
    let mut config = tuning::apply_rules(&topo, &catalog, &rules);
    let pockets = tuning::apply_pockets(
        &mut config,
        &topo,
        &catalog,
        &rules,
        knobs,
        scale.seed ^ 0x01,
    );
    tuning::apply_stale_trials(
        &mut config,
        &topo,
        &catalog,
        &rules,
        knobs,
        scale.seed ^ 0x02,
    );
    tuning::apply_live_trials(
        &mut config,
        &topo,
        &catalog,
        &rules,
        knobs,
        scale.seed ^ 0x03,
    );
    tuning::apply_noise(
        &mut config,
        &topo,
        &catalog,
        &rules,
        knobs,
        scale.seed ^ 0x04,
    );

    let snapshot = NetworkSnapshot {
        schema,
        catalog,
        markets: topo.markets,
        enodebs: topo.enodebs,
        carriers: topo.carriers,
        x2: topo.x2,
        config,
    };
    snapshot
        .validate()
        .unwrap_or_else(|e| panic!("generator produced an invalid snapshot: {e}"));
    GeneratedNetwork {
        snapshot,
        truth: GroundTruth { rules, pockets },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_model::Provenance;

    #[test]
    fn generates_valid_snapshot() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        net.snapshot.validate().unwrap();
        assert_eq!(net.snapshot.markets.len(), 2);
        assert_eq!(net.snapshot.catalog.len(), 65);
        assert_eq!(net.truth.rules.len(), 65);
    }

    #[test]
    fn arena_matches_the_generated_fleet() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let arena = net.arena();
        assert_eq!(arena.n_carriers(), net.snapshot.n_carriers());
        assert_eq!(arena.n_pairs(), net.snapshot.x2.n_pairs());
        for a in net.snapshot.schema.attr_ids() {
            let col = arena.column(a);
            for (i, c) in net.snapshot.carriers.iter().enumerate() {
                assert_eq!(col[i], c.attrs.get(a));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let scale = NetScale::tiny();
        let knobs = TuningKnobs::default();
        let a = generate(&scale, &knobs);
        let b = generate(&scale, &knobs);
        assert_eq!(a.snapshot.config, b.snapshot.config);
        assert_eq!(a.snapshot.carriers, b.snapshot.carriers);
        assert_eq!(a.truth.pockets, b.truth.pockets);
    }

    #[test]
    fn seeds_produce_different_networks() {
        let knobs = TuningKnobs::default();
        let a = generate(&NetScale::tiny(), &knobs);
        let b = generate(&NetScale::tiny().with_seed(1234), &knobs);
        assert_ne!(a.snapshot.config, b.snapshot.config);
    }

    #[test]
    fn default_knobs_leave_most_values_rule_driven() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let snap = &net.snapshot;
        let mut rule_slots = 0usize;
        let mut total = 0usize;
        let mut provenance_kinds = std::collections::HashSet::new();
        for p in snap.catalog.singular_ids() {
            for c in &snap.carriers {
                total += 1;
                let prov = snap.config.provenance(p, c.id);
                provenance_kinds.insert(format!("{prov:?}"));
                if prov == Provenance::Rule {
                    rule_slots += 1;
                }
            }
        }
        let frac = rule_slots as f64 / total as f64;
        assert!(
            frac > 0.90,
            "rule-driven fraction {frac} too low — tuning overwhelms rules"
        );
        assert!(
            frac < 0.999,
            "rule-driven fraction {frac} too high — tuning never fired"
        );
        assert!(
            provenance_kinds.len() >= 3,
            "expected several provenance kinds, saw {provenance_kinds:?}"
        );
    }

    #[test]
    fn clean_network_is_pure_rules() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        assert!(net.truth.pockets.is_empty());
        for p in snap.catalog.singular_ids() {
            for c in &snap.carriers {
                assert_eq!(snap.config.provenance(p, c.id), Provenance::Rule);
            }
        }
        for p in snap.catalog.pairwise_ids() {
            for q in 0..snap.x2.n_pairs() as u32 {
                assert_eq!(snap.config.pair_provenance(p, q), Provenance::Rule);
            }
        }
    }

    #[test]
    fn variability_shape_matches_fig2() {
        // Fig. 2: several of the 65 parameters exceed 10 distinct values
        // and the maximum approaches 200. The tiny network can't reach
        // 200 combinations, so check at small scale and proportionally.
        let net = generate(&NetScale::small(), &TuningKnobs::default());
        let snap = &net.snapshot;
        let mut distinct: Vec<usize> = Vec::new();
        for def in snap.catalog.defs() {
            let n = match def.kind {
                auric_model::ParamKind::Singular => {
                    auric_stats::freq::distinct_count(snap.config.values_of(def.id))
                }
                auric_model::ParamKind::Pairwise => {
                    auric_stats::freq::distinct_count(snap.config.pair_values_of(def.id))
                }
            };
            distinct.push(n);
        }
        let over_10 = distinct.iter().filter(|&&d| d > 10).count();
        let max = *distinct.iter().max().unwrap();
        assert!(
            over_10 >= 5,
            "only {over_10} parameters exceed 10 distinct values"
        );
        assert!(max >= 50, "max variability {max} nowhere near Fig. 2's 200");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any seed yields a valid snapshot with the catalog invariants.
        #[test]
        fn any_seed_generates_valid_networks(seed in 0u64..1_000_000) {
            let scale = NetScale { n_markets: 2, enbs_per_market: 6, seed };
            let net = generate(&scale, &TuningKnobs::default());
            prop_assert!(net.snapshot.validate().is_ok());
            prop_assert_eq!(net.snapshot.catalog.len(), 65);
            prop_assert_eq!(net.truth.rules.len(), 65);
            // Every pocket only references catalog parameters and on-grid
            // values.
            for pocket in &net.truth.pockets {
                for &(p, v) in &pocket.params {
                    let def = net.snapshot.catalog.def(p);
                    prop_assert!((v as usize) < def.range.n_values());
                }
            }
        }

        /// Knob extremes never panic: everything-on and everything-off.
        #[test]
        fn knob_extremes_are_safe(seed in 0u64..10_000) {
            let scale = NetScale { n_markets: 1, enbs_per_market: 4, seed };
            let heavy = TuningKnobs {
                pocket_prob: 1.0,
                max_pockets: 4,
                params_per_pocket: (30, 65),
                pocket_radius_km: (10.0, 50.0),
                hidden_pocket_frac: 1.0,
                stale_trial_prob: 1.0,
                stale_trial_frac: 0.5,
                live_trial_prob: 1.0,
                live_trial_frac: 0.9,
                noise_rate: 0.5,
            };
            let net = generate(&scale, &heavy);
            prop_assert!(net.snapshot.validate().is_ok());
            let clean = generate(&scale, &TuningKnobs::none());
            prop_assert!(clean.snapshot.validate().is_ok());
        }
    }
}
