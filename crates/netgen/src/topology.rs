//! Topology construction: markets, eNodeBs, carriers, attributes and the
//! X2 neighbor-relation graph.
//!
//! Geography drives everything downstream: morphology comes from distance
//! to an urban core, X2 relations from radio adjacency, and the tuning
//! pockets of [`crate::tuning`] are disks on the same plane — which is
//! exactly why geographic proximity carries signal for the local learner.

use crate::attr_idx;
use crate::names;
use crate::scale::NetScale;
use auric_model::{
    AttrVec, AttributeSchema, Band, Carrier, CarrierId, Enodeb, EnodebId, Market, MarketId,
    Morphology, Point, Timezone, Vendor, X2Graph,
};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Side length of each market's square plane, in km.
pub const MARKET_SIZE_KM: f64 = 60.0;

/// The physical network before any configuration is attached.
#[derive(Debug, Clone)]
pub struct Topology {
    pub markets: Vec<Market>,
    pub enodebs: Vec<Enodeb>,
    pub carriers: Vec<Carrier>,
    pub x2: X2Graph,
}

/// One market's topology as produced by [`build_market`]: entities carry
/// their *global* ids (offset by the bases passed in), edges are global
/// too, and the dynamic attributes are still placeholders.
pub(crate) struct MarketBuild {
    pub market: Market,
    pub enodebs: Vec<Enodeb>,
    pub carriers: Vec<Carrier>,
    pub edges: Vec<(CarrierId, CarrierId)>,
}

/// Builds the full topology for `scale`. Deterministic in `scale.seed`.
pub fn build(scale: &NetScale, schema: &AttributeSchema) -> Topology {
    assert!(scale.n_markets > 0, "need at least one market");
    assert!(
        scale.enbs_per_market >= 2,
        "need at least two eNodeBs per market"
    );

    let mut markets = Vec::with_capacity(scale.n_markets);
    let mut enodebs: Vec<Enodeb> = Vec::new();
    let mut carriers: Vec<Carrier> = Vec::new();
    let mut edges: Vec<(CarrierId, CarrierId)> = Vec::new();

    for m in 0..scale.n_markets {
        let mb = build_market(scale, schema, m, enodebs.len(), carriers.len());
        markets.push(mb.market);
        enodebs.extend(mb.enodebs);
        carriers.extend(mb.carriers);
        edges.extend(mb.edges);
    }

    let x2 = X2Graph::from_edges(carriers.len(), &edges);
    fill_dynamic_attrs(&mut carriers, &enodebs, &x2, schema, 0, 0);

    Topology {
        markets,
        enodebs,
        carriers,
        x2,
    }
}

/// Builds market `m`'s eNodeBs, carriers and X2 edges. Each market has an
/// independent RNG stream, so this is exactly the body of [`build`]'s
/// per-market loop — the streaming generator calls it one market at a
/// time (and again to regenerate a market on demand) and gets the same
/// bytes, provided `enb_base`/`carrier_base` equal the entity counts of
/// all earlier markets.
pub(crate) fn build_market(
    scale: &NetScale,
    schema: &AttributeSchema,
    m: usize,
    enb_base: usize,
    carrier_base: usize,
) -> MarketBuild {
    let market_id = MarketId(m as u16);
    // Per-market RNG stream so adding markets never reshuffles earlier
    // ones.
    let mut rng =
        ChaCha8Rng::seed_from_u64(scale.seed.wrapping_mul(0x9E37_79B9).wrapping_add(m as u64));

    // Market size varies the way Table 3's markets do (the largest is
    // ~2x the smallest of the four sampled ones).
    let factor: f64 = rng.random_range(0.6..1.6);
    let n_enb = ((scale.enbs_per_market as f64 * factor).round() as usize).max(2);

    // Urban cores.
    let n_cores = 1 + (rng.random_range(0..10u32) < 4) as usize;
    let cores: Vec<Point> = (0..n_cores)
        .map(|_| Point {
            x: rng.random_range(15.0..45.0),
            y: rng.random_range(15.0..45.0),
        })
        .collect();

    let dominant_vendor = Vendor::ALL[m % 3];
    // Markets sit at different upgrade stages.
    let market_sw: u16 = if m.is_multiple_of(5) { 2 } else { 3 };
    // Mid-band build-out preference differs per market.
    let mid_pref: u16 = if m.is_multiple_of(2) { 2 } else { 3 };

    let mut enodebs: Vec<Enodeb> = Vec::with_capacity(n_enb);
    let mut carriers: Vec<Carrier> = Vec::new();
    let mut edges: Vec<(CarrierId, CarrierId)> = Vec::new();
    let mut market_enbs = Vec::with_capacity(n_enb);
    let mut market_carriers = Vec::new();

    for _ in 0..n_enb {
        let enb_id = EnodebId::from_index(enb_base + enodebs.len());
        let position = sample_position(&mut rng, &cores);
        let core_dist = cores
            .iter()
            .map(|c| c.distance(position))
            .fold(f64::INFINITY, f64::min);
        let morphology = if core_dist < 3.5 {
            Morphology::Urban
        } else if core_dist < 12.0 {
            Morphology::Suburban
        } else {
            Morphology::Rural
        };
        let vendor = if rng.random_range(0.0..1.0) < 0.8 {
            dominant_vendor
        } else {
            Vendor::ALL[rng.random_range(0..3usize)]
        };
        // Hardware generation loosely tracks vendor.
        let hardware: u16 = match vendor {
            Vendor::VendorA => [0u16, 1, 1, 2][rng.random_range(0..4usize)],
            Vendor::VendorB => [1u16, 1, 2, 2][rng.random_range(0..4usize)],
            Vendor::VendorC => [0u16, 0, 1, 2][rng.random_range(0..4usize)],
        };
        let software = if rng.random_range(0.0..1.0) < 0.85 {
            market_sw
        } else {
            market_sw - 1
        };
        let tac = (m * names::TACS_PER_MARKET
            + usize::from(position.x >= MARKET_SIZE_KM / 2.0) * 2
            + usize::from(position.y >= MARKET_SIZE_KM / 2.0)) as u16;
        let near_border = position.x < 3.0
            || position.y < 3.0
            || position.x > MARKET_SIZE_KM - 3.0
            || position.y > MARKET_SIZE_KM - 3.0;

        let mut enb = Enodeb {
            id: enb_id,
            market: market_id,
            position,
            morphology,
            vendor,
            carriers: Vec::new(),
        };

        for face in 0..3u8 {
            for band in face_bands(&mut rng, morphology) {
                let id = CarrierId::from_index(carrier_base + carriers.len());
                let attrs = carrier_attrs(
                    &mut rng,
                    schema,
                    CarrierCtx {
                        band,
                        morphology,
                        vendor,
                        hardware,
                        software,
                        tac,
                        market: m as u16,
                        mid_pref,
                        near_border,
                    },
                );
                carriers.push(Carrier {
                    id,
                    enodeb: enb_id,
                    market: market_id,
                    face,
                    band,
                    attrs,
                });
                enb.carriers.push(id);
                market_carriers.push(id);
            }
        }
        market_enbs.push(enb_id);
        enodebs.push(enb);
    }

    // Intra-eNodeB X2 relations.
    for enb in &enodebs {
        intra_enb_edges(enb, &carriers, carrier_base, &mut edges);
    }

    // Inter-eNodeB X2 relations: each eNodeB peers with its k nearest
    // in-market eNodeBs (denser areas keep more relations).
    for (i, a) in enodebs.iter().enumerate() {
        let k = match a.morphology {
            Morphology::Urban => 5,
            Morphology::Suburban => 4,
            Morphology::Rural => 3,
        };
        let mut by_dist: Vec<(f64, usize)> = enodebs
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, b)| (a.position.distance(b.position), j))
            .collect();
        by_dist.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        for &(_, j) in by_dist.iter().take(k) {
            if j < i {
                continue; // each unordered eNodeB pair handled once
            }
            inter_enb_edges(
                a,
                &enodebs[j],
                &carriers,
                carrier_base,
                &mut rng,
                &mut edges,
            );
        }
    }

    let market = Market {
        id: market_id,
        name: format!("Market {}", m + 1),
        timezone: Timezone::ALL[m % 4],
        carriers: market_carriers,
        enodebs: market_enbs,
    };
    MarketBuild {
        market,
        enodebs,
        carriers,
        edges,
    }
}

/// Samples an eNodeB position: clustered near a core, in the suburban
/// ring, or uniform rural.
fn sample_position(rng: &mut ChaCha8Rng, cores: &[Point]) -> Point {
    let clamp = |v: f64| v.clamp(0.0, MARKET_SIZE_KM);
    let class: f64 = rng.random_range(0.0..1.0);
    if class < 0.45 {
        let c = cores[rng.random_range(0..cores.len())];
        Point {
            x: clamp(c.x + gaussian(rng) * 2.0),
            y: clamp(c.y + gaussian(rng) * 2.0),
        }
    } else if class < 0.80 {
        let c = cores[rng.random_range(0..cores.len())];
        Point {
            x: clamp(c.x + gaussian(rng) * 7.0),
            y: clamp(c.y + gaussian(rng) * 7.0),
        }
    } else {
        Point {
            x: rng.random_range(0.0..MARKET_SIZE_KM),
            y: rng.random_range(0.0..MARKET_SIZE_KM),
        }
    }
}

/// Standard normal via Box-Muller (two uniforms, one output kept).
fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The carrier bands hosted on one face, by morphology (§2.1: urban faces
/// carry full LB/MB/HB stacks, rural faces mostly the coverage layer).
fn face_bands(rng: &mut ChaCha8Rng, morphology: Morphology) -> Vec<Band> {
    match morphology {
        Morphology::Urban => {
            let mut v = vec![Band::Low, Band::Mid, Band::High];
            if rng.random_range(0.0..1.0) < 0.5 {
                v.push(Band::Mid);
            }
            v
        }
        Morphology::Suburban => {
            let mut v = vec![Band::Low, Band::Mid];
            if rng.random_range(0.0..1.0) < 0.4 {
                v.push(Band::High);
            }
            v
        }
        Morphology::Rural => {
            let mut v = vec![Band::Low];
            if rng.random_range(0.0..1.0) < 0.5 {
                v.push(Band::Mid);
            }
            v
        }
    }
}

/// Static per-carrier context threaded into attribute sampling.
struct CarrierCtx {
    band: Band,
    morphology: Morphology,
    vendor: Vendor,
    hardware: u16,
    software: u16,
    tac: u16,
    market: u16,
    mid_pref: u16,
    near_border: bool,
}

/// Samples a carrier's Table-1 attribute vector. Dynamic attributes
/// (`neighbor_channel`, `neighbors_same_enodeb`) get placeholders and are
/// filled by [`fill_dynamic_attrs`] once the X2 graph exists.
fn carrier_attrs(rng: &mut ChaCha8Rng, schema: &AttributeSchema, ctx: CarrierCtx) -> AttrVec {
    let frequency: u16 = match ctx.band {
        Band::Low => {
            if rng.random_range(0.0..1.0) < 0.7 {
                0 // 700MHz
            } else {
                1 // 850MHz
            }
        }
        Band::Mid => {
            if rng.random_range(0.0..1.0) < 0.65 {
                ctx.mid_pref
            } else {
                5 - ctx.mid_pref // the other of 1900/2100
            }
        }
        Band::High => 4, // 2300MHz
    };
    let carrier_type: u16 = if frequency == 0 && rng.random_range(0.0..1.0) < 0.12 {
        1 // FirstNet rides 700MHz
    } else if ctx.band == Band::Low && rng.random_range(0.0..1.0) < 0.03 {
        2 // NB-IoT
    } else {
        0
    };
    let carrier_info: u16 = if ctx.near_border {
        2 // border
    } else if ctx.hardware == 2 && rng.random_range(0.0..1.0) < 0.25 {
        1 // 5G-colocated
    } else {
        0
    };
    let bandwidth: u16 = match ctx.band {
        Band::Low => {
            if rng.random_range(0.0..1.0) < 0.6 {
                1 // 10MHz
            } else {
                0 // 5MHz
            }
        }
        Band::Mid => match ctx.morphology {
            Morphology::Urban => 3,
            Morphology::Suburban => {
                if rng.random_range(0.0..1.0) < 0.5 {
                    2
                } else {
                    3
                }
            }
            Morphology::Rural => 1,
        },
        Band::High => {
            if rng.random_range(0.0..1.0) < 0.7 {
                3
            } else {
                2
            }
        }
    };
    let mimo: u16 = if ctx.band == Band::High && ctx.hardware >= 1 {
        1 // 4x4
    } else if rng.random_range(0.0..1.0) < 0.7 {
        0 // 2x2
    } else {
        2 // closed-loop
    };
    let cell_size: u16 = match (ctx.morphology, ctx.band) {
        (Morphology::Urban, Band::Low) => 1,
        (Morphology::Urban, _) => 0,
        (Morphology::Suburban, Band::Low) => 2,
        (Morphology::Suburban, _) => 1,
        (Morphology::Rural, Band::Low) => 3,
        (Morphology::Rural, _) => 2,
    };
    let vendor_level = match ctx.vendor {
        Vendor::VendorA => 0u16,
        Vendor::VendorB => 1,
        Vendor::VendorC => 2,
    };

    let mut values = vec![0u16; schema.n_attrs()];
    values[attr_idx::FREQUENCY.index()] = frequency;
    values[attr_idx::CARRIER_TYPE.index()] = carrier_type;
    values[attr_idx::CARRIER_INFO.index()] = carrier_info;
    values[attr_idx::MORPHOLOGY.index()] = ctx.morphology as u16;
    values[attr_idx::BANDWIDTH.index()] = bandwidth;
    values[attr_idx::MIMO.index()] = mimo;
    values[attr_idx::HARDWARE.index()] = ctx.hardware;
    values[attr_idx::CELL_SIZE.index()] = cell_size;
    values[attr_idx::TAC.index()] = ctx.tac;
    values[attr_idx::MARKET.index()] = ctx.market;
    values[attr_idx::VENDOR.index()] = vendor_level;
    // neighbor_channel / neighbors_same_enodeb filled after X2 build.
    values[attr_idx::SOFTWARE.index()] = ctx.software;
    AttrVec::new(values)
}

/// X2 relations within one eNodeB: every same-face pair (inter-frequency
/// relations on one sector) plus same-band pairs across faces.
/// `carriers` is the owning market's slice; ids are offset by `base`.
fn intra_enb_edges(
    enb: &Enodeb,
    carriers: &[Carrier],
    base: usize,
    edges: &mut Vec<(CarrierId, CarrierId)>,
) {
    let cs = &enb.carriers;
    for (i, &a) in cs.iter().enumerate() {
        for &b in &cs[i + 1..] {
            let ca = &carriers[a.index() - base];
            let cb = &carriers[b.index() - base];
            if ca.face == cb.face || ca.band == cb.band {
                edges.push((a, b));
            }
        }
    }
}

/// X2 relations between two radio-adjacent eNodeBs: per band present on
/// both, one carrier pair (almost always), plus an occasional cross-band
/// relation. `carriers` is the owning market's slice, ids offset by
/// `base`.
fn inter_enb_edges(
    a: &Enodeb,
    b: &Enodeb,
    carriers: &[Carrier],
    base: usize,
    rng: &mut ChaCha8Rng,
    edges: &mut Vec<(CarrierId, CarrierId)>,
) {
    for band in Band::ALL {
        let ca: Vec<CarrierId> = a
            .carriers
            .iter()
            .copied()
            .filter(|&c| carriers[c.index() - base].band == band)
            .collect();
        let cb: Vec<CarrierId> = b
            .carriers
            .iter()
            .copied()
            .filter(|&c| carriers[c.index() - base].band == band)
            .collect();
        if ca.is_empty() || cb.is_empty() {
            continue;
        }
        if rng.random_range(0.0..1.0) < 0.9 {
            let x = ca[rng.random_range(0..ca.len())];
            let y = cb[rng.random_range(0..cb.len())];
            edges.push((x, y));
        }
    }
    if rng.random_range(0.0..1.0) < 0.3 && !a.carriers.is_empty() && !b.carriers.is_empty() {
        let x = a.carriers[rng.random_range(0..a.carriers.len())];
        let y = b.carriers[rng.random_range(0..b.carriers.len())];
        edges.push((x, y));
    }
}

/// Fills the two dynamic attributes that depend on the finished topology:
/// the same-eNodeB neighbor-count bucket and the dominant X2 neighbor
/// channel.
///
/// No X2 edge crosses a market line, so the computation is per-market
/// local: the streaming generator calls this with one market's slices and
/// a market-local `x2` (ids offset by the two bases) and gets the same
/// values the global pass computes.
pub(crate) fn fill_dynamic_attrs(
    carriers: &mut [Carrier],
    enodebs: &[Enodeb],
    x2: &X2Graph,
    schema: &AttributeSchema,
    enb_base: usize,
    carrier_base: usize,
) {
    let mixed_level = (schema.cardinality(attr_idx::NEIGHBOR_CHANNEL) - 1) as u16;
    let freqs: Vec<u16> = carriers
        .iter()
        .map(|c| c.attrs.get(attr_idx::FREQUENCY))
        .collect();
    for c in carriers.iter_mut() {
        let same_enb = enodebs[c.enodeb.index() - enb_base]
            .carriers
            .len()
            .saturating_sub(1);
        c.attrs.set(
            attr_idx::NEIGHBORS_SAME_ENB,
            names::neighbor_bucket(same_enb),
        );

        // Dominant neighbor channel; "mixed" when no strict winner.
        let mut counts = [0usize; 8];
        for &n in x2.neighbors(CarrierId::from_index(c.id.index() - carrier_base)) {
            counts[freqs[n.index()] as usize] += 1;
        }
        let (best, best_count) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, &c)| (i as u16, c))
            .unwrap_or((0, 0));
        let runner_up = counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i as u16 != best)
            .map(|(_, &c)| c)
            .max()
            .unwrap_or(0);
        let level = if best_count == 0 || best_count == runner_up {
            mixed_level
        } else {
            best
        };
        c.attrs.set(attr_idx::NEIGHBOR_CHANNEL, level);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_topology() -> (Topology, AttributeSchema) {
        let scale = NetScale {
            n_markets: 3,
            enbs_per_market: 12,
            seed: 42,
        };
        let schema = names::build_schema(scale.n_markets);
        (build(&scale, &schema), schema)
    }

    #[test]
    fn builds_consistent_topology() {
        let (t, schema) = small_topology();
        assert_eq!(t.markets.len(), 3);
        assert!(t.carriers.len() > 50);
        assert_eq!(t.x2.n_carriers(), t.carriers.len());
        t.x2.validate().unwrap();
        for c in &t.carriers {
            schema.validate(&c.attrs).unwrap();
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let scale = NetScale {
            n_markets: 2,
            enbs_per_market: 8,
            seed: 5,
        };
        let schema = names::build_schema(2);
        let a = build(&scale, &schema);
        let b = build(&scale, &schema);
        assert_eq!(a.carriers, b.carriers);
        assert_eq!(a.enodebs, b.enodebs);
        assert_eq!(a.x2, b.x2);
    }

    #[test]
    fn different_seeds_differ() {
        let schema = names::build_schema(2);
        let a = build(
            &NetScale {
                n_markets: 2,
                enbs_per_market: 8,
                seed: 1,
            },
            &schema,
        );
        let b = build(
            &NetScale {
                n_markets: 2,
                enbs_per_market: 8,
                seed: 2,
            },
            &schema,
        );
        assert_ne!(
            a.enodebs.iter().map(|e| e.position).collect::<Vec<_>>(),
            b.enodebs.iter().map(|e| e.position).collect::<Vec<_>>()
        );
    }

    #[test]
    fn carriers_report_their_market_attribute() {
        let (t, _) = small_topology();
        for c in &t.carriers {
            assert_eq!(c.attrs.get(attr_idx::MARKET), c.market.0);
        }
    }

    #[test]
    fn x2_stays_within_market() {
        // Inter-eNodeB relations are built per market and intra-eNodeB
        // ones trivially stay put, so no X2 edge crosses a market line.
        let (t, _) = small_topology();
        for (_, j, k) in t.x2.pairs() {
            assert_eq!(t.carriers[j.index()].market, t.carriers[k.index()].market);
        }
    }

    #[test]
    fn every_carrier_has_neighbors() {
        // Same-face relations guarantee a neighbor for any face with ≥2
        // carriers; rural single-carrier faces still get same-band
        // cross-face or inter-eNodeB relations. Allow rare isolates but
        // require 99% coverage.
        let (t, _) = small_topology();
        let isolated = t.carriers.iter().filter(|c| t.x2.degree(c.id) == 0).count();
        assert!(
            (isolated as f64) < 0.01 * t.carriers.len() as f64,
            "{isolated} of {} carriers isolated",
            t.carriers.len()
        );
    }

    #[test]
    fn morphology_mix_is_plausible() {
        let (t, _) = small_topology();
        let mut counts = [0usize; 3];
        for e in &t.enodebs {
            counts[e.morphology as usize] += 1;
        }
        // All three morphologies occur.
        assert!(
            counts.iter().all(|&c| c > 0),
            "morphology counts {counts:?}"
        );
    }

    #[test]
    fn bands_respect_morphology() {
        let (t, _) = small_topology();
        for c in &t.carriers {
            let morph = t.enodebs[c.enodeb.index()].morphology;
            if morph == Morphology::Rural {
                assert_ne!(c.band, Band::High, "rural faces carry no high band");
            }
        }
    }

    #[test]
    fn face_count_is_three() {
        let (t, _) = small_topology();
        for c in &t.carriers {
            assert!(c.face < 3);
        }
        // Every eNodeB hosts at least one carrier per face at urban sites.
        for e in &t.enodebs {
            let faces: std::collections::HashSet<u8> = e
                .carriers
                .iter()
                .map(|&c| t.carriers[c.index()].face)
                .collect();
            assert_eq!(faces.len(), 3, "every face is populated");
        }
    }
}
