//! Level-name vocabularies for the Table-1 attribute schema.
//!
//! Level *indices* are what the learners see; the names only matter for
//! explanations and reports, but keeping them realistic makes the examples
//! and the decision-tree explanations read like the paper's.

use auric_model::attrs::{table1_schema, AttributeSchema, Table1Levels};

/// Carrier center frequencies and their band classes.
/// Index in this array is the `carrier_frequency` level index.
pub const FREQUENCIES: [(&str, auric_model::Band); 5] = [
    ("700MHz", auric_model::Band::Low),
    ("850MHz", auric_model::Band::Low),
    ("1900MHz", auric_model::Band::Mid),
    ("2100MHz", auric_model::Band::Mid),
    ("2300MHz", auric_model::Band::High),
];

/// `carrier_type` levels.
pub const CARRIER_TYPES: [&str; 3] = ["standard", "FirstNet", "NB-IoT"];
/// `carrier_information` levels.
pub const CARRIER_INFOS: [&str; 3] = ["none", "5G-colocated", "border"];
/// `morphology` levels (indices match [`auric_model::Morphology::ALL`]).
pub const MORPHOLOGIES: [&str; 3] = ["urban", "suburban", "rural"];
/// `channel_bandwidth` levels.
pub const BANDWIDTHS: [&str; 4] = ["5MHz", "10MHz", "15MHz", "20MHz"];
/// `downlink_mimo_mode` levels.
pub const MIMO_MODES: [&str; 3] = ["2x2", "4x4", "closed-loop"];
/// `hardware_configuration` levels (remote radio head generations).
pub const HARDWARE: [&str; 3] = ["RRH1", "RRH2", "RRH3"];
/// `expected_cell_size` levels.
pub const CELL_SIZES: [&str; 4] = ["1mi", "2mi", "3mi", "5mi"];
/// `vendor` levels (indices match [`auric_model::Vendor::ALL`]).
pub const VENDORS: [&str; 3] = ["VendorA", "VendorB", "VendorC"];
/// Bucketized `neighbors_same_enodeb` levels.
pub const NEIGHBOR_BUCKETS: [&str; 4] = ["0-2", "3-5", "6-8", "9+"];
/// `software_version` levels, oldest first.
pub const SOFTWARE_VERSIONS: [&str; 4] = ["RAN20Q1", "RAN20Q2", "RAN21Q1", "RAN21Q2"];
/// Tracking-area blocks per market (TAC level count = markets × this).
pub const TACS_PER_MARKET: usize = 4;

/// Buckets a same-eNodeB neighbor count into a `neighbors_same_enodeb`
/// level index.
pub fn neighbor_bucket(count: usize) -> u16 {
    match count {
        0..=2 => 0,
        3..=5 => 1,
        6..=8 => 2,
        _ => 3,
    }
}

/// Builds the full Table-1 schema for a network with `n_markets` markets.
///
/// `neighbor_channel` has one level per frequency plus a final `"mixed"`
/// level; `tracking_area_code` has [`TACS_PER_MARKET`] levels per market.
pub fn build_schema(n_markets: usize) -> AttributeSchema {
    let strs = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    let mut neighbor_channel: Vec<String> =
        FREQUENCIES.iter().map(|(n, _)| n.to_string()).collect();
    neighbor_channel.push("mixed".to_string());
    table1_schema(Table1Levels {
        carrier_frequency: FREQUENCIES.iter().map(|(n, _)| n.to_string()).collect(),
        carrier_type: strs(&CARRIER_TYPES),
        carrier_information: strs(&CARRIER_INFOS),
        morphology: strs(&MORPHOLOGIES),
        channel_bandwidth: strs(&BANDWIDTHS),
        downlink_mimo_mode: strs(&MIMO_MODES),
        hardware_configuration: strs(&HARDWARE),
        expected_cell_size: strs(&CELL_SIZES),
        tracking_area_code: (0..n_markets)
            .flat_map(|m| (0..TACS_PER_MARKET).map(move |k| format!("TAC-{m}-{k}")))
            .collect(),
        market: (0..n_markets)
            .map(|m| format!("Market {}", m + 1))
            .collect(),
        vendor: strs(&VENDORS),
        neighbor_channel,
        neighbors_same_enodeb: strs(&NEIGHBOR_BUCKETS),
        software_version: strs(&SOFTWARE_VERSIONS),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr_idx;

    #[test]
    fn schema_shape() {
        let s = build_schema(28);
        assert_eq!(s.n_attrs(), 14);
        assert_eq!(s.cardinality(attr_idx::MARKET), 28);
        assert_eq!(s.cardinality(attr_idx::TAC), 28 * TACS_PER_MARKET);
        assert_eq!(s.cardinality(attr_idx::FREQUENCY), 5);
        assert_eq!(s.cardinality(attr_idx::NEIGHBOR_CHANNEL), 6);
        assert_eq!(s.level_name(attr_idx::MORPHOLOGY, 0), "urban");
        assert_eq!(s.level_name(attr_idx::SOFTWARE, 3), "RAN21Q2");
    }

    #[test]
    fn attr_idx_constants_match_names() {
        let s = build_schema(3);
        assert_eq!(s.by_name("carrier_frequency"), Some(attr_idx::FREQUENCY));
        assert_eq!(s.by_name("morphology"), Some(attr_idx::MORPHOLOGY));
        assert_eq!(s.by_name("market"), Some(attr_idx::MARKET));
        assert_eq!(s.by_name("vendor"), Some(attr_idx::VENDOR));
        assert_eq!(s.by_name("software_version"), Some(attr_idx::SOFTWARE));
        assert_eq!(
            s.by_name("neighbors_same_enodeb"),
            Some(attr_idx::NEIGHBORS_SAME_ENB)
        );
    }

    #[test]
    fn neighbor_bucketing() {
        assert_eq!(neighbor_bucket(0), 0);
        assert_eq!(neighbor_bucket(2), 0);
        assert_eq!(neighbor_bucket(3), 1);
        assert_eq!(neighbor_bucket(8), 2);
        assert_eq!(neighbor_bucket(50), 3);
    }

    #[test]
    fn frequencies_cover_all_bands() {
        use auric_model::Band;
        for band in Band::ALL {
            assert!(
                FREQUENCIES.iter().any(|&(_, b)| b == band),
                "no frequency in band {band:?}"
            );
        }
    }
}
