//! Mismatch analysis (§4.3.3, Fig. 12): when Auric's recommendation
//! disagrees with the network's current value, why?
//!
//! The paper's engineers labeled 54,915 sampled mismatches into three
//! buckets: *update learner* (5% — a missing attribute like terrain, or an
//! in-progress trial deliberately below majority), *good recommendation*
//! (28% — the network was left in a sub-optimal state by an old trial and
//! Auric's value is the better one; these were pushed as real changes),
//! and *inconclusive* (67% — needs a field trial to decide).
//!
//! Our generator records the causal provenance of every value, so the same
//! labeling is mechanical: a mismatched slot whose value came from a stale
//! trial is by construction a good recommendation, one caused by a hidden
//! attribute or live trial needs a learner/attribute update, and anything
//! else (noise, pocket boundaries, plain rule values) is inconclusive —
//! the engineers can't tell without a trial.

use crate::cf::CfModel;
use crate::scope::Scope;
use auric_model::{NetworkSnapshot, ParamKind, Provenance};
use serde::{Deserialize, Serialize};

/// The Fig. 12 label taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MismatchLabel {
    /// The learner/attribute set needs updating (terrain-driven pockets,
    /// in-progress certification trials).
    UpdateLearner,
    /// Auric's value is the better configuration; push it.
    GoodRecommendation,
    /// Needs a trial to decide.
    Inconclusive,
}

impl MismatchLabel {
    /// Display label matching the paper's pie chart.
    pub fn label(self) -> &'static str {
        match self {
            MismatchLabel::UpdateLearner => "update learner",
            MismatchLabel::GoodRecommendation => "good recommendation",
            MismatchLabel::Inconclusive => "inconclusive",
        }
    }
}

/// Maps a mismatched slot's provenance to its label.
pub fn label_for(prov: Provenance) -> MismatchLabel {
    match prov {
        Provenance::StaleTrial => MismatchLabel::GoodRecommendation,
        Provenance::TrialInProgress => MismatchLabel::UpdateLearner,
        Provenance::Pocket {
            hidden_attribute: true,
        } => MismatchLabel::UpdateLearner,
        Provenance::Pocket {
            hidden_attribute: false,
        }
        | Provenance::Rule
        | Provenance::Noise => MismatchLabel::Inconclusive,
    }
}

/// Aggregated mismatch labeling over a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MismatchReport {
    pub evaluated: usize,
    pub mismatches: usize,
    pub update_learner: usize,
    pub good_recommendation: usize,
    pub inconclusive: usize,
}

impl MismatchReport {
    /// Fraction of mismatches with a given label.
    pub fn share(&self, label: MismatchLabel) -> f64 {
        if self.mismatches == 0 {
            return 0.0;
        }
        let n = match label {
            MismatchLabel::UpdateLearner => self.update_learner,
            MismatchLabel::GoodRecommendation => self.good_recommendation,
            MismatchLabel::Inconclusive => self.inconclusive,
        };
        n as f64 / self.mismatches as f64
    }

    /// Overall mismatch rate.
    pub fn mismatch_rate(&self) -> f64 {
        if self.evaluated == 0 {
            return 0.0;
        }
        self.mismatches as f64 / self.evaluated as f64
    }
}

/// Runs the local learner over `scope` (leave-one-out) and labels every
/// mismatch by its provenance.
pub fn analyze_mismatches(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    model: &CfModel,
) -> MismatchReport {
    let mut report = MismatchReport::default();
    let mut record = |label: MismatchLabel| match label {
        MismatchLabel::UpdateLearner => report.update_learner += 1,
        MismatchLabel::GoodRecommendation => report.good_recommendation += 1,
        MismatchLabel::Inconclusive => report.inconclusive += 1,
    };
    for def in snapshot.catalog.defs() {
        match def.kind {
            ParamKind::Singular => {
                for &c in &scope.carriers {
                    report.evaluated += 1;
                    let current = snapshot.config.value(def.id, c);
                    let rec = model.recommend_local_singular(snapshot, def.id, c, true);
                    if rec.value != current {
                        report.mismatches += 1;
                        record(label_for(snapshot.config.provenance(def.id, c)));
                    }
                }
            }
            ParamKind::Pairwise => {
                for &q in &scope.pairs {
                    report.evaluated += 1;
                    let current = snapshot.config.pair_value(def.id, q);
                    let rec = model.recommend_local_pair(snapshot, def.id, q, true);
                    if rec.value != current {
                        report.mismatches += 1;
                        record(label_for(snapshot.config.pair_provenance(def.id, q)));
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cf::CfConfig;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    #[test]
    fn label_mapping_matches_paper_semantics() {
        assert_eq!(
            label_for(Provenance::StaleTrial),
            MismatchLabel::GoodRecommendation
        );
        assert_eq!(
            label_for(Provenance::TrialInProgress),
            MismatchLabel::UpdateLearner
        );
        assert_eq!(
            label_for(Provenance::Pocket {
                hidden_attribute: true
            }),
            MismatchLabel::UpdateLearner
        );
        assert_eq!(
            label_for(Provenance::Pocket {
                hidden_attribute: false
            }),
            MismatchLabel::Inconclusive
        );
        assert_eq!(label_for(Provenance::Noise), MismatchLabel::Inconclusive);
        assert_eq!(label_for(Provenance::Rule), MismatchLabel::Inconclusive);
    }

    #[test]
    fn counts_add_up() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let report = analyze_mismatches(snap, &scope, &model);
        assert_eq!(
            report.mismatches,
            report.update_learner + report.good_recommendation + report.inconclusive
        );
        assert!(report.evaluated >= report.mismatches);
        assert!(
            report.mismatch_rate() < 0.3,
            "rate {}",
            report.mismatch_rate()
        );
    }

    #[test]
    fn stale_trials_surface_as_good_recommendations() {
        // The stale rate must clear the tiny-scale baseline error floor
        // (small vote groups produce a few % of fallback errors even on
        // clean slots), so this test plants a heavy trial history.
        let knobs = TuningKnobs {
            stale_trial_prob: 1.0,
            stale_trial_frac: 0.08,
            ..TuningKnobs::none()
        };
        let net = generate(&NetScale::tiny(), &knobs);
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let report = analyze_mismatches(snap, &scope, &model);
        assert!(report.mismatches > 0);
        assert!(
            report.share(MismatchLabel::GoodRecommendation) > 0.5,
            "stale-only network should be dominated by good recommendations: {report:?}"
        );
    }

    #[test]
    fn clean_network_has_few_mismatches() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let report = analyze_mismatches(snap, &scope, &model);
        assert!(
            report.mismatch_rate() < 0.08,
            "rate {}",
            report.mismatch_rate()
        );
    }

    #[test]
    fn share_handles_zero_mismatches() {
        let r = MismatchReport::default();
        assert_eq!(r.share(MismatchLabel::Inconclusive), 0.0);
        assert_eq!(r.mismatch_rate(), 0.0);
    }
}
