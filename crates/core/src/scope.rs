//! Learning scopes: which carriers (and directed X2 pairs) a model learns
//! from and is evaluated on.
//!
//! Table 4 trains and evaluates per market; §4.3.2 expands to all 28
//! markets. A [`Scope`] pins that choice down explicitly instead of
//! implicitly slicing inside every algorithm.

use auric_model::{CarrierId, MarketId, NetworkSnapshot, PairIdx};
use serde::{Deserialize, Serialize};

/// A subset of the network used for learning/evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scope {
    /// Carriers in the scope, ascending.
    pub carriers: Vec<CarrierId>,
    /// Directed pairs whose source carrier is in the scope, ascending.
    pub pairs: Vec<PairIdx>,
}

impl Scope {
    /// The whole network.
    pub fn whole(snapshot: &NetworkSnapshot) -> Self {
        Self {
            carriers: (0..snapshot.n_carriers())
                .map(CarrierId::from_index)
                .collect(),
            pairs: (0..snapshot.x2.n_pairs() as u32).collect(),
        }
    }

    /// One market.
    pub fn market(snapshot: &NetworkSnapshot, m: MarketId) -> Self {
        Self::markets(snapshot, &[m])
    }

    /// A union of markets.
    pub fn markets(snapshot: &NetworkSnapshot, ms: &[MarketId]) -> Self {
        let mut carriers = Vec::new();
        let mut pairs = Vec::new();
        for &m in ms {
            carriers.extend_from_slice(snapshot.carriers_in_market(m));
            pairs.extend(snapshot.pairs_in_market(m));
        }
        carriers.sort_unstable();
        pairs.sort_unstable();
        Self { carriers, pairs }
    }

    /// Number of carriers in scope.
    pub fn n_carriers(&self) -> usize {
        self.carriers.len()
    }

    /// Number of directed pairs in scope.
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    #[test]
    fn whole_scope_covers_everything() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let s = Scope::whole(&net.snapshot);
        assert_eq!(s.n_carriers(), net.snapshot.n_carriers());
        assert_eq!(s.n_pairs(), net.snapshot.x2.n_pairs());
    }

    #[test]
    fn market_scopes_partition_the_network() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let total: usize = snap
            .markets
            .iter()
            .map(|m| Scope::market(snap, m.id).n_carriers())
            .sum();
        assert_eq!(total, snap.n_carriers());
        let total_pairs: usize = snap
            .markets
            .iter()
            .map(|m| Scope::market(snap, m.id).n_pairs())
            .sum();
        assert_eq!(total_pairs, snap.x2.n_pairs());
    }

    #[test]
    fn union_matches_individual_markets() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let ids: Vec<_> = snap.markets.iter().map(|m| m.id).collect();
        let union = Scope::markets(snap, &ids);
        assert_eq!(union, Scope::whole(snap));
    }

    #[test]
    fn scope_members_belong_to_their_market() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let m = snap.markets[1].id;
        let s = Scope::market(snap, m);
        for &c in &s.carriers {
            assert_eq!(snap.carrier(c).market, m);
        }
        for &p in &s.pairs {
            let (j, _) = snap.x2.pair(p);
            assert_eq!(snap.carrier(j).market, m);
        }
    }
}
