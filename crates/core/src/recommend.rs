//! Cold-start recommendation for genuinely new carriers (§3, Fig. 5).
//!
//! A new carrier is not yet carrying traffic, so all Auric can see is its
//! static attributes (and the X2 neighbor relations planned for it). This
//! module turns a fitted [`CfModel`] plus that information into a full
//! configuration recommendation with human-readable explanations — the
//! interpretability the paper's §5 "lessons learned" calls essential for
//! adoption.

use crate::cf::{Basis, CfModel, Recommendation};
use auric_model::{AttrVec, CarrierId, NetworkSnapshot, ParamId};
use auric_stats::freq::FreqTable;
use serde::{Deserialize, Serialize};

/// A carrier about to be launched: attributes plus planned X2 neighbors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewCarrier {
    pub attrs: AttrVec,
    /// Existing carriers the new one will have X2 relations with.
    pub neighbors: Vec<CarrierId>,
}

/// One parameter's recommendation, with explanation material.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigRecommendation {
    pub param: ParamId,
    /// The vendor-style parameter name.
    pub name: String,
    /// Recommended grid index.
    pub value: auric_model::ValueIdx,
    /// Recommended concrete value on the parameter's grid.
    pub concrete: f64,
    pub basis: Basis,
    /// Votes for the winner / total voters (0/0 for fallback bases).
    pub support: usize,
    pub voters: usize,
    /// `(attribute name, level name)` pairs of the dependent attributes —
    /// "carriers matching on these attributes voted for this value".
    pub matched_on: Vec<(String, String)>,
}

/// Recommends every **singular** parameter for a new carrier. Local
/// voting over the planned neighbors runs first; the global chain backs
/// it up.
pub fn recommend_singular(
    snapshot: &NetworkSnapshot,
    model: &CfModel,
    new_carrier: &NewCarrier,
) -> Vec<ConfigRecommendation> {
    let obs = model.recorder();
    // Planned neighbors come from an external radio-planning tool; one
    // that names a carrier the snapshot has never heard of must not take
    // the whole recommendation down (it used to index out of bounds).
    // Drop it from the vote and count the drop.
    let neighbors = known_neighbors(snapshot, model, &new_carrier.neighbors);
    snapshot
        .catalog
        .singular_ids()
        .map(|p| {
            let pc = model.param(p);
            let key = pc.key_for_carrier(&new_carrier.attrs);
            // Local vote over the planned neighbors with matching keys —
            // integer compares against the fitted key column on the
            // packed layout, one projection per neighbor otherwise.
            let mut table = FreqTable::new();
            if pc.codec().fits_u128() {
                let packed = pc.packed_for_carrier(&new_carrier.attrs);
                let col = pc.carrier_keys();
                for &n in &neighbors {
                    let nkey = match col {
                        // The fitted key column covers the fitting scope's
                        // snapshot; a neighbor beyond it (fit on an older,
                        // smaller network) is projected directly instead.
                        Some(col) if n.index() < col.len() => col[n.index()],
                        _ => pc.packed_for_carrier(&snapshot.carrier(n).attrs),
                    };
                    if nkey == packed {
                        table.add(snapshot.config.value(p, n));
                    }
                }
            } else {
                for &n in &neighbors {
                    let nb = snapshot.carrier(n);
                    if pc.key_for_carrier(&nb.attrs) == key {
                        table.add(snapshot.config.value(p, n));
                    }
                }
            }
            obs.inc("cf.coldstart.total");
            let rec = if let Some((value, support, voters)) =
                table.majority_with_support_excluding(None, model.config.support)
            {
                obs.inc("cf.coldstart.local_vote");
                Recommendation {
                    value,
                    basis: Basis::LocalVote,
                    support,
                    voters,
                }
            } else {
                obs.inc("cf.coldstart.fallback");
                model.recommend_global(p, &key, None)
            };
            explain(snapshot, model, p, &new_carrier.attrs, None, rec)
        })
        .collect()
}

/// Recommends every **pair-wise** parameter for the relation between a new
/// carrier and one planned neighbor.
///
/// An out-of-range `neighbor` (a planning-tool reference the snapshot has
/// never heard of) yields no recommendations — there is no relation to
/// configure — and bumps the `cf.coldstart.unknown_neighbor` counter
/// instead of panicking.
pub fn recommend_pairwise(
    snapshot: &NetworkSnapshot,
    model: &CfModel,
    new_carrier: &NewCarrier,
    neighbor: CarrierId,
) -> Vec<ConfigRecommendation> {
    let obs = model.recorder();
    if neighbor.index() >= snapshot.n_carriers() {
        obs.inc("cf.coldstart.unknown_neighbor");
        return Vec::new();
    }
    let neighbors = known_neighbors(snapshot, model, &new_carrier.neighbors);
    let dst = &snapshot.carrier(neighbor).attrs;
    snapshot
        .catalog
        .pairwise_ids()
        .map(|p| {
            let pc = model.param(p);
            let key = pc.key_for_pair(&new_carrier.attrs, dst);
            // Local vote over pairs sourced at the planned neighbors,
            // reading keys off the fitted pair column when available.
            //
            // Scanning only `pairs_from(n)` (pairs whose *source* is a
            // planned neighbor) still covers both directions of every
            // relation between planned neighbors: `X2Graph::from_edges`
            // stores each undirected edge as two directed pairs, so the
            // reverse pair (m, n) is enumerated when the scan reaches
            // source `m` (`validate()` enforces this symmetry, and
            // `pairwise_scan_covers_both_directions` below pins it). A
            // graph that nonetheless arrives asymmetric — deserialized
            // from a foreign inventory export, say — must not poison the
            // vote with unpaired directions: those pairs are skipped and
            // counted (`cf.coldstart.asymmetric_pair`) rather than trusted
            // or panicked over.
            // Pairs *into* a planned neighbor from a non-planned carrier
            // are deliberately out of scope — their source is not part of
            // the new carrier's planned neighborhood, mirroring
            // `CfModel::recommend_local_pair`.
            let mut table = FreqTable::new();
            if pc.codec().fits_u128() {
                let packed = pc.packed_for_pair(&new_carrier.attrs, dst);
                let col = pc.pair_keys();
                for &n in &neighbors {
                    for q in snapshot.x2.pairs_from(n) {
                        let (a, b) = snapshot.x2.pair(q);
                        if snapshot.x2.pair_idx(b, a).is_none() {
                            obs.inc("cf.coldstart.asymmetric_pair");
                            continue;
                        }
                        let qkey = match col {
                            Some(col) if (q as usize) < col.len() => col[q as usize],
                            _ => pc.packed_for_pair(
                                &snapshot.carrier(a).attrs,
                                &snapshot.carrier(b).attrs,
                            ),
                        };
                        if qkey == packed {
                            table.add(snapshot.config.pair_value(p, q));
                        }
                    }
                }
            } else {
                for &n in &neighbors {
                    for q in snapshot.x2.pairs_from(n) {
                        let (a, b) = snapshot.x2.pair(q);
                        if snapshot.x2.pair_idx(b, a).is_none() {
                            obs.inc("cf.coldstart.asymmetric_pair");
                            continue;
                        }
                        let qkey =
                            pc.key_for_pair(&snapshot.carrier(a).attrs, &snapshot.carrier(b).attrs);
                        if qkey == key {
                            table.add(snapshot.config.pair_value(p, q));
                        }
                    }
                }
            }
            obs.inc("cf.coldstart.total");
            let rec = if let Some((value, support, voters)) =
                table.majority_with_support_excluding(None, model.config.support)
            {
                obs.inc("cf.coldstart.local_vote");
                Recommendation {
                    value,
                    basis: Basis::LocalVote,
                    support,
                    voters,
                }
            } else {
                obs.inc("cf.coldstart.fallback");
                model.recommend_global(p, &key, None)
            };
            explain(snapshot, model, p, &new_carrier.attrs, Some(dst), rec)
        })
        .collect()
}

/// Planned neighbors restricted to carriers the snapshot knows. Each
/// dropped reference bumps `cf.coldstart.unknown_neighbor` — a planning
/// tool handing over stale carrier ids loses those voters, not the whole
/// recommendation.
fn known_neighbors(
    snapshot: &NetworkSnapshot,
    model: &CfModel,
    planned: &[CarrierId],
) -> Vec<CarrierId> {
    let obs = model.recorder();
    planned
        .iter()
        .copied()
        .filter(|&n| {
            let known = n.index() < snapshot.n_carriers();
            if !known {
                obs.inc("cf.coldstart.unknown_neighbor");
            }
            known
        })
        .collect()
}

/// Assembles the explanation record for one recommendation.
fn explain(
    snapshot: &NetworkSnapshot,
    model: &CfModel,
    param: ParamId,
    src: &AttrVec,
    dst: Option<&AttrVec>,
    rec: Recommendation,
) -> ConfigRecommendation {
    let def = snapshot.catalog.def(param);
    let pc = model.param(param);
    let matched_on = pc
        .dependent
        .iter()
        .map(|pa| {
            let (attrs, prefix) = match pa.side {
                crate::dependency::Side::Src => (src, ""),
                crate::dependency::Side::Dst => (
                    dst.expect("pair-wise explanation needs neighbor attrs"),
                    "neighbor ",
                ),
            };
            (
                format!("{prefix}{}", snapshot.schema.def(pa.attr).name),
                snapshot
                    .schema
                    .level_name(pa.attr, attrs.get(pa.attr))
                    .to_string(),
            )
        })
        .collect();
    ConfigRecommendation {
        param,
        name: def.name.clone(),
        value: rec.value,
        concrete: def.range.value(rec.value),
        basis: rec.basis,
        support: rec.support,
        voters: rec.voters,
        matched_on,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cf::CfConfig;
    use crate::scope::Scope;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    fn setup() -> (auric_model::NetworkSnapshot, CfModel) {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let scope = Scope::whole(&net.snapshot);
        let model = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        (net.snapshot, model)
    }

    /// A "new" carrier cloned from an existing one: attributes and
    /// neighbor relations copied, so the right answer is known.
    fn clone_of(snapshot: &auric_model::NetworkSnapshot, c: CarrierId) -> NewCarrier {
        NewCarrier {
            attrs: snapshot.carrier(c).attrs.clone(),
            neighbors: snapshot.x2.neighbors(c).to_vec(),
        }
    }

    #[test]
    fn singular_recommendations_cover_all_39_parameters() {
        let (snap, model) = setup();
        let nc = clone_of(&snap, CarrierId(0));
        let recs = recommend_singular(&snap, &model, &nc);
        assert_eq!(recs.len(), 39);
        for r in &recs {
            // Concrete value lies on the grid.
            let def = snap.catalog.def(r.param);
            assert_eq!(def.range.index_of(r.concrete), Some(r.value));
            assert_eq!(r.name, def.name);
        }
    }

    #[test]
    fn clone_recommendations_match_the_original() {
        // Recommending for an exact clone of an existing carrier should
        // reproduce that carrier's configuration almost everywhere on a
        // clean network.
        let (snap, model) = setup();
        let c = CarrierId(3);
        let nc = clone_of(&snap, c);
        let recs = recommend_singular(&snap, &model, &nc);
        let mut hits = 0usize;
        for r in &recs {
            if r.value == snap.config.value(r.param, c) {
                hits += 1;
            }
        }
        assert!(hits >= 36, "only {hits}/39 matched the clone's original");
    }

    #[test]
    fn pairwise_recommendations_cover_all_26_parameters() {
        let (snap, model) = setup();
        let c = CarrierId(1);
        let nc = clone_of(&snap, c);
        let neighbor = snap.x2.neighbors(c)[0];
        let recs = recommend_pairwise(&snap, &model, &nc, neighbor);
        assert_eq!(recs.len(), 26);
        // Neighbor-side dependent attributes are labeled as such.
        let any_neighbor_attr = recs
            .iter()
            .flat_map(|r| &r.matched_on)
            .any(|(name, _)| name.starts_with("neighbor "));
        assert!(
            any_neighbor_attr,
            "no pair-wise explanation mentions the neighbor"
        );
    }

    #[test]
    fn unobserved_attribute_combinations_still_get_recommendations() {
        // §6 "bootstrapping configuration for the unobserved": a carrier
        // whose attribute combination was never seen cannot be matched
        // exactly; the fallback chain must still produce a value for
        // every parameter (backoff plurality, scope majority, or the
        // default — never a panic, never a gap).
        let (snap, model) = setup();
        let mut attrs = snap.carrier(CarrierId(0)).attrs.clone();
        // Scramble several attributes to a combination that cannot occur
        // (e.g. an NB-IoT FirstNet hybrid on the high band).
        attrs.set(auric_model::AttrId(0), 4); // 2300MHz
        attrs.set(auric_model::AttrId(1), 2); // NB-IoT
        attrs.set(auric_model::AttrId(7), 3); // 5mi cell on high band
        let nc = NewCarrier {
            attrs,
            neighbors: vec![],
        };
        let recs = recommend_singular(&snap, &model, &nc);
        assert_eq!(recs.len(), 39);
        for r in &recs {
            let def = snap.catalog.def(r.param);
            assert!(
                (r.value as usize) < def.range.n_values(),
                "{} off grid",
                r.name
            );
        }
    }

    /// Satellite audit for the pairwise local-vote scan: iterating only
    /// `pairs_from(n)` over the planned neighbors must still reach *both*
    /// directed pairs of every relation between planned neighbors,
    /// because `X2Graph` stores each undirected edge as two directed
    /// pairs. If pair storage ever became asymmetric, this test would
    /// catch the silently missing reverse-direction voters.
    #[test]
    fn pairwise_scan_covers_both_directions() {
        let (snap, _) = setup();
        snap.x2
            .validate()
            .expect("X2 symmetry is a graph invariant");
        let c = CarrierId(1);
        let nc = clone_of(&snap, c);
        assert!(nc.neighbors.len() >= 2, "need two planned neighbors");
        let scanned: std::collections::HashSet<u32> = nc
            .neighbors
            .iter()
            .flat_map(|&n| snap.x2.pairs_from(n))
            .collect();
        for &m in &nc.neighbors {
            for &n in &nc.neighbors {
                if m == n {
                    continue;
                }
                // Either direction exists iff the edge exists, and then
                // both directions are in the scanned set.
                match (snap.x2.pair_idx(m, n), snap.x2.pair_idx(n, m)) {
                    (Some(f), Some(r)) => {
                        assert!(scanned.contains(&f), "forward pair {m}->{n} not scanned");
                        assert!(scanned.contains(&r), "reverse pair {n}->{m} not scanned");
                    }
                    (None, None) => {}
                    _ => panic!("asymmetric pair storage between {m} and {n}"),
                }
            }
        }
    }

    #[test]
    fn unknown_planned_neighbor_is_dropped_not_fatal() {
        // Regression: a planning tool handing over a carrier id the
        // snapshot has never heard of used to index the key column out of
        // bounds. The stale reference must lose its vote, not kill the
        // recommendation.
        let (snap, mut model) = setup();
        model.set_recorder(auric_obs::Recorder::deterministic());
        let mut nc = clone_of(&snap, CarrierId(0));
        nc.neighbors.push(CarrierId(u32::MAX));
        let recs = recommend_singular(&snap, &model, &nc);
        assert_eq!(recs.len(), 39);
        assert!(model.recorder().counter("cf.coldstart.unknown_neighbor") >= 1);

        // A pair-wise recommendation *against* an unknown neighbor has no
        // relation to configure: empty, counted, no panic.
        let recs = recommend_pairwise(&snap, &model, &nc, CarrierId(u32::MAX));
        assert!(recs.is_empty());
        assert!(model.recorder().counter("cf.coldstart.unknown_neighbor") >= 2);
    }

    #[test]
    fn asymmetric_pair_storage_is_skipped_not_fatal() {
        // Regression: the pairwise scan trusted the undirected-edge
        // invariant (every directed pair has its reverse). A graph
        // deserialized from a foreign inventory export can violate it;
        // unpaired directions must be skipped and counted, not voted on
        // or panicked over. `from_edges` cannot build such a graph, so
        // arrive the way the hostile data would: through serde.
        let (mut snap, mut model) = setup();
        model.set_recorder(auric_obs::Recorder::deterministic());
        let n = snap.n_carriers();
        // Carrier 0 lists 1 as a neighbor; 1 does not list 0 back.
        let mut offsets = vec![1u32; n + 1];
        offsets[0] = 0;
        let json = format!(
            "{{\"offsets\":{},\"adj\":[1]}}",
            serde_json::to_string(&offsets).unwrap()
        );
        let g: auric_model::X2Graph = serde_json::from_str(&json).unwrap();
        assert!(g.validate().is_err(), "graph must really be asymmetric");
        snap.x2 = g;
        let nc = NewCarrier {
            attrs: snap.carrier(CarrierId(2)).attrs.clone(),
            neighbors: vec![CarrierId(0)],
        };
        let recs = recommend_pairwise(&snap, &model, &nc, CarrierId(0));
        assert_eq!(recs.len(), 26, "still a full recommendation set");
        assert!(model.recorder().counter("cf.coldstart.asymmetric_pair") >= 1);
        // The unpaired direction contributed no voters: nothing local.
        assert!(recs.iter().all(|r| r.basis != Basis::LocalVote));
    }

    #[test]
    fn isolated_new_carrier_falls_back_to_global() {
        let (snap, model) = setup();
        let nc = NewCarrier {
            attrs: snap.carrier(CarrierId(0)).attrs.clone(),
            neighbors: vec![],
        };
        let recs = recommend_singular(&snap, &model, &nc);
        assert!(recs.iter().all(|r| r.basis != Basis::LocalVote));
    }
}
