//! The collaborative-filtering recommender: chi-square dependency
//! selection + exact-match voting, in global and local (geographic
//! proximity) flavors (§3.2–3.3).

use crate::dependency::{select_dependent, PredictorAttr, Side};
use crate::scope::Scope;
use crate::voting::{VoteKey, VoteTables};
use auric_model::{AttrVec, CarrierId, NetworkSnapshot, PairIdx, ParamId, ParamKind, ValueIdx};
use auric_stats::freq::FreqTable;
use serde::{Deserialize, Serialize};

/// Hyperparameters of the recommender. Paper values: `alpha = 0.01`,
/// `support = 0.75`, `hops = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfConfig {
    /// Chi-square significance level for dependency selection.
    pub alpha: f64,
    /// Minimum vote-support ratio.
    pub support: f64,
    /// X2 neighborhood radius of the local learner (in hops).
    pub hops: usize,
    /// Use the paper's literal marginal chi-square selection instead of
    /// the conditional forward selection (see `dependency` module docs).
    /// Kept for the dependency-selection ablation.
    pub marginal_selection: bool,
}

impl Default for CfConfig {
    fn default() -> Self {
        Self {
            alpha: 0.01,
            support: 0.75,
            hops: 1,
            marginal_selection: false,
        }
    }
}

/// How a recommendation was produced — the fallback chain position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Basis {
    /// ≥ `support` agreement within the X2 neighborhood's matching
    /// carriers (local learner only).
    LocalVote,
    /// ≥ `support` agreement within the scope-wide matching group.
    GlobalVote,
    /// The matching group's plurality value — the "maximum support"
    /// answer when no value clears the confidence threshold.
    GroupMajority,
    /// Empty group; scope-wide plurality value.
    GlobalMajority,
    /// No data at all; the rule-book/catalog default (§6: "we currently
    /// stick with the default configuration settings").
    Default,
}

/// A recommendation with its evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recommendation {
    pub value: ValueIdx,
    pub basis: Basis,
    /// Votes for the winning value (0 for majority/default bases).
    pub support: usize,
    /// Total voters consulted (0 for majority/default bases).
    pub voters: usize,
}

/// Per-parameter fitted state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamCf {
    pub param: ParamId,
    /// Dependent attributes in key order (strongest marginal association
    /// first).
    pub dependent: Vec<PredictorAttr>,
    /// Scope-wide vote tables keyed on the dependent attributes.
    pub tables: VoteTables,
    /// Backoff tables: `prefix_tables[l]` groups on the first `l`
    /// dependent attributes (so `prefix_tables[0]` has a single group).
    /// When a full-key group is empty (a rare attribute combination after
    /// leave-one-out), the recommender walks toward shorter prefixes —
    /// "maximum support among the most similar carriers" rather than a
    /// scope-wide guess.
    prefix_tables: Vec<VoteTables>,
    /// Catalog default (final fallback).
    pub default: ValueIdx,
}

impl ParamCf {
    /// The vote key of a carrier (singular parameters).
    pub fn key_for_carrier(&self, attrs: &AttrVec) -> VoteKey {
        self.dependent
            .iter()
            .map(|pa| {
                debug_assert_eq!(pa.side, Side::Src, "singular key reads only the carrier");
                attrs.get(pa.attr)
            })
            .collect()
    }

    /// The vote key of a directed pair (pair-wise parameters).
    pub fn key_for_pair(&self, src: &AttrVec, dst: &AttrVec) -> VoteKey {
        self.dependent
            .iter()
            .map(|pa| match pa.side {
                Side::Src => src.get(pa.attr),
                Side::Dst => dst.get(pa.attr),
            })
            .collect()
    }
}

/// A fitted Auric model over one learning scope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CfModel {
    pub config: CfConfig,
    params: Vec<ParamCf>,
}

impl CfModel {
    /// Fits dependency sets and vote tables for every catalog parameter
    /// over `scope`. Parameters are processed in parallel.
    pub fn fit(snapshot: &NetworkSnapshot, scope: &Scope, config: CfConfig) -> Self {
        let n_params = snapshot.catalog.len();
        let n_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(n_params.max(1));
        let mut params: Vec<Option<ParamCf>> = (0..n_params).map(|_| None).collect();
        std::thread::scope(|s| {
            let chunks = params.chunks_mut(n_params.div_ceil(n_threads));
            for (t, chunk) in chunks.enumerate() {
                let base = t * n_params.div_ceil(n_threads);
                s.spawn(move || {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        let param = ParamId((base + off) as u16);
                        *slot = Some(fit_param(snapshot, scope, param, &config));
                    }
                });
            }
        });
        Self {
            config,
            params: params.into_iter().map(Option::unwrap).collect(),
        }
    }

    /// The fitted state of one parameter.
    pub fn param(&self, p: ParamId) -> &ParamCf {
        &self.params[p.index()]
    }

    /// All fitted parameter states.
    pub fn params(&self) -> &[ParamCf] {
        &self.params
    }

    /// Global recommendation for a vote key. `exclude` is the probe slot's
    /// own current value during leave-one-out evaluation, `None` for new
    /// carriers.
    pub fn recommend_global(
        &self,
        param: ParamId,
        key: &[u16],
        exclude: Option<ValueIdx>,
    ) -> Recommendation {
        let pc = self.param(param);
        if let Some((value, support, voters)) = pc.tables.vote(key, exclude, self.config.support) {
            return Recommendation {
                value,
                basis: Basis::GlobalVote,
                support,
                voters,
            };
        }
        if let Some((value, support, voters)) = pc.tables.group_majority(key, exclude) {
            return Recommendation {
                value,
                basis: Basis::GroupMajority,
                support,
                voters,
            };
        }
        // Hierarchical backoff: the full-key group is empty (rare
        // combination after leave-one-out); retry on progressively
        // shorter prefixes of the dependency key. The excluded value may
        // be absent from an ancestor group, so only exclude it where
        // present.
        for l in (1..key.len()).rev() {
            let prefix = &key[..l];
            let tables = &pc.prefix_tables[l];
            let ex = exclude.filter(|&v| tables.group(prefix).is_some_and(|g| g.count(v) > 0));
            if let Some((value, support, voters)) = tables.group_majority(prefix, ex) {
                return Recommendation {
                    value,
                    basis: Basis::GroupMajority,
                    support,
                    voters,
                };
            }
        }
        let overall_exclude = exclude.filter(|&v| pc.tables.overall().count(v) > 0);
        if let Some(value) = pc.tables.overall_majority(overall_exclude) {
            return Recommendation {
                value,
                basis: Basis::GlobalMajority,
                support: 0,
                voters: 0,
            };
        }
        Recommendation {
            value: pc.default,
            basis: Basis::Default,
            support: 0,
            voters: 0,
        }
    }

    /// Local recommendation for a singular parameter on an existing
    /// carrier: vote among the `hops`-hop X2 neighbors whose dependent
    /// attributes match, falling back to the global chain. With `loo`,
    /// the carrier's own current value is excluded from the fallback vote
    /// (it never participates in the neighborhood vote — a carrier is not
    /// its own neighbor).
    pub fn recommend_local_singular(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        carrier: CarrierId,
        loo: bool,
    ) -> Recommendation {
        debug_assert_eq!(snapshot.catalog.def(param).kind, ParamKind::Singular);
        let pc = self.param(param);
        let key = pc.key_for_carrier(&snapshot.carrier(carrier).attrs);
        let mut table = FreqTable::new();
        for n in snapshot.x2.k_hop_neighbors(carrier, self.config.hops) {
            let neighbor = snapshot.carrier(n);
            if pc.key_for_carrier(&neighbor.attrs) == key {
                table.add(snapshot.config.value(param, n));
            }
        }
        if let Some((value, support, total)) =
            table.majority_with_support_excluding(None, self.config.support)
        {
            return Recommendation {
                value,
                basis: Basis::LocalVote,
                support,
                voters: total,
            };
        }
        let exclude = loo.then(|| snapshot.config.value(param, carrier));
        self.recommend_global(param, &key, exclude)
    }

    /// Local recommendation for a pair-wise parameter on an existing
    /// directed pair: vote among matching pairs sourced at the carrier
    /// itself (its other relations) and at its `hops`-hop neighbors.
    pub fn recommend_local_pair(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        pair: PairIdx,
        loo: bool,
    ) -> Recommendation {
        debug_assert_eq!(snapshot.catalog.def(param).kind, ParamKind::Pairwise);
        let pc = self.param(param);
        let (j, k) = snapshot.x2.pair(pair);
        let key = pc.key_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs);
        let mut table = FreqTable::new();
        let mut sources = vec![j];
        sources.extend(snapshot.x2.k_hop_neighbors(j, self.config.hops));
        for src in sources {
            for q in snapshot.x2.pairs_from(src) {
                if q == pair {
                    continue; // never vote for ourselves
                }
                let (a, b) = snapshot.x2.pair(q);
                let qkey = pc.key_for_pair(&snapshot.carrier(a).attrs, &snapshot.carrier(b).attrs);
                if qkey == key {
                    table.add(snapshot.config.pair_value(param, q));
                }
            }
        }
        if let Some((value, support, total)) =
            table.majority_with_support_excluding(None, self.config.support)
        {
            return Recommendation {
                value,
                basis: Basis::LocalVote,
                support,
                voters: total,
            };
        }
        let exclude = loo.then(|| snapshot.config.pair_value(param, pair));
        self.recommend_global(param, &key, exclude)
    }
}

/// Fits one parameter: dependency selection, then vote-table construction.
fn fit_param(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
    config: &CfConfig,
) -> ParamCf {
    let dependent = if config.marginal_selection {
        crate::dependency::select_dependent_marginal(snapshot, scope, param, config.alpha)
    } else {
        select_dependent(snapshot, scope, param, config.alpha)
    };
    let def = snapshot.catalog.def(param);
    let n_prefixes = dependent.len(); // prefixes of length 0..dependent.len()-1 plus full
    let mut pc = ParamCf {
        param,
        dependent,
        tables: VoteTables::new(),
        prefix_tables: (0..n_prefixes).map(|_| VoteTables::new()).collect(),
        default: def.default,
    };
    let record = |pc: &mut ParamCf, key: crate::voting::VoteKey, value: ValueIdx| {
        for l in 0..pc.prefix_tables.len() {
            pc.prefix_tables[l].add(key[..l].to_vec(), value);
        }
        pc.tables.add(key, value);
    };
    match def.kind {
        ParamKind::Singular => {
            for &c in &scope.carriers {
                let key = pc.key_for_carrier(&snapshot.carrier(c).attrs);
                let v = snapshot.config.value(param, c);
                record(&mut pc, key, v);
            }
        }
        ParamKind::Pairwise => {
            for &q in &scope.pairs {
                let (j, k) = snapshot.x2.pair(q);
                let key = pc.key_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs);
                let v = snapshot.config.pair_value(param, q);
                record(&mut pc, key, v);
            }
        }
    }
    pc
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    fn fitted() -> (auric_netgen::GeneratedNetwork, CfModel) {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let scope = Scope::whole(&net.snapshot);
        let model = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        (net, model)
    }

    #[test]
    fn fit_covers_every_parameter() {
        let (net, model) = fitted();
        assert_eq!(model.params().len(), net.snapshot.catalog.len());
        for pc in model.params() {
            assert!(pc.tables.total() > 0, "{} has no observations", pc.param);
        }
    }

    #[test]
    fn clean_network_global_loo_is_nearly_perfect() {
        // Without tuning noise, every value is a function of attributes,
        // so exact-match voting with LoO must recover almost everything
        // (losses only where a group is a singleton).
        let (net, model) = fitted();
        let snap = &net.snapshot;
        let mut hit = 0usize;
        let mut total = 0usize;
        for p in snap.catalog.singular_ids() {
            let pc = model.param(p);
            for c in &snap.carriers {
                let key = pc.key_for_carrier(&c.attrs);
                let current = snap.config.value(p, c.id);
                let rec = model.recommend_global(p, &key, Some(current));
                total += 1;
                hit += usize::from(rec.value == current);
            }
        }
        let acc = hit as f64 / total as f64;
        assert!(acc > 0.93, "clean-network LoO accuracy {acc}");
    }

    #[test]
    fn local_learner_recovers_pockets() {
        // Plant aggressive pockets; the local learner must beat the global
        // one on pocketed slots.
        let knobs = TuningKnobs {
            pocket_prob: 1.0,
            max_pockets: 6,
            params_per_pocket: (20, 40),
            pocket_radius_km: (3.0, 8.0),
            hidden_pocket_frac: 0.5,
            ..TuningKnobs::none()
        };
        let net = generate(
            &NetScale {
                n_markets: 2,
                enbs_per_market: 14,
                seed: 11,
            },
            &knobs,
        );
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let mut local_hit = 0usize;
        let mut global_hit = 0usize;
        let mut pocket_slots = 0usize;
        for p in snap.catalog.singular_ids() {
            let pc = model.param(p);
            for c in &snap.carriers {
                if !matches!(
                    snap.config.provenance(p, c.id),
                    auric_model::Provenance::Pocket { .. }
                ) {
                    continue;
                }
                pocket_slots += 1;
                let current = snap.config.value(p, c.id);
                let local = model.recommend_local_singular(snap, p, c.id, true);
                let global =
                    model.recommend_global(p, &pc.key_for_carrier(&c.attrs), Some(current));
                local_hit += usize::from(local.value == current);
                global_hit += usize::from(global.value == current);
            }
        }
        assert!(
            pocket_slots > 50,
            "need pocketed slots to compare ({pocket_slots})"
        );
        assert!(
            local_hit > global_hit,
            "local {local_hit} vs global {global_hit} on {pocket_slots} pocket slots"
        );
    }

    #[test]
    fn pairwise_recommendations_work() {
        let (net, model) = fitted();
        let snap = &net.snapshot;
        let p = snap.catalog.pairwise_ids().next().unwrap();
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..snap.x2.n_pairs().min(500) as u32 {
            let current = snap.config.pair_value(p, q);
            let rec = model.recommend_local_pair(snap, p, q, true);
            total += 1;
            hit += usize::from(rec.value == current);
        }
        assert!(total > 0);
        assert!(
            hit as f64 / total as f64 > 0.8,
            "pairwise local accuracy {}/{total}",
            hit
        );
    }

    #[test]
    fn fallback_chain_reaches_default_on_unseen_keys() {
        let (net, model) = fitted();
        let snap = &net.snapshot;
        let p = snap.catalog.singular_ids().next().unwrap();
        let pc = model.param(p);
        // A key that cannot exist (levels past every cardinality).
        let bogus: Vec<u16> = pc.dependent.iter().map(|_| u16::MAX).collect();
        let rec = model.recommend_global(p, &bogus, None);
        assert!(
            matches!(rec.basis, Basis::GlobalMajority | Basis::Default),
            "unseen key must not produce a group vote: {rec:?}"
        );
    }

    #[test]
    fn backoff_resolves_rare_combinations_from_ancestor_groups() {
        // Construct a parameter state by hand: key = (attr0, attr1), a
        // big group at (0, 0) and a singleton at (0, 9). Excluding the
        // singleton's own value empties its group; backoff must answer
        // from the (0,) prefix instead of the scope-wide table.
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        // Find a parameter with >= 2 dependent attributes and probe a
        // synthetic key whose full combination was never observed but
        // whose first-attribute prefix was.
        for pc in model.params() {
            if pc.dependent.len() < 2 {
                continue;
            }
            // Take an existing key and mutate its last component to an
            // unseen level.
            let some_key = match snap.catalog.def(pc.param).kind {
                auric_model::ParamKind::Singular => {
                    pc.key_for_carrier(&snap.carrier(CarrierId(0)).attrs)
                }
                _ => continue,
            };
            let mut probe = some_key.clone();
            *probe.last_mut().unwrap() = u16::MAX; // impossible level
            let rec = model.recommend_global(pc.param, &probe, None);
            assert!(
                matches!(rec.basis, Basis::GroupMajority),
                "unseen last component should back off to an ancestor group, got {rec:?}"
            );
            assert!(rec.voters > 0, "backoff answers carry evidence");
            return;
        }
        panic!("no suitable multi-attribute parameter found");
    }

    #[test]
    fn serde_round_trips_the_fitted_model() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let json = serde_json::to_string(&model).expect("serialize");
        let back: CfModel = serde_json::from_str(&json).expect("deserialize");
        // Same recommendations after the round trip.
        for p in snap.catalog.singular_ids().take(5) {
            for i in (0..snap.n_carriers()).step_by(17) {
                let c = CarrierId::from_index(i);
                let a = model.recommend_local_singular(snap, p, c, true);
                let b = back.recommend_local_singular(snap, p, c, true);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn fit_is_deterministic_despite_parallelism() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let scope = Scope::whole(&net.snapshot);
        let a = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        let b = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        for (x, y) in a.params().iter().zip(b.params()) {
            assert_eq!(x.dependent, y.dependent);
            assert_eq!(x.tables, y.tables);
        }
    }
}
