//! The collaborative-filtering recommender: chi-square dependency
//! selection + exact-match voting, in global and local (geographic
//! proximity) flavors (§3.2–3.3).
//!
//! ## Hot-path representation
//!
//! Vote keys are bit-packed `u64`s (see [`PackedKeyCodec`]): each fitted
//! parameter owns a mixed-radix layout over its dependent attributes, and
//! every group lookup, prefix backoff, and neighborhood scan works on
//! plain integers. Fitting also materializes a **key column** — the packed
//! key of every snapshot carrier (or directed pair) — so local voting is a
//! linear scan of integer compares with zero allocation, and leave-one-out
//! sweeps reuse the column instead of re-projecting attributes per probe.
//! Layouts wider than 64 bits (only reachable under the marginal
//! dependency-selection ablation) fall back to unpacked keys with
//! identical semantics; `legacy.rs` keeps the original unpacked
//! implementation as the differential-testing oracle.

use crate::dependency::{PredictorAttr, Side};
use crate::scope::Scope;
use crate::voting::{KeyRef, VoteKey, VoteTables};
use auric_model::{AttrVec, CarrierId, NetworkSnapshot, PairIdx, ParamId, ParamKind, ValueIdx};
use auric_obs::Recorder;
use auric_stats::freq::FreqTable;
use auric_stats::packed::PackedKeyCodec;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Hyperparameters of the recommender. Paper values: `alpha = 0.01`,
/// `support = 0.75`, `hops = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfConfig {
    /// Chi-square significance level for dependency selection.
    pub alpha: f64,
    /// Minimum vote-support ratio.
    pub support: f64,
    /// X2 neighborhood radius of the local learner (in hops).
    pub hops: usize,
    /// Use the paper's literal marginal chi-square selection instead of
    /// the conditional forward selection (see `dependency` module docs).
    /// Kept for the dependency-selection ablation.
    pub marginal_selection: bool,
}

impl Default for CfConfig {
    fn default() -> Self {
        Self {
            alpha: 0.01,
            support: 0.75,
            hops: 1,
            marginal_selection: false,
        }
    }
}

/// Options for [`CfModel::fit_with`]: the observability recorder and an
/// optional worker-thread override for the fit pool (mainly for honest
/// single- vs multi-thread benchmarking).
#[derive(Debug, Clone, Default)]
pub struct FitOptions {
    /// Where fit-time metrics land; [`Recorder::disabled`] costs nothing.
    pub obs: Recorder,
    /// Worker threads for the fit pool; `None` uses the machine default
    /// (see [`fit_worker_threads`]).
    pub threads: Option<usize>,
}

/// How a recommendation was produced — the fallback chain position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Basis {
    /// ≥ `support` agreement within the X2 neighborhood's matching
    /// carriers (local learner only).
    LocalVote,
    /// ≥ `support` agreement within the scope-wide matching group.
    GlobalVote,
    /// The matching group's plurality value — the "maximum support"
    /// answer when no value clears the confidence threshold.
    GroupMajority,
    /// Empty group; scope-wide plurality value.
    GlobalMajority,
    /// No data at all; the rule-book/catalog default (§6: "we currently
    /// stick with the default configuration settings").
    Default,
}

/// A recommendation with its evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recommendation {
    pub value: ValueIdx,
    pub basis: Basis,
    /// Votes for the winning value (0 for majority/default bases).
    pub support: usize,
    /// Total voters consulted (0 for majority/default bases).
    pub voters: usize,
}

/// Packed keys of every snapshot target, built during fit so the local
/// learner and the LoO sweeps never re-project attributes. Not serialized
/// — a deserialized model recomputes keys on the fly (still allocation
/// free on the packed path).
#[derive(Debug, Clone)]
enum KeyColumn {
    /// No column: wide layout, or a freshly deserialized model.
    None,
    /// `col[c.index()]` = packed key of carrier `c` (singular parameters).
    Carrier(Vec<u64>),
    /// `col[q as usize]` = packed key of directed pair `q` (pair-wise).
    Pair(Vec<u64>),
}

impl KeyColumn {
    fn carriers(&self) -> Option<&[u64]> {
        match self {
            KeyColumn::Carrier(col) => Some(col),
            _ => None,
        }
    }

    fn pairs(&self) -> Option<&[u64]> {
        match self {
            KeyColumn::Pair(col) => Some(col),
            _ => None,
        }
    }
}

/// Per-parameter fitted state.
#[derive(Debug, Clone)]
pub struct ParamCf {
    pub param: ParamId,
    /// Dependent attributes in key order (strongest marginal association
    /// first).
    pub dependent: Vec<PredictorAttr>,
    /// Bit-field layout of the vote key over `dependent`.
    codec: PackedKeyCodec,
    /// Scope-wide vote tables keyed on the dependent attributes.
    pub tables: VoteTables,
    /// Backoff tables: `prefix_tables[l]` groups on the first `l`
    /// dependent attributes (so `prefix_tables[0]` has a single group).
    /// When a full-key group is empty (a rare attribute combination after
    /// leave-one-out), the recommender walks toward shorter prefixes —
    /// "maximum support among the most similar carriers" rather than a
    /// scope-wide guess. Under the packed layout a prefix key is just the
    /// full key masked, so no re-projection happens on this path.
    prefix_tables: Vec<VoteTables>,
    /// Catalog default (final fallback).
    pub default: ValueIdx,
    /// Packed key per snapshot target (see [`KeyColumn`]).
    keys: KeyColumn,
}

impl ParamCf {
    /// The unpacked vote key of a carrier (singular parameters). This is
    /// the interchange form accepted by [`CfModel::recommend_global`];
    /// internal paths use the packed companions below.
    pub fn key_for_carrier(&self, attrs: &AttrVec) -> VoteKey {
        self.dependent
            .iter()
            .map(|pa| {
                debug_assert_eq!(pa.side, Side::Src, "singular key reads only the carrier");
                attrs.get(pa.attr)
            })
            .collect()
    }

    /// The unpacked vote key of a directed pair (pair-wise parameters).
    pub fn key_for_pair(&self, src: &AttrVec, dst: &AttrVec) -> VoteKey {
        self.dependent
            .iter()
            .map(|pa| match pa.side {
                Side::Src => src.get(pa.attr),
                Side::Dst => dst.get(pa.attr),
            })
            .collect()
    }

    /// The key layout of this parameter.
    pub fn codec(&self) -> &PackedKeyCodec {
        &self.codec
    }

    /// Packs a carrier's vote key without allocating.
    #[inline]
    pub fn packed_for_carrier(&self, attrs: &AttrVec) -> u64 {
        self.codec.pack_with(|i| {
            let pa = self.dependent[i];
            debug_assert_eq!(pa.side, Side::Src, "singular key reads only the carrier");
            attrs.get(pa.attr)
        })
    }

    /// Packs a directed pair's vote key without allocating.
    #[inline]
    pub fn packed_for_pair(&self, src: &AttrVec, dst: &AttrVec) -> u64 {
        self.codec.pack_with(|i| {
            let pa = self.dependent[i];
            match pa.side {
                Side::Src => src.get(pa.attr),
                Side::Dst => dst.get(pa.attr),
            }
        })
    }

    /// The fitted per-carrier key column, when present (packed layout,
    /// fitted — not deserialized — model).
    pub(crate) fn carrier_keys(&self) -> Option<&[u64]> {
        self.keys.carriers()
    }

    /// The fitted per-pair key column, when present.
    pub(crate) fn pair_keys(&self) -> Option<&[u64]> {
        self.keys.pairs()
    }
}

/// A fitted Auric model over one learning scope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CfModel {
    pub config: CfConfig,
    /// Serialized in the stable wire format: per parameter, the key layout
    /// cardinalities plus every table's groups as sorted
    /// `(unpacked key, table)` pairs — packed integers never reach disk.
    #[serde(with = "model_serde")]
    params: Vec<ParamCf>,
    /// Recommendation-time metrics sink. Disabled by default (and after
    /// deserialization); attach one with [`CfModel::set_recorder`].
    #[serde(skip)]
    obs: Recorder,
}

impl CfModel {
    /// Fits dependency sets and vote tables for every catalog parameter
    /// over `scope`.
    ///
    /// Parameters are fitted in parallel by a work-stealing pool: workers
    /// claim the next parameter index off a shared atomic counter, so one
    /// slow parameter (big cardinality, many pairs) no longer idles the
    /// threads that drew cheap static chunks. Results are reassembled in
    /// index order, so the fitted model is deterministic regardless of
    /// which worker fitted what.
    pub fn fit(snapshot: &NetworkSnapshot, scope: &Scope, config: CfConfig) -> Self {
        Self::fit_with(snapshot, scope, config, FitOptions::default())
    }

    /// [`CfModel::fit`] with explicit [`FitOptions`]: fit-time metrics go
    /// to `opts.obs` (which stays attached to the model so recommendation
    /// metrics land there too), and `opts.threads` pins the pool width.
    pub fn fit_with(
        snapshot: &NetworkSnapshot,
        scope: &Scope,
        config: CfConfig,
        opts: FitOptions,
    ) -> Self {
        let FitOptions { obs, threads } = opts;
        let n_params = snapshot.catalog.len();
        let span = obs.span("cf.fit");
        let params = parallel_map_with(n_params, threads, |i| {
            fit_param(snapshot, scope, ParamId(i as u16), &config, &obs)
        });
        span.close();
        Self {
            config,
            params,
            obs,
        }
    }

    /// Attaches (or detaches, with [`Recorder::disabled`]) the sink for
    /// recommendation-time metrics: basis mix, vote support, backoff depth.
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// The model's metrics recorder (disabled unless attached).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// The fitted state of one parameter.
    pub fn param(&self, p: ParamId) -> &ParamCf {
        &self.params[p.index()]
    }

    /// All fitted parameter states.
    pub fn params(&self) -> &[ParamCf] {
        &self.params
    }

    /// Global recommendation for an unpacked vote key. `exclude` is the
    /// probe slot's own current value during leave-one-out evaluation,
    /// `None` for new carriers.
    pub fn recommend_global(
        &self,
        param: ParamId,
        key: &[u16],
        exclude: Option<ValueIdx>,
    ) -> Recommendation {
        let pc = self.param(param);
        debug_assert_eq!(key.len(), pc.dependent.len());
        if pc.codec.fits_u64() {
            let packed = pc.codec.pack(key);
            self.global_chain(pc, |l| KeyRef::Packed(pc.codec.prefix(packed, l)), exclude)
        } else {
            let clamped = pc.codec.clamp(key);
            self.global_chain(pc, |l| KeyRef::Wide(&clamped[..l]), exclude)
        }
    }

    /// Global recommendation for an existing carrier, reusing the fitted
    /// key column when available (the fast path of the LoO sweeps).
    pub fn recommend_global_for_carrier(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        carrier: CarrierId,
        exclude: Option<ValueIdx>,
    ) -> Recommendation {
        let pc = self.param(param);
        if pc.codec.fits_u64() {
            let key = match pc.keys.carriers() {
                Some(col) => col[carrier.index()],
                None => pc.packed_for_carrier(&snapshot.carrier(carrier).attrs),
            };
            self.global_chain(pc, |l| KeyRef::Packed(pc.codec.prefix(key, l)), exclude)
        } else {
            let key = pc.key_for_carrier(&snapshot.carrier(carrier).attrs);
            self.global_chain(pc, |l| KeyRef::Wide(&key[..l]), exclude)
        }
    }

    /// Global recommendation for an existing directed pair, reusing the
    /// fitted key column when available.
    pub fn recommend_global_for_pair(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        pair: PairIdx,
        exclude: Option<ValueIdx>,
    ) -> Recommendation {
        let pc = self.param(param);
        if pc.codec.fits_u64() {
            let key = match pc.keys.pairs() {
                Some(col) => col[pair as usize],
                None => {
                    let (j, k) = snapshot.x2.pair(pair);
                    pc.packed_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs)
                }
            };
            self.global_chain(pc, |l| KeyRef::Packed(pc.codec.prefix(key, l)), exclude)
        } else {
            let (j, k) = snapshot.x2.pair(pair);
            let key = pc.key_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs);
            self.global_chain(pc, |l| KeyRef::Wide(&key[..l]), exclude)
        }
    }

    /// The global fallback chain over a key supplied per prefix length:
    /// `key_at(n)` is the full key, `key_at(l)` its first `l` positions.
    /// On the packed path the prefixes are mask applications; on the wide
    /// path they are subslices — either way, no projection and no
    /// allocation.
    fn global_chain<'k>(
        &self,
        pc: &ParamCf,
        key_at: impl Fn(usize) -> KeyRef<'k>,
        exclude: Option<ValueIdx>,
    ) -> Recommendation {
        let n = pc.dependent.len();
        let full = key_at(n);
        if let Some((value, support, voters)) = pc.tables.vote(full, exclude, self.config.support) {
            self.obs.inc("cf.rec.basis.global_vote");
            self.obs
                .observe("cf.rec.support.global_vote", support as u64);
            return Recommendation {
                value,
                basis: Basis::GlobalVote,
                support,
                voters,
            };
        }
        if let Some((value, support, voters)) = pc.tables.group_majority(full, exclude) {
            self.obs.inc("cf.rec.basis.group_majority");
            self.obs.observe("cf.rec.backoff_depth", 0);
            return Recommendation {
                value,
                basis: Basis::GroupMajority,
                support,
                voters,
            };
        }
        // Hierarchical backoff: the full-key group is empty (rare
        // combination after leave-one-out); retry on progressively
        // shorter prefixes of the dependency key. The excluded value may
        // be absent from an ancestor group, so only exclude it where
        // present.
        for l in (1..n).rev() {
            let prefix = key_at(l);
            let tables = &pc.prefix_tables[l];
            let ex = exclude.filter(|&v| tables.group(prefix).is_some_and(|g| g.count(v) > 0));
            if let Some((value, support, voters)) = tables.group_majority(prefix, ex) {
                self.obs.inc("cf.rec.basis.group_majority");
                self.obs.observe("cf.rec.backoff_depth", (n - l) as u64);
                return Recommendation {
                    value,
                    basis: Basis::GroupMajority,
                    support,
                    voters,
                };
            }
        }
        let overall_exclude = exclude.filter(|&v| pc.tables.overall().count(v) > 0);
        if let Some(value) = pc.tables.overall_majority(overall_exclude) {
            self.obs.inc("cf.rec.basis.global_majority");
            return Recommendation {
                value,
                basis: Basis::GlobalMajority,
                support: 0,
                voters: 0,
            };
        }
        self.obs.inc("cf.rec.basis.default");
        Recommendation {
            value: pc.default,
            basis: Basis::Default,
            support: 0,
            voters: 0,
        }
    }

    /// Local recommendation for a singular parameter on an existing
    /// carrier: vote among the `hops`-hop X2 neighbors whose dependent
    /// attributes match, falling back to the global chain. With `loo`,
    /// the carrier's own current value is excluded from the fallback vote
    /// (it never participates in the neighborhood vote — a carrier is not
    /// its own neighbor).
    pub fn recommend_local_singular(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        carrier: CarrierId,
        loo: bool,
    ) -> Recommendation {
        debug_assert_eq!(snapshot.catalog.def(param).kind, ParamKind::Singular);
        let pc = self.param(param);
        let exclude = || loo.then(|| snapshot.config.value(param, carrier));
        if pc.codec.fits_u64() {
            let col = pc.keys.carriers();
            let key = match col {
                Some(col) => col[carrier.index()],
                None => pc.packed_for_carrier(&snapshot.carrier(carrier).attrs),
            };
            // The neighborhood vote: a linear scan of integer compares
            // over the key column (1-hop reads the CSR adjacency slice
            // directly — no BFS allocation).
            let mut table = FreqTable::new();
            let mut tally = |n: CarrierId| {
                let nkey = match col {
                    Some(col) => col[n.index()],
                    None => pc.packed_for_carrier(&snapshot.carrier(n).attrs),
                };
                if nkey == key {
                    table.add(snapshot.config.value(param, n));
                }
            };
            if self.config.hops == 1 {
                for &n in snapshot.x2.neighbors(carrier) {
                    tally(n);
                }
            } else {
                for n in snapshot.x2.k_hop_neighbors(carrier, self.config.hops) {
                    tally(n);
                }
            }
            if let Some((value, support, total)) =
                table.majority_with_support_excluding(None, self.config.support)
            {
                self.obs.inc("cf.rec.basis.local_vote");
                self.obs
                    .observe("cf.rec.support.local_vote", support as u64);
                return Recommendation {
                    value,
                    basis: Basis::LocalVote,
                    support,
                    voters: total,
                };
            }
            self.global_chain(pc, |l| KeyRef::Packed(pc.codec.prefix(key, l)), exclude())
        } else {
            let key = pc.key_for_carrier(&snapshot.carrier(carrier).attrs);
            let mut table = FreqTable::new();
            for n in snapshot.x2.k_hop_neighbors(carrier, self.config.hops) {
                if pc.key_for_carrier(&snapshot.carrier(n).attrs) == key {
                    table.add(snapshot.config.value(param, n));
                }
            }
            if let Some((value, support, total)) =
                table.majority_with_support_excluding(None, self.config.support)
            {
                self.obs.inc("cf.rec.basis.local_vote");
                self.obs
                    .observe("cf.rec.support.local_vote", support as u64);
                return Recommendation {
                    value,
                    basis: Basis::LocalVote,
                    support,
                    voters: total,
                };
            }
            self.global_chain(pc, |l| KeyRef::Wide(&key[..l]), exclude())
        }
    }

    /// Local recommendation for a pair-wise parameter on an existing
    /// directed pair: vote among matching pairs sourced at the carrier
    /// itself (its other relations) and at its `hops`-hop neighbors.
    pub fn recommend_local_pair(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        pair: PairIdx,
        loo: bool,
    ) -> Recommendation {
        debug_assert_eq!(snapshot.catalog.def(param).kind, ParamKind::Pairwise);
        let pc = self.param(param);
        let (j, k) = snapshot.x2.pair(pair);
        let exclude = || loo.then(|| snapshot.config.pair_value(param, pair));
        if pc.codec.fits_u64() {
            let col = pc.keys.pairs();
            let key = match col {
                Some(col) => col[pair as usize],
                None => pc.packed_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs),
            };
            // Candidate pairs are sourced at `j` and its neighborhood;
            // their keys come straight off the pair column, so the scan
            // allocates nothing (the old path rebuilt a `sources` vector
            // and projected two attribute vectors per candidate).
            let mut table = FreqTable::new();
            let mut scan_source = |src: CarrierId| {
                for q in snapshot.x2.pairs_from(src) {
                    if q == pair {
                        continue; // never vote for ourselves
                    }
                    let qkey = match col {
                        Some(col) => col[q as usize],
                        None => {
                            let (a, b) = snapshot.x2.pair(q);
                            pc.packed_for_pair(
                                &snapshot.carrier(a).attrs,
                                &snapshot.carrier(b).attrs,
                            )
                        }
                    };
                    if qkey == key {
                        table.add(snapshot.config.pair_value(param, q));
                    }
                }
            };
            scan_source(j);
            if self.config.hops == 1 {
                for &n in snapshot.x2.neighbors(j) {
                    scan_source(n);
                }
            } else {
                for n in snapshot.x2.k_hop_neighbors(j, self.config.hops) {
                    scan_source(n);
                }
            }
            if let Some((value, support, total)) =
                table.majority_with_support_excluding(None, self.config.support)
            {
                self.obs.inc("cf.rec.basis.local_vote");
                self.obs
                    .observe("cf.rec.support.local_vote", support as u64);
                return Recommendation {
                    value,
                    basis: Basis::LocalVote,
                    support,
                    voters: total,
                };
            }
            self.global_chain(pc, |l| KeyRef::Packed(pc.codec.prefix(key, l)), exclude())
        } else {
            let key = pc.key_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs);
            let mut table = FreqTable::new();
            let mut scan_source = |src: CarrierId| {
                for q in snapshot.x2.pairs_from(src) {
                    if q == pair {
                        continue; // never vote for ourselves
                    }
                    let (a, b) = snapshot.x2.pair(q);
                    let qkey =
                        pc.key_for_pair(&snapshot.carrier(a).attrs, &snapshot.carrier(b).attrs);
                    if qkey == key {
                        table.add(snapshot.config.pair_value(param, q));
                    }
                }
            };
            scan_source(j);
            for n in snapshot.x2.k_hop_neighbors(j, self.config.hops) {
                scan_source(n);
            }
            if let Some((value, support, total)) =
                table.majority_with_support_excluding(None, self.config.support)
            {
                self.obs.inc("cf.rec.basis.local_vote");
                self.obs
                    .observe("cf.rec.support.local_vote", support as u64);
                return Recommendation {
                    value,
                    basis: Basis::LocalVote,
                    support,
                    voters: total,
                };
            }
            self.global_chain(pc, |l| KeyRef::Wide(&key[..l]), exclude())
        }
    }
}

/// Runs `job(i)` for `i in 0..n` on a work-stealing thread pool and
/// returns the results in index order. Workers claim indices off a shared
/// atomic counter, so unevenly sized jobs balance themselves; the output
/// is independent of the schedule.
pub(crate) fn parallel_map<T, F>(n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, None, job)
}

/// The worker-thread count [`CfModel::fit`] actually uses for `n_jobs`
/// parallel jobs — exposed so benchmarks can report the real pool width
/// instead of guessing from `available_parallelism`.
pub fn fit_worker_threads(n_jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4)
        .min(n_jobs.max(1))
}

/// [`parallel_map`] with an explicit thread override (`None` = machine
/// default).
pub(crate) fn parallel_map_with<T, F>(n: usize, threads: Option<usize>, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n_threads = threads
        .unwrap_or_else(|| fit_worker_threads(n))
        .clamp(1, n.max(1));
    if n_threads <= 1 {
        return (0..n).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..n_threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, job(i)));
                    }
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Fits one parameter: dependency selection, key-layout construction,
/// key-column materialization, then vote-table construction.
fn fit_param(
    snapshot: &NetworkSnapshot,
    scope: &Scope,
    param: ParamId,
    config: &CfConfig,
    obs: &Recorder,
) -> ParamCf {
    let span = obs.span("cf.fit/param");
    let dep_span = span.child("dependency");
    let dependent = if config.marginal_selection {
        crate::dependency::select_dependent_marginal_with_obs(
            snapshot,
            scope,
            param,
            config.alpha,
            obs,
        )
    } else {
        crate::dependency::select_dependent_with_obs(snapshot, scope, param, config.alpha, obs)
    };
    dep_span.close();
    let def = snapshot.catalog.def(param);
    let cards: Vec<u16> = dependent
        .iter()
        .map(|pa| snapshot.schema.radix(pa.attr))
        .collect();
    let codec = PackedKeyCodec::new(&cards);
    let n_prefixes = dependent.len(); // prefixes of length 0..dependent.len()-1 plus full
    let packed = codec.fits_u64();
    let new_tables = if packed {
        VoteTables::new
    } else {
        VoteTables::new_wide
    };
    let mut pc = ParamCf {
        param,
        dependent,
        codec,
        tables: new_tables(),
        prefix_tables: (0..n_prefixes).map(|_| new_tables()).collect(),
        default: def.default,
        keys: KeyColumn::None,
    };
    if packed {
        let record = |pc: &mut ParamCf, key: u64, value: ValueIdx| {
            // All tables were just built packed, so a shape mismatch here
            // is impossible by construction.
            for l in 0..pc.prefix_tables.len() {
                let prefix = pc.codec.prefix(key, l);
                pc.prefix_tables[l]
                    .add_packed(prefix, value)
                    .expect("prefix tables built packed");
            }
            pc.tables
                .add_packed(key, value)
                .expect("tables built packed");
        };
        match def.kind {
            ParamKind::Singular => {
                // Column over the whole snapshot (not just the scope):
                // local voting consults out-of-scope neighbors too.
                let col: Vec<u64> = snapshot
                    .carriers
                    .iter()
                    .map(|c| pc.packed_for_carrier(&c.attrs))
                    .collect();
                for &c in &scope.carriers {
                    record(&mut pc, col[c.index()], snapshot.config.value(param, c));
                }
                pc.keys = KeyColumn::Carrier(col);
            }
            ParamKind::Pairwise => {
                let col: Vec<u64> = snapshot
                    .x2
                    .pairs()
                    .map(|(_, j, k)| {
                        pc.packed_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs)
                    })
                    .collect();
                for &q in &scope.pairs {
                    record(
                        &mut pc,
                        col[q as usize],
                        snapshot.config.pair_value(param, q),
                    );
                }
                pc.keys = KeyColumn::Pair(col);
            }
        }
    } else {
        let record = |pc: &mut ParamCf, key: &[u16], value: ValueIdx| {
            for l in 0..pc.prefix_tables.len() {
                pc.prefix_tables[l]
                    .add_wide(&key[..l], value)
                    .expect("prefix tables built wide");
            }
            pc.tables.add_wide(key, value).expect("tables built wide");
        };
        match def.kind {
            ParamKind::Singular => {
                for &c in &scope.carriers {
                    let key = pc.key_for_carrier(&snapshot.carrier(c).attrs);
                    record(&mut pc, &key, snapshot.config.value(param, c));
                }
            }
            ParamKind::Pairwise => {
                for &q in &scope.pairs {
                    let (j, k) = snapshot.x2.pair(q);
                    let key =
                        pc.key_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs);
                    record(&mut pc, &key, snapshot.config.pair_value(param, q));
                }
            }
        }
    }
    obs.inc("cf.fit.params");
    obs.add("cf.fit.groups", pc.tables.n_groups() as u64);
    obs.observe("cf.fit.dependent_attrs", pc.dependent.len() as u64);
    drop(span);
    pc
}

/// The stable wire format for the fitted parameters: group keys leave the
/// process unpacked and sorted, exactly like the pre-packing layout, with
/// the key-layout cardinalities carried alongside so deserialization can
/// rebuild the packed representation.
mod model_serde {
    use super::*;
    use serde::{Deserializer, Serializer};

    #[derive(Serialize, Deserialize)]
    struct TablesWire {
        /// Sorted `(unpacked key, table)` pairs.
        groups: Vec<(VoteKey, FreqTable)>,
        overall: FreqTable,
    }

    #[derive(Serialize, Deserialize)]
    struct ParamWire {
        param: ParamId,
        dependent: Vec<PredictorAttr>,
        /// Per-position cardinalities of the key layout.
        cards: Vec<u16>,
        tables: TablesWire,
        prefix_tables: Vec<TablesWire>,
        default: ValueIdx,
    }

    fn to_wire(tables: &VoteTables, codec: &PackedKeyCodec, len: usize) -> TablesWire {
        TablesWire {
            groups: tables
                .unpacked_groups(codec, len)
                .into_iter()
                .map(|(k, t)| (k, t.clone()))
                .collect(),
            overall: tables.overall().clone(),
        }
    }

    pub fn serialize<S: Serializer>(params: &[ParamCf], ser: S) -> Result<S::Ok, S::Error> {
        let wires: Vec<ParamWire> = params
            .iter()
            .map(|pc| ParamWire {
                param: pc.param,
                dependent: pc.dependent.clone(),
                cards: pc.codec.cards().to_vec(),
                tables: to_wire(&pc.tables, &pc.codec, pc.dependent.len()),
                prefix_tables: pc
                    .prefix_tables
                    .iter()
                    .enumerate()
                    .map(|(l, t)| to_wire(t, &pc.codec, l))
                    .collect(),
                default: pc.default,
            })
            .collect();
        wires.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<Vec<ParamCf>, D::Error> {
        let wires: Vec<ParamWire> = Vec::deserialize(de)?;
        Ok(wires
            .into_iter()
            .map(|w| {
                let codec = PackedKeyCodec::new(&w.cards);
                let tables =
                    VoteTables::from_unpacked_groups(&codec, w.tables.groups, w.tables.overall);
                let prefix_tables = w
                    .prefix_tables
                    .into_iter()
                    .map(|tw| VoteTables::from_unpacked_groups(&codec, tw.groups, tw.overall))
                    .collect();
                ParamCf {
                    param: w.param,
                    dependent: w.dependent,
                    codec,
                    tables,
                    prefix_tables,
                    default: w.default,
                    keys: KeyColumn::None,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    fn fitted() -> (auric_netgen::GeneratedNetwork, CfModel) {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let scope = Scope::whole(&net.snapshot);
        let model = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        (net, model)
    }

    #[test]
    fn fit_covers_every_parameter() {
        let (net, model) = fitted();
        assert_eq!(model.params().len(), net.snapshot.catalog.len());
        for pc in model.params() {
            assert!(pc.tables.total() > 0, "{} has no observations", pc.param);
        }
    }

    #[test]
    fn clean_network_global_loo_is_nearly_perfect() {
        // Without tuning noise, every value is a function of attributes,
        // so exact-match voting with LoO must recover almost everything
        // (losses only where a group is a singleton).
        let (net, model) = fitted();
        let snap = &net.snapshot;
        let mut hit = 0usize;
        let mut total = 0usize;
        for p in snap.catalog.singular_ids() {
            let pc = model.param(p);
            for c in &snap.carriers {
                let key = pc.key_for_carrier(&c.attrs);
                let current = snap.config.value(p, c.id);
                let rec = model.recommend_global(p, &key, Some(current));
                total += 1;
                hit += usize::from(rec.value == current);
            }
        }
        let acc = hit as f64 / total as f64;
        assert!(acc > 0.93, "clean-network LoO accuracy {acc}");
    }

    #[test]
    fn carrier_entry_points_agree_with_the_unpacked_key_form() {
        // recommend_global_for_carrier (column fast path) must equal
        // recommend_global over the unpacked key, for fitted and for
        // deserialized (column-less) models alike.
        let (net, model) = fitted();
        let snap = &net.snapshot;
        let json = serde_json::to_string(&model).expect("serialize");
        let thawed: CfModel = serde_json::from_str(&json).expect("deserialize");
        for p in snap.catalog.singular_ids() {
            let pc = model.param(p);
            for c in snap.carriers.iter().step_by(7) {
                let key = pc.key_for_carrier(&c.attrs);
                let current = snap.config.value(p, c.id);
                let via_key = model.recommend_global(p, &key, Some(current));
                assert_eq!(
                    model.recommend_global_for_carrier(snap, p, c.id, Some(current)),
                    via_key
                );
                assert_eq!(
                    thawed.recommend_global_for_carrier(snap, p, c.id, Some(current)),
                    via_key
                );
            }
        }
        for p in snap.catalog.pairwise_ids().take(3) {
            let pc = model.param(p);
            for q in (0..snap.x2.n_pairs() as u32).step_by(13) {
                let (j, k) = snap.x2.pair(q);
                let key = pc.key_for_pair(&snap.carrier(j).attrs, &snap.carrier(k).attrs);
                let current = snap.config.pair_value(p, q);
                let via_key = model.recommend_global(p, &key, Some(current));
                assert_eq!(
                    model.recommend_global_for_pair(snap, p, q, Some(current)),
                    via_key
                );
                assert_eq!(
                    thawed.recommend_global_for_pair(snap, p, q, Some(current)),
                    via_key
                );
            }
        }
    }

    #[test]
    fn local_learner_recovers_pockets() {
        // Plant aggressive pockets; the local learner must beat the global
        // one on pocketed slots.
        let knobs = TuningKnobs {
            pocket_prob: 1.0,
            max_pockets: 6,
            params_per_pocket: (20, 40),
            pocket_radius_km: (3.0, 8.0),
            hidden_pocket_frac: 0.5,
            ..TuningKnobs::none()
        };
        let net = generate(
            &NetScale {
                n_markets: 2,
                enbs_per_market: 14,
                seed: 11,
            },
            &knobs,
        );
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let mut local_hit = 0usize;
        let mut global_hit = 0usize;
        let mut pocket_slots = 0usize;
        for p in snap.catalog.singular_ids() {
            let pc = model.param(p);
            for c in &snap.carriers {
                if !matches!(
                    snap.config.provenance(p, c.id),
                    auric_model::Provenance::Pocket { .. }
                ) {
                    continue;
                }
                pocket_slots += 1;
                let current = snap.config.value(p, c.id);
                let local = model.recommend_local_singular(snap, p, c.id, true);
                let global =
                    model.recommend_global(p, &pc.key_for_carrier(&c.attrs), Some(current));
                local_hit += usize::from(local.value == current);
                global_hit += usize::from(global.value == current);
            }
        }
        assert!(
            pocket_slots > 50,
            "need pocketed slots to compare ({pocket_slots})"
        );
        assert!(
            local_hit > global_hit,
            "local {local_hit} vs global {global_hit} on {pocket_slots} pocket slots"
        );
    }

    #[test]
    fn pairwise_recommendations_work() {
        let (net, model) = fitted();
        let snap = &net.snapshot;
        let p = snap.catalog.pairwise_ids().next().unwrap();
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..snap.x2.n_pairs().min(500) as u32 {
            let current = snap.config.pair_value(p, q);
            let rec = model.recommend_local_pair(snap, p, q, true);
            total += 1;
            hit += usize::from(rec.value == current);
        }
        assert!(total > 0);
        assert!(
            hit as f64 / total as f64 > 0.8,
            "pairwise local accuracy {}/{total}",
            hit
        );
    }

    #[test]
    fn fallback_chain_reaches_default_on_unseen_keys() {
        let (net, model) = fitted();
        let snap = &net.snapshot;
        let p = snap.catalog.singular_ids().next().unwrap();
        let pc = model.param(p);
        // A key that cannot exist (levels past every cardinality; they
        // collapse to the reserved sentinel, which no recorded key holds).
        let bogus: Vec<u16> = pc.dependent.iter().map(|_| u16::MAX).collect();
        let rec = model.recommend_global(p, &bogus, None);
        assert!(
            matches!(rec.basis, Basis::GlobalMajority | Basis::Default),
            "unseen key must not produce a group vote: {rec:?}"
        );
    }

    #[test]
    fn backoff_resolves_rare_combinations_from_ancestor_groups() {
        // Construct a parameter state by hand: key = (attr0, attr1), a
        // big group at (0, 0) and a singleton at (0, 9). Excluding the
        // singleton's own value empties its group; backoff must answer
        // from the (0,) prefix instead of the scope-wide table.
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        // Find a parameter with >= 2 dependent attributes and probe a
        // synthetic key whose full combination was never observed but
        // whose first-attribute prefix was.
        for pc in model.params() {
            if pc.dependent.len() < 2 {
                continue;
            }
            // Take an existing key and mutate its last component to an
            // unseen level.
            let some_key = match snap.catalog.def(pc.param).kind {
                auric_model::ParamKind::Singular => {
                    pc.key_for_carrier(&snap.carrier(CarrierId(0)).attrs)
                }
                _ => continue,
            };
            let mut probe = some_key.clone();
            *probe.last_mut().unwrap() = u16::MAX; // impossible level
            let rec = model.recommend_global(pc.param, &probe, None);
            assert!(
                matches!(rec.basis, Basis::GroupMajority),
                "unseen last component should back off to an ancestor group, got {rec:?}"
            );
            assert!(rec.voters > 0, "backoff answers carry evidence");
            return;
        }
        panic!("no suitable multi-attribute parameter found");
    }

    #[test]
    fn serde_round_trips_the_fitted_model() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let json = serde_json::to_string(&model).expect("serialize");
        let back: CfModel = serde_json::from_str(&json).expect("deserialize");
        // Same recommendations after the round trip.
        for p in snap.catalog.singular_ids().take(5) {
            for i in (0..snap.n_carriers()).step_by(17) {
                let c = CarrierId::from_index(i);
                let a = model.recommend_local_singular(snap, p, c, true);
                let b = back.recommend_local_singular(snap, p, c, true);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn wire_format_keeps_groups_as_sorted_unpacked_pairs() {
        // The on-disk JSON must expose group keys as attribute-level
        // arrays (sorted), not packed integers.
        let (net, model) = fitted();
        let json = serde_json::to_string(&model).expect("serialize");
        let value: serde_json::Value = serde_json::from_str(&json).expect("parse");
        let params = value["params"].as_array().expect("params array");
        assert_eq!(params.len(), net.snapshot.catalog.len());
        let mut saw_nonempty_key = false;
        for p in params {
            let n_dep = p["dependent"].as_array().expect("dependent").len();
            assert_eq!(p["cards"].as_array().expect("cards").len(), n_dep);
            let groups = p["tables"]["groups"].as_array().expect("groups");
            let mut prev: Option<Vec<u64>> = None;
            for pair in groups {
                let entry = pair.as_array().expect("pair");
                let key: Vec<u64> = entry[0]
                    .as_array()
                    .expect("unpacked key array")
                    .iter()
                    .map(|v| v.as_u64().expect("level"))
                    .collect();
                assert_eq!(key.len(), n_dep, "key length matches dependency count");
                saw_nonempty_key |= !key.is_empty();
                if let Some(prev) = &prev {
                    assert!(prev < &key, "groups sorted by unpacked key");
                }
                prev = Some(key);
            }
        }
        assert!(saw_nonempty_key, "expected at least one non-trivial key");
    }

    #[test]
    fn fit_is_deterministic_despite_parallelism() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let scope = Scope::whole(&net.snapshot);
        let a = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        let b = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        for (x, y) in a.params().iter().zip(b.params()) {
            assert_eq!(x.dependent, y.dependent);
            assert_eq!(x.tables, y.tables);
        }
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let out = parallel_map(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
    }
}
