//! The collaborative-filtering recommender: chi-square dependency
//! selection + exact-match voting, in global and local (geographic
//! proximity) flavors (§3.2–3.3).
//!
//! ## Hot-path representation
//!
//! Vote keys are bit-packed `u128`s (see [`PackedKeyCodec`]): each fitted
//! parameter owns a mixed-radix layout over its dependent attributes, and
//! every group lookup, prefix backoff, and neighborhood scan works on
//! plain integers. Fitting also materializes a **key column** — the packed
//! key of every snapshot carrier (or directed pair) — so local voting is a
//! linear scan of integer compares with zero allocation, and leave-one-out
//! sweeps reuse the column instead of re-projecting attributes per probe.
//! Layouts wider than 128 bits (unreachable under the Table-1 schema;
//! paper-scale dependency selection crosses 64 bits but tops out near 94)
//! fall back to unpacked keys with identical semantics; `legacy.rs` keeps
//! the original unpacked implementation as the differential-testing
//! oracle.

use crate::dependency::{PredictorAttr, Side};
use crate::scope::Scope;
use crate::voting::{KeyRef, VoteKey, VoteTables};
use auric_model::{
    AppliedBatch, AppliedRetune, AttrArena, AttrValue, AttrVec, CarrierId, DeltaSlot,
    NetworkSnapshot, PairIdx, ParamId, ParamKind, ValueIdx,
};
use auric_obs::Recorder;
use auric_stats::freq::FreqTable;
use auric_stats::packed::PackedKeyCodec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Hyperparameters of the recommender. Paper values: `alpha = 0.01`,
/// `support = 0.75`, `hops = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfConfig {
    /// Chi-square significance level for dependency selection.
    pub alpha: f64,
    /// Minimum vote-support ratio.
    pub support: f64,
    /// X2 neighborhood radius of the local learner (in hops).
    pub hops: usize,
    /// Use the paper's literal marginal chi-square selection instead of
    /// the conditional forward selection (see `dependency` module docs).
    /// Kept for the dependency-selection ablation.
    pub marginal_selection: bool,
}

impl Default for CfConfig {
    fn default() -> Self {
        Self {
            alpha: 0.01,
            support: 0.75,
            hops: 1,
            marginal_selection: false,
        }
    }
}

/// Options for [`CfModel::fit_with`]: the observability recorder and an
/// optional worker-thread override for the fit pool (mainly for honest
/// single- vs multi-thread benchmarking).
#[derive(Debug, Clone, Default)]
pub struct FitOptions {
    /// Where fit-time metrics land; [`Recorder::disabled`] costs nothing.
    pub obs: Recorder,
    /// Worker threads for the fit pool; `None` uses the machine default
    /// (see [`fit_worker_threads`]).
    pub threads: Option<usize>,
    /// A key-column cache shared across fits of the **same snapshot**.
    /// Key columns span the whole snapshot regardless of the fitting
    /// scope, so per-market fits (the paper's methodology) that select
    /// the same ordered dependent set for a parameter rebuild
    /// byte-identical fleet-sized columns — unless they share a cache.
    /// `None` gives each fit a private cache (sharing only within the
    /// fit, which Table-1 layouts rarely allow).
    pub key_cache: Option<SharedKeyColumns>,
}

/// Inputs of [`CfModel::apply_delta`]: the **post-batch** snapshot and
/// arena, the model's learning scope before and after the batch, and the
/// digest of what the batch did.
///
/// The caller owns snapshot evolution: apply the streamed events with
/// [`auric_model::apply_fleet_deltas`], roll the arena forward with
/// [`AttrArena::append`] (which reuses unchanged attribute columns
/// instead of re-packing the fleet), recompute the scope under the *same*
/// scoping rule, and hand everything here. The scoping rule must be
/// **batch-stable**: a carrier present before and after the batch keeps
/// its membership (true for [`Scope::whole`] and the per-market scopes —
/// carriers never change market).
pub struct DeltaApply<'a> {
    /// The snapshot *after* the batch was applied.
    pub snapshot: &'a NetworkSnapshot,
    /// Columnar arena of the post-batch snapshot (see [`AttrArena::append`]).
    pub arena: &'a AttrArena,
    /// The scope this model was fitted over, evaluated pre-batch.
    pub scope_before: &'a Scope,
    /// The same scoping rule evaluated on the post-batch snapshot.
    pub scope_after: &'a Scope,
    /// What the batch did, in incremental-fit vocabulary.
    pub batch: &'a AppliedBatch,
    /// Key-column cache shared across models applying the **same** batch
    /// to the same post-batch snapshot (per-market shard models): spliced
    /// fleet-wide columns are built once and shared. `None` uses a
    /// private cache.
    pub key_cache: Option<SharedKeyColumns>,
}

/// What [`CfModel::apply_delta`] did, mirrored into the `cf.delta.*`
/// observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaFitReport {
    /// Parameters whose tables were updated in place (dependency
    /// selection re-ran and landed on the same attribute set).
    pub params_patched: usize,
    /// Parameters refitted from scratch (selection changed, or the key
    /// layout is wide and carries no incremental form).
    pub params_rebuilt: usize,
    /// Parameters the batch provably did not touch (no in-scope adds,
    /// removes, or retunes): tables untouched, key column refreshed only
    /// if the fleet changed shape.
    pub params_untouched: usize,
    /// In-scope observations added to patched tables (per parameter).
    pub obs_added: u64,
    /// In-scope observations removed from patched tables (per parameter).
    pub obs_removed: u64,
    /// Table increments that clamped at the counter ceiling instead of
    /// overflowing (see `FreqTable::add_count`). Nonzero means vote
    /// counts are saturated and support ratios are approximate.
    pub count_saturated: u64,
}

/// How a recommendation was produced — the fallback chain position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Basis {
    /// ≥ `support` agreement within the X2 neighborhood's matching
    /// carriers (local learner only).
    LocalVote,
    /// ≥ `support` agreement within the scope-wide matching group.
    GlobalVote,
    /// The matching group's plurality value — the "maximum support"
    /// answer when no value clears the confidence threshold.
    GroupMajority,
    /// Empty group; scope-wide plurality value.
    GlobalMajority,
    /// No data at all; the rule-book/catalog default (§6: "we currently
    /// stick with the default configuration settings").
    Default,
}

/// Why a serialized model failed to load. Every failure mode of
/// [`CfModel::from_json_bytes`] is represented here — a corrupted or
/// truncated model file must surface as a typed error, never a panic,
/// because the serving layer hot-swaps models while answering traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelLoadError {
    /// The bytes are not UTF-8 text.
    InvalidUtf8,
    /// The text is not valid JSON, or the JSON fails the wire format's
    /// structural and consistency validation (key layout width, level
    /// ranges, table totals, overall-vs-groups agreement).
    Parse(String),
}

impl std::fmt::Display for ModelLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelLoadError::InvalidUtf8 => write!(f, "model file is not UTF-8"),
            ModelLoadError::Parse(msg) => write!(f, "model file failed to parse: {msg}"),
        }
    }
}

impl std::error::Error for ModelLoadError {}

/// A recommendation with its evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recommendation {
    pub value: ValueIdx,
    pub basis: Basis,
    /// Votes for the winning value (0 for majority/default bases).
    pub support: usize,
    /// Total voters consulted (0 for majority/default bases).
    pub voters: usize,
}

/// Packed keys of every snapshot target, built during fit so the local
/// learner and the LoO sweeps never re-project attributes. Not serialized
/// — a deserialized model recomputes keys on the fly (still allocation
/// free on the packed path).
///
/// Columns are `Arc` slices handed out by the fit's [`KeyColumnCache`]:
/// parameters whose dependency selection landed on the same attribute set
/// share one physical column instead of each retaining a fleet-sized
/// private copy.
#[derive(Debug, Clone)]
enum KeyColumn {
    /// No column: wide layout, or a freshly deserialized model.
    None,
    /// `col[c.index()]` = packed key of carrier `c` (singular parameters).
    Carrier(Arc<[u128]>),
    /// `col[q as usize]` = packed key of directed pair `q` (pair-wise).
    Pair(Arc<[u128]>),
}

impl KeyColumn {
    fn carriers(&self) -> Option<&[u128]> {
        match self {
            KeyColumn::Carrier(col) => Some(col),
            _ => None,
        }
    }

    fn pairs(&self) -> Option<&[u128]> {
        match self {
            KeyColumn::Pair(col) => Some(col),
            _ => None,
        }
    }
}

/// Fit-time dedup of packed key columns. Two parameters of the same kind
/// whose dependency selection produced the same ordered dependent set have
/// byte-identical key columns (the codec is a function of the dependent
/// attrs' cardinalities), so the column is built once and shared by `Arc`.
///
/// Each entry holds a [`OnceLock`]: whichever worker arrives first builds
/// the column, everyone else blocks on (or finds) the finished cell — so
/// exactly one build happens per unique `(kind, dependent)` regardless of
/// the parallel schedule, and the built/shared tallies are deterministic.
struct KeyColumnCache {
    entries: Mutex<HashMap<ColumnLayout, ColumnCell>>,
    built: AtomicU64,
    shared: AtomicU64,
    bytes: AtomicU64,
    /// Address and `(n_carriers, n_pairs)` of the first snapshot this
    /// cache served — a cached column is only valid for the snapshot it
    /// was packed from, so cross-snapshot reuse is a caller bug caught
    /// here. The address catches equal-shape snapshots with different
    /// attribute content (two live snapshots never share an address).
    fleet: OnceLock<(usize, usize, usize)>,
}

/// A [`KeyColumnCache`] handle that outlives one fit, for sharing packed
/// key columns across **fits of the same snapshot** (per-market models,
/// hot refits). Cheap to clone; thread-safe. Passing a cache that saw a
/// different snapshot panics at fit time rather than aliasing wrong
/// columns.
#[derive(Clone, Default)]
pub struct SharedKeyColumns(Arc<KeyColumnCache>);

impl SharedKeyColumns {
    /// An empty cache, to be shared by every fit of one snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct `(kind, ordered dependent set)` columns physically built.
    pub fn built(&self) -> u64 {
        self.0.built.load(Ordering::Relaxed)
    }

    /// Column requests satisfied by an already-built column.
    pub fn shared(&self) -> u64 {
        self.0.shared.load(Ordering::Relaxed)
    }

    /// Bytes held by the built columns.
    pub fn bytes(&self) -> u64 {
        self.0.bytes.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SharedKeyColumns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedKeyColumns")
            .field("built", &self.built())
            .field("shared", &self.shared())
            .field("bytes", &self.bytes())
            .finish()
    }
}

/// The cache key: a key column is fully determined by the parameter kind
/// and the ordered dependent attribute set.
type ColumnLayout = (ParamKind, Vec<PredictorAttr>);

/// One cache entry: a build-once cell holding the shared column.
type ColumnCell = Arc<OnceLock<Arc<[u128]>>>;

impl Default for KeyColumnCache {
    fn default() -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            built: AtomicU64::new(0),
            shared: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fleet: OnceLock::new(),
        }
    }
}

impl KeyColumnCache {
    /// Pins the cache to one snapshot; panics if a fit hands it a
    /// different snapshot (cached columns would alias wrong keys
    /// silently otherwise).
    fn guard_fleet(&self, snapshot: &NetworkSnapshot) {
        let id = (
            snapshot as *const NetworkSnapshot as usize,
            snapshot.n_carriers(),
            snapshot.x2.n_pairs(),
        );
        let fleet = *self.fleet.get_or_init(|| id);
        assert_eq!(
            fleet, id,
            "SharedKeyColumns reused across different snapshots"
        );
    }

    fn get_or_build(
        &self,
        kind: ParamKind,
        dependent: &[PredictorAttr],
        build: impl FnOnce() -> Vec<u128>,
    ) -> Arc<[u128]> {
        let cell = {
            // A worker that panicked mid-fit (injected faults, a poisoned
            // serving model) poisons this mutex, but the map it guards is
            // only ever observed between a complete `entry` call — the
            // column build itself runs outside the lock, inside the
            // per-cell `OnceLock` — so the state is valid and later fits
            // must keep working instead of panicking forever.
            let mut map = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(
                map.entry((kind, dependent.to_vec()))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut fresh = false;
        let col = Arc::clone(cell.get_or_init(|| {
            fresh = true;
            Arc::from(build())
        }));
        if fresh {
            self.built.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(
                (col.len() * std::mem::size_of::<u128>()) as u64,
                Ordering::Relaxed,
            );
        } else {
            self.shared.fetch_add(1, Ordering::Relaxed);
        }
        col
    }
}

/// Per-parameter fitted state.
#[derive(Debug, Clone)]
pub struct ParamCf {
    pub param: ParamId,
    /// Dependent attributes in key order (strongest marginal association
    /// first).
    pub dependent: Vec<PredictorAttr>,
    /// Bit-field layout of the vote key over `dependent`.
    codec: PackedKeyCodec,
    /// Scope-wide vote tables keyed on the dependent attributes, frozen
    /// into sorted form after the fit. Backoff needs no materialized
    /// per-level tables: when a full-key group is empty (a rare attribute
    /// combination after leave-one-out), the recommender walks toward
    /// shorter prefixes — "maximum support among the most similar
    /// carriers" rather than a scope-wide guess — by aggregating the
    /// prefix's contiguous run of sorted groups on demand
    /// ([`VoteTables::prefix_aggregate`]).
    pub tables: VoteTables,
    /// Catalog default (final fallback).
    pub default: ValueIdx,
    /// Packed key per snapshot target (see [`KeyColumn`]).
    keys: KeyColumn,
}

impl ParamCf {
    /// The unpacked vote key of a carrier (singular parameters). This is
    /// the interchange form accepted by [`CfModel::recommend_global`];
    /// internal paths use the packed companions below.
    pub fn key_for_carrier(&self, attrs: &AttrVec) -> VoteKey {
        self.dependent
            .iter()
            .map(|pa| {
                debug_assert_eq!(pa.side, Side::Src, "singular key reads only the carrier");
                attrs.get(pa.attr)
            })
            .collect()
    }

    /// The unpacked vote key of a directed pair (pair-wise parameters).
    pub fn key_for_pair(&self, src: &AttrVec, dst: &AttrVec) -> VoteKey {
        self.dependent
            .iter()
            .map(|pa| match pa.side {
                Side::Src => src.get(pa.attr),
                Side::Dst => dst.get(pa.attr),
            })
            .collect()
    }

    /// The key layout of this parameter.
    pub fn codec(&self) -> &PackedKeyCodec {
        &self.codec
    }

    /// Packs a carrier's vote key without allocating.
    #[inline]
    pub fn packed_for_carrier(&self, attrs: &AttrVec) -> u128 {
        self.codec.pack_with(|i| {
            let pa = self.dependent[i];
            debug_assert_eq!(pa.side, Side::Src, "singular key reads only the carrier");
            attrs.get(pa.attr)
        })
    }

    /// Packs a directed pair's vote key without allocating.
    #[inline]
    pub fn packed_for_pair(&self, src: &AttrVec, dst: &AttrVec) -> u128 {
        self.codec.pack_with(|i| {
            let pa = self.dependent[i];
            match pa.side {
                Side::Src => src.get(pa.attr),
                Side::Dst => dst.get(pa.attr),
            }
        })
    }

    /// The fitted per-carrier key column, when present (packed layout,
    /// fitted — not deserialized — model).
    pub fn carrier_keys(&self) -> Option<&[u128]> {
        self.keys.carriers()
    }

    /// The fitted per-pair key column, when present.
    pub fn pair_keys(&self) -> Option<&[u128]> {
        self.keys.pairs()
    }

    /// The shared `Arc` behind the key column, when present — exposed so
    /// tests can assert that parameters with equal dependent sets alias
    /// one physical column.
    pub fn key_column_arc(&self) -> Option<Arc<[u128]>> {
        match &self.keys {
            KeyColumn::None => None,
            KeyColumn::Carrier(col) | KeyColumn::Pair(col) => Some(Arc::clone(col)),
        }
    }
}

/// A fitted Auric model over one learning scope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CfModel {
    pub config: CfConfig,
    /// Serialized in the stable wire format: per parameter, the key layout
    /// cardinalities plus every table's groups as sorted
    /// `(unpacked key, table)` pairs — packed integers never reach disk.
    #[serde(with = "model_serde")]
    params: Vec<ParamCf>,
    /// Recommendation-time metrics sink. Disabled by default (and after
    /// deserialization); attach one with [`CfModel::set_recorder`].
    #[serde(skip)]
    obs: Recorder,
}

impl CfModel {
    /// Fits dependency sets and vote tables for every catalog parameter
    /// over `scope`.
    ///
    /// Parameters are fitted in parallel by a work-stealing pool: workers
    /// claim the next parameter index off a shared atomic counter, so one
    /// slow parameter (big cardinality, many pairs) no longer idles the
    /// threads that drew cheap static chunks. Results are reassembled in
    /// index order, so the fitted model is deterministic regardless of
    /// which worker fitted what.
    pub fn fit(snapshot: &NetworkSnapshot, scope: &Scope, config: CfConfig) -> Self {
        Self::fit_with(snapshot, scope, config, FitOptions::default())
    }

    /// [`CfModel::fit`] with explicit [`FitOptions`]: fit-time metrics go
    /// to `opts.obs` (which stays attached to the model so recommendation
    /// metrics land there too), and `opts.threads` pins the pool width.
    pub fn fit_with(
        snapshot: &NetworkSnapshot,
        scope: &Scope,
        config: CfConfig,
        opts: FitOptions,
    ) -> Self {
        let FitOptions {
            obs,
            threads,
            key_cache,
        } = opts;
        let n_params = snapshot.catalog.len();
        let span = obs.span("cf.fit");
        // The shared read-only inputs of every fit job: the columnar
        // attribute arena (built once, before the pool starts) and the
        // key-column cache the jobs dedup their fleet-sized columns in.
        // A caller-provided cache extends the dedup across fits of the
        // same snapshot (per-market models, refits); a private one only
        // dedups within this fit.
        let arena = AttrArena::from_snapshot(snapshot);
        obs.gauge_max("cf.fit.arena.bytes", arena.bytes() as u64);
        let cache = key_cache.unwrap_or_default();
        let cache = &*cache.0;
        cache.guard_fleet(snapshot);
        let params = parallel_map_with(n_params, threads, |i| {
            fit_param(
                snapshot,
                &arena,
                cache,
                scope,
                ParamId(i as u16),
                &config,
                &obs,
            )
        });
        obs.gauge_max("cf.fit.keycol.built", cache.built.load(Ordering::Relaxed));
        obs.gauge_max("cf.fit.keycol.shared", cache.shared.load(Ordering::Relaxed));
        obs.gauge_max("cf.fit.keycol.bytes", cache.bytes.load(Ordering::Relaxed));
        span.close();
        Self {
            config,
            params,
            obs,
        }
    }

    /// Rolls the fitted model forward over one applied delta batch,
    /// producing **byte-for-byte the model a full refit of the post-batch
    /// snapshot would produce** (same wire JSON) at a fraction of the
    /// work and peak memory:
    ///
    /// * Parameters with no in-scope adds, removes, or retunes keep their
    ///   tables untouched — dependency selection over unchanged samples
    ///   is deterministic, so re-running it would land on the same set.
    /// * Touched parameters re-run dependency selection; if the selected
    ///   set is unchanged the frozen tables are thawed, patched with the
    ///   exact observation diff (retunes swap stale votes in event order,
    ///   removed targets subtract, batch-born targets add), and
    ///   re-frozen. Vote groups are key-sorted multisets, so patching to
    ///   the same multiset yields identical bytes.
    /// * Parameters whose selection changed (or whose key layout is wide)
    ///   are refitted from scratch, exactly as a full refit would.
    ///
    /// Key columns span the whole fleet, so they are refreshed whenever
    /// the fleet changed shape even for untouched parameters — by
    /// splicing the surviving prefix (carrier columns; removes are LIFO,
    /// adds append) or scattering through the pair remap, packing only
    /// batch-born targets.
    pub fn apply_delta(&mut self, apply: &DeltaApply<'_>) -> DeltaFitReport {
        let DeltaApply {
            snapshot,
            arena,
            scope_before,
            scope_after,
            batch,
            key_cache,
        } = apply;
        let (snapshot, arena) = (*snapshot, *arena);
        let (scope_before, scope_after) = (*scope_before, *scope_after);
        let obs = self.obs.clone();
        let span = obs.span("cf.delta.apply");
        obs.add("cf.delta.events", batch.events as u64);

        let n_after = snapshot.n_carriers();
        let n_pairs_after = snapshot.x2.n_pairs();
        debug_assert_eq!(
            (arena.n_carriers(), arena.n_pairs()),
            (n_after, n_pairs_after),
            "arena must track the post-batch snapshot"
        );

        // The remap only matters when pair indices actually moved; a
        // same-length identity map means every pair kept its index.
        let remap: Option<&Vec<Option<PairIdx>>> = batch.pair_remap.as_ref().filter(|m| {
            !(m.len() == n_pairs_after
                && m.iter().enumerate().all(|(q, s)| *s == Some(q as PairIdx)))
        });
        let carriers_changed = !batch.added_carriers.is_empty() || !batch.removed.is_empty();
        let pairs_changed = remap.is_some();
        let added_pairs_all: Vec<PairIdx> = if pairs_changed {
            batch.added_pairs(n_pairs_after)
        } else {
            Vec::new()
        };

        // Scope-filtered views of the digest. Membership of batch-born
        // targets reads `scope_after`; removed targets are only known to
        // `scope_before`. A removed pair belongs to the scope iff its
        // source carrier does, matching how `Scope` collects pairs.
        let in_carriers = |scope: &Scope, c: CarrierId| scope.carriers.binary_search(&c).is_ok();
        let added_in_scope: Vec<CarrierId> = batch
            .added_carriers
            .iter()
            .copied()
            .filter(|&c| in_carriers(scope_after, c))
            .collect();
        let removed_in_scope: Vec<&auric_model::RemovedCarrier> = batch
            .removed
            .iter()
            .filter(|rec| in_carriers(scope_before, rec.id))
            .collect();
        let added_pairs_in_scope: Vec<PairIdx> = added_pairs_all
            .iter()
            .copied()
            .filter(|q| scope_after.pairs.binary_search(q).is_ok())
            .collect();
        let removed_pairs_in_scope: usize = removed_in_scope
            .iter()
            .map(|rec| {
                rec.pairs
                    .iter()
                    .filter(|rp| in_carriers(scope_before, rp.src))
                    .count()
            })
            .sum();

        // Retunes land on pre-batch slots. A slot whose source carrier
        // survived has batch-stable membership (the scoping contract), so
        // either scope answers; a removed carrier's id sits at or beyond
        // `n_after` (removes pop from the tail) and only `scope_before`
        // knows it.
        let retune_in_scope = |r: &AppliedRetune| {
            let src = match r.slot {
                DeltaSlot::Carrier(c) => c,
                DeltaSlot::Pair(a, _) => a,
            };
            let scope = if src.index() >= n_after {
                scope_before
            } else {
                scope_after
            };
            in_carriers(scope, src)
        };
        let mut retunes_by_param: HashMap<ParamId, Vec<&AppliedRetune>> = HashMap::new();
        for r in batch.retunes.iter().filter(|r| retune_in_scope(r)) {
            retunes_by_param.entry(r.param).or_default().push(r);
        }

        // Attribute lookup that also covers carriers the batch removed
        // (their final attrs ride in the digest).
        let removed_attrs: HashMap<CarrierId, &AttrVec> = batch
            .removed
            .iter()
            .map(|rec| (rec.id, &rec.attrs))
            .collect();
        let attrs_of = |c: CarrierId| -> &AttrVec {
            if c.index() < n_after {
                &snapshot.carrier(c).attrs
            } else {
                removed_attrs[&c]
            }
        };

        let cache = key_cache.clone().unwrap_or_default();
        let cache = &*cache.0;
        cache.guard_fleet(snapshot);

        let mut report = DeltaFitReport::default();
        let n_params = self.params.len();
        debug_assert_eq!(n_params, snapshot.catalog.len());
        for i in 0..n_params {
            let param = ParamId(i as u16);
            let kind = snapshot.catalog.def(param).kind;
            let structural = match kind {
                ParamKind::Singular => !added_in_scope.is_empty() || !removed_in_scope.is_empty(),
                ParamKind::Pairwise => {
                    !added_pairs_in_scope.is_empty() || removed_pairs_in_scope > 0
                }
            };
            let retunes: &[&AppliedRetune] = retunes_by_param
                .get(&param)
                .map(|v| v.as_slice())
                .unwrap_or(&[]);

            if !structural && retunes.is_empty() {
                report.params_untouched += 1;
                refresh_key_column(
                    &mut self.params[i],
                    kind,
                    arena,
                    cache,
                    carriers_changed,
                    pairs_changed,
                    remap,
                    &added_pairs_all,
                );
                continue;
            }

            // The batch may have shifted which attributes pass the
            // chi-square test: re-select, exactly as a full refit would.
            let dependent =
                select_dependent(snapshot, arena, scope_after, param, &self.config, &obs);
            if dependent != self.params[i].dependent || !self.params[i].codec.fits_u128() {
                self.params[i] =
                    fit_param_with_dependent(snapshot, arena, cache, scope_after, param, dependent);
                report.params_rebuilt += 1;
                continue;
            }

            // Same dependent set: patch the tables in place. Refresh the
            // column first so batch-born targets can be keyed off it.
            report.params_patched += 1;
            refresh_key_column(
                &mut self.params[i],
                kind,
                arena,
                cache,
                carriers_changed,
                pairs_changed,
                remap,
                &added_pairs_all,
            );
            let pc = &mut self.params[i];
            pc.tables.thaw();
            // Retunes first, in event order: a slot retuned and then
            // removed in the same batch carries its *final* value in the
            // removal record, so the swap must land before the subtract.
            for r in retunes {
                let key = match r.slot {
                    DeltaSlot::Carrier(c) => pc.packed_for_carrier(attrs_of(c)),
                    DeltaSlot::Pair(a, b) => pc.packed_for_pair(attrs_of(a), attrs_of(b)),
                };
                pc.tables
                    .remove_packed(key, r.old)
                    .expect("patched tables are packed");
                let sat = pc
                    .tables
                    .add_packed_count(key, r.new, 1)
                    .expect("patched tables are packed");
                report.count_saturated += sat as u64;
            }
            // Subtract everything that left the scope with a removal.
            for rec in &removed_in_scope {
                match kind {
                    ParamKind::Singular => {
                        let key = pc.packed_for_carrier(&rec.attrs);
                        pc.tables
                            .remove_packed(key, value_for(&rec.values, param))
                            .expect("patched tables are packed");
                        report.obs_removed += 1;
                    }
                    ParamKind::Pairwise => {
                        for rp in rec
                            .pairs
                            .iter()
                            .filter(|rp| in_carriers(scope_before, rp.src))
                        {
                            let key = pc.packed_for_pair(&rp.src_attrs, &rp.dst_attrs);
                            pc.tables
                                .remove_packed(key, value_for(&rp.values, param))
                                .expect("patched tables are packed");
                            report.obs_removed += 1;
                        }
                    }
                }
            }
            // Add everything the batch created inside the scope.
            match kind {
                ParamKind::Singular => {
                    for &c in &added_in_scope {
                        let key = pc.packed_for_carrier(&snapshot.carrier(c).attrs);
                        let sat = pc
                            .tables
                            .add_packed_count(key, snapshot.config.value(param, c), 1)
                            .expect("patched tables are packed");
                        report.count_saturated += sat as u64;
                        report.obs_added += 1;
                    }
                }
                ParamKind::Pairwise => {
                    for &q in &added_pairs_in_scope {
                        let (j, k) = snapshot.x2.pair(q);
                        let key = pc.packed_for_pair(
                            &snapshot.carrier(j).attrs,
                            &snapshot.carrier(k).attrs,
                        );
                        let sat = pc
                            .tables
                            .add_packed_count(key, snapshot.config.pair_value(param, q), 1)
                            .expect("patched tables are packed");
                        report.count_saturated += sat as u64;
                        report.obs_added += 1;
                    }
                }
            }
            pc.tables.freeze();
        }

        obs.add("cf.delta.params_patched", report.params_patched as u64);
        obs.add("cf.delta.params_rebuilt", report.params_rebuilt as u64);
        obs.add("cf.delta.params_untouched", report.params_untouched as u64);
        obs.add("cf.delta.obs_added", report.obs_added);
        obs.add("cf.delta.obs_removed", report.obs_removed);
        obs.add("cf.delta.count_saturated", report.count_saturated);
        span.close();
        report
    }

    /// Attaches (or detaches, with [`Recorder::disabled`]) the sink for
    /// recommendation-time metrics: basis mix, vote support, backoff depth.
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// The model's metrics recorder (disabled unless attached).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// The fitted state of one parameter.
    pub fn param(&self, p: ParamId) -> &ParamCf {
        &self.params[p.index()]
    }

    /// All fitted parameter states.
    pub fn params(&self) -> &[ParamCf] {
        &self.params
    }

    /// Resolves a carrier's **serving probe**: the packed vote key of
    /// every singular parameter, in `catalog.singular_ids()` order. Two
    /// carriers with equal probes are indistinguishable to every
    /// singular vote table of this model, so the serving layer can use
    /// the probe as an equality-comparable `(ParamId, u128)` handle —
    /// resolved once at admission — for batching, coalescing, and
    /// response caching. `None` when the model does not cover the
    /// catalog or any singular layout is wider than 128 bits (no integer
    /// handle; such requests are served unbatched).
    pub fn probe_singular(&self, snapshot: &NetworkSnapshot, attrs: &AttrVec) -> Option<Vec<u128>> {
        snapshot
            .catalog
            .singular_ids()
            .map(|p| {
                let pc = self.params.get(p.index())?;
                pc.codec.fits_u128().then(|| pc.packed_for_carrier(attrs))
            })
            .collect()
    }

    /// Resolves a directed pair's serving probe: the packed vote key of
    /// every pair-wise parameter, in `catalog.pairwise_ids()` order.
    /// Same contract as [`CfModel::probe_singular`].
    pub fn probe_pairwise(
        &self,
        snapshot: &NetworkSnapshot,
        src: &AttrVec,
        dst: &AttrVec,
    ) -> Option<Vec<u128>> {
        snapshot
            .catalog
            .pairwise_ids()
            .map(|p| {
                let pc = self.params.get(p.index())?;
                pc.codec.fits_u128().then(|| pc.packed_for_pair(src, dst))
            })
            .collect()
    }

    /// Global recommendation for an unpacked vote key. `exclude` is the
    /// probe slot's own current value during leave-one-out evaluation,
    /// `None` for new carriers.
    pub fn recommend_global(
        &self,
        param: ParamId,
        key: &[u16],
        exclude: Option<ValueIdx>,
    ) -> Recommendation {
        let pc = self.param(param);
        debug_assert_eq!(key.len(), pc.dependent.len());
        if pc.codec.fits_u128() {
            self.global_chain(pc, KeyRef::Packed(pc.codec.pack(key)), exclude)
        } else {
            let clamped = pc.codec.clamp(key);
            self.global_chain(pc, KeyRef::Wide(&clamped), exclude)
        }
    }

    /// The market-mode answer for a parameter: the scope-wide plurality
    /// value, or the catalog default when the scope recorded nothing.
    /// This is the serving layer's last-resort degraded answer — it
    /// consults only the overall table, needs no probe key, and cannot
    /// panic for any in-catalog parameter.
    pub fn market_mode(&self, param: ParamId) -> Recommendation {
        let pc = self.param(param);
        if let Some(value) = pc.tables.overall_majority(None) {
            self.obs.inc("cf.rec.basis.global_majority");
            return Recommendation {
                value,
                basis: Basis::GlobalMajority,
                support: 0,
                voters: 0,
            };
        }
        self.obs.inc("cf.rec.basis.default");
        Recommendation {
            value: pc.default,
            basis: Basis::Default,
            support: 0,
            voters: 0,
        }
    }

    /// Loads a model from serialized JSON bytes, returning a typed error
    /// for anything short of a well-formed, internally consistent wire
    /// image: non-UTF-8 bytes, truncated or malformed JSON, and
    /// structurally valid JSON whose tables violate the fit invariants
    /// (duplicate or out-of-layout group keys, inconsistent totals, an
    /// overall table that is not the merge of its groups). The loaded
    /// model's recorder is disabled; attach one with
    /// [`CfModel::set_recorder`].
    pub fn from_json_bytes(bytes: &[u8]) -> Result<Self, ModelLoadError> {
        let text = std::str::from_utf8(bytes).map_err(|_| ModelLoadError::InvalidUtf8)?;
        serde_json::from_str(text).map_err(|e| ModelLoadError::Parse(e.0))
    }

    /// Global recommendation for an existing carrier, reusing the fitted
    /// key column when available (the fast path of the LoO sweeps).
    pub fn recommend_global_for_carrier(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        carrier: CarrierId,
        exclude: Option<ValueIdx>,
    ) -> Recommendation {
        let pc = self.param(param);
        if pc.codec.fits_u128() {
            let key = match pc.keys.carriers() {
                Some(col) => col[carrier.index()],
                None => pc.packed_for_carrier(&snapshot.carrier(carrier).attrs),
            };
            self.global_chain(pc, KeyRef::Packed(key), exclude)
        } else {
            let key = pc.key_for_carrier(&snapshot.carrier(carrier).attrs);
            self.global_chain(pc, KeyRef::Wide(&key), exclude)
        }
    }

    /// Global recommendation for an existing directed pair, reusing the
    /// fitted key column when available.
    pub fn recommend_global_for_pair(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        pair: PairIdx,
        exclude: Option<ValueIdx>,
    ) -> Recommendation {
        let pc = self.param(param);
        if pc.codec.fits_u128() {
            let key = match pc.keys.pairs() {
                Some(col) => col[pair as usize],
                None => {
                    let (j, k) = snapshot.x2.pair(pair);
                    pc.packed_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs)
                }
            };
            self.global_chain(pc, KeyRef::Packed(key), exclude)
        } else {
            let (j, k) = snapshot.x2.pair(pair);
            let key = pc.key_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs);
            self.global_chain(pc, KeyRef::Wide(&key), exclude)
        }
    }

    /// The global fallback chain over the full vote key: full-key vote,
    /// then full-key majority, then hierarchical prefix backoff (prefix
    /// groups are aggregated on demand from the sorted full-key groups —
    /// see [`VoteTables::prefix_aggregate`]), then the scope-wide
    /// majority, then the catalog default.
    fn global_chain(
        &self,
        pc: &ParamCf,
        full: KeyRef<'_>,
        exclude: Option<ValueIdx>,
    ) -> Recommendation {
        let n = pc.dependent.len();
        if let Some((value, support, voters)) = pc.tables.vote(full, exclude, self.config.support) {
            self.obs.inc("cf.rec.basis.global_vote");
            self.obs
                .observe("cf.rec.support.global_vote", support as u64);
            return Recommendation {
                value,
                basis: Basis::GlobalVote,
                support,
                voters,
            };
        }
        if let Some((value, support, voters)) = pc.tables.group_majority(full, exclude) {
            self.obs.inc("cf.rec.basis.group_majority");
            self.obs.observe("cf.rec.backoff_depth", 0);
            return Recommendation {
                value,
                basis: Basis::GroupMajority,
                support,
                voters,
            };
        }
        // Hierarchical backoff: the full-key group is empty (rare
        // combination after leave-one-out); retry on progressively
        // shorter prefixes of the dependency key. The excluded value may
        // be absent from an ancestor group, so only exclude it where
        // present.
        for l in (1..n).rev() {
            let Some(group) = pc.tables.prefix_aggregate(&pc.codec, full, l) else {
                continue;
            };
            let ex = exclude.filter(|&v| group.count(v) > 0);
            if let Some((value, support, voters)) = group.majority_with_support_excluding(ex, 0.0) {
                self.obs.inc("cf.rec.basis.group_majority");
                self.obs.observe("cf.rec.backoff_depth", (n - l) as u64);
                return Recommendation {
                    value,
                    basis: Basis::GroupMajority,
                    support,
                    voters,
                };
            }
        }
        let overall_exclude = exclude.filter(|&v| pc.tables.overall().count(v) > 0);
        if let Some(value) = pc.tables.overall_majority(overall_exclude) {
            self.obs.inc("cf.rec.basis.global_majority");
            return Recommendation {
                value,
                basis: Basis::GlobalMajority,
                support: 0,
                voters: 0,
            };
        }
        self.obs.inc("cf.rec.basis.default");
        Recommendation {
            value: pc.default,
            basis: Basis::Default,
            support: 0,
            voters: 0,
        }
    }

    /// Local recommendation for a singular parameter on an existing
    /// carrier: vote among the `hops`-hop X2 neighbors whose dependent
    /// attributes match, falling back to the global chain. With `loo`,
    /// the carrier's own current value is excluded from the fallback vote
    /// (it never participates in the neighborhood vote — a carrier is not
    /// its own neighbor).
    pub fn recommend_local_singular(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        carrier: CarrierId,
        loo: bool,
    ) -> Recommendation {
        debug_assert_eq!(snapshot.catalog.def(param).kind, ParamKind::Singular);
        let pc = self.param(param);
        let exclude = || loo.then(|| snapshot.config.value(param, carrier));
        if pc.codec.fits_u128() {
            let col = pc.keys.carriers();
            let key = match col {
                Some(col) => col[carrier.index()],
                None => pc.packed_for_carrier(&snapshot.carrier(carrier).attrs),
            };
            // The neighborhood vote: a linear scan of integer compares
            // over the key column (1-hop reads the CSR adjacency slice
            // directly — no BFS allocation).
            let mut table = FreqTable::new();
            let mut tally = |n: CarrierId| {
                let nkey = match col {
                    Some(col) => col[n.index()],
                    None => pc.packed_for_carrier(&snapshot.carrier(n).attrs),
                };
                if nkey == key {
                    table.add(snapshot.config.value(param, n));
                }
            };
            if self.config.hops == 1 {
                for &n in snapshot.x2.neighbors(carrier) {
                    tally(n);
                }
            } else {
                for n in snapshot.x2.k_hop_neighbors(carrier, self.config.hops) {
                    tally(n);
                }
            }
            if let Some((value, support, total)) =
                table.majority_with_support_excluding(None, self.config.support)
            {
                self.obs.inc("cf.rec.basis.local_vote");
                self.obs
                    .observe("cf.rec.support.local_vote", support as u64);
                return Recommendation {
                    value,
                    basis: Basis::LocalVote,
                    support,
                    voters: total,
                };
            }
            self.global_chain(pc, KeyRef::Packed(key), exclude())
        } else {
            let key = pc.key_for_carrier(&snapshot.carrier(carrier).attrs);
            let mut table = FreqTable::new();
            for n in snapshot.x2.k_hop_neighbors(carrier, self.config.hops) {
                if pc.key_for_carrier(&snapshot.carrier(n).attrs) == key {
                    table.add(snapshot.config.value(param, n));
                }
            }
            if let Some((value, support, total)) =
                table.majority_with_support_excluding(None, self.config.support)
            {
                self.obs.inc("cf.rec.basis.local_vote");
                self.obs
                    .observe("cf.rec.support.local_vote", support as u64);
                return Recommendation {
                    value,
                    basis: Basis::LocalVote,
                    support,
                    voters: total,
                };
            }
            self.global_chain(pc, KeyRef::Wide(&key), exclude())
        }
    }

    /// Local recommendation for a pair-wise parameter on an existing
    /// directed pair: vote among matching pairs sourced at the carrier
    /// itself (its other relations) and at its `hops`-hop neighbors.
    pub fn recommend_local_pair(
        &self,
        snapshot: &NetworkSnapshot,
        param: ParamId,
        pair: PairIdx,
        loo: bool,
    ) -> Recommendation {
        debug_assert_eq!(snapshot.catalog.def(param).kind, ParamKind::Pairwise);
        let pc = self.param(param);
        let (j, k) = snapshot.x2.pair(pair);
        let exclude = || loo.then(|| snapshot.config.pair_value(param, pair));
        if pc.codec.fits_u128() {
            let col = pc.keys.pairs();
            let key = match col {
                Some(col) => col[pair as usize],
                None => pc.packed_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs),
            };
            // Candidate pairs are sourced at `j` and its neighborhood;
            // their keys come straight off the pair column, so the scan
            // allocates nothing (the old path rebuilt a `sources` vector
            // and projected two attribute vectors per candidate).
            let mut table = FreqTable::new();
            let mut scan_source = |src: CarrierId| {
                for q in snapshot.x2.pairs_from(src) {
                    if q == pair {
                        continue; // never vote for ourselves
                    }
                    let qkey = match col {
                        Some(col) => col[q as usize],
                        None => {
                            let (a, b) = snapshot.x2.pair(q);
                            pc.packed_for_pair(
                                &snapshot.carrier(a).attrs,
                                &snapshot.carrier(b).attrs,
                            )
                        }
                    };
                    if qkey == key {
                        table.add(snapshot.config.pair_value(param, q));
                    }
                }
            };
            scan_source(j);
            if self.config.hops == 1 {
                for &n in snapshot.x2.neighbors(j) {
                    scan_source(n);
                }
            } else {
                for n in snapshot.x2.k_hop_neighbors(j, self.config.hops) {
                    scan_source(n);
                }
            }
            if let Some((value, support, total)) =
                table.majority_with_support_excluding(None, self.config.support)
            {
                self.obs.inc("cf.rec.basis.local_vote");
                self.obs
                    .observe("cf.rec.support.local_vote", support as u64);
                return Recommendation {
                    value,
                    basis: Basis::LocalVote,
                    support,
                    voters: total,
                };
            }
            self.global_chain(pc, KeyRef::Packed(key), exclude())
        } else {
            let key = pc.key_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs);
            let mut table = FreqTable::new();
            let mut scan_source = |src: CarrierId| {
                for q in snapshot.x2.pairs_from(src) {
                    if q == pair {
                        continue; // never vote for ourselves
                    }
                    let (a, b) = snapshot.x2.pair(q);
                    let qkey =
                        pc.key_for_pair(&snapshot.carrier(a).attrs, &snapshot.carrier(b).attrs);
                    if qkey == key {
                        table.add(snapshot.config.pair_value(param, q));
                    }
                }
            };
            scan_source(j);
            for n in snapshot.x2.k_hop_neighbors(j, self.config.hops) {
                scan_source(n);
            }
            if let Some((value, support, total)) =
                table.majority_with_support_excluding(None, self.config.support)
            {
                self.obs.inc("cf.rec.basis.local_vote");
                self.obs
                    .observe("cf.rec.support.local_vote", support as u64);
                return Recommendation {
                    value,
                    basis: Basis::LocalVote,
                    support,
                    voters: total,
                };
            }
            self.global_chain(pc, KeyRef::Wide(&key), exclude())
        }
    }
}

/// Runs `job(i)` for `i in 0..n` on a work-stealing thread pool and
/// returns the results in index order. Workers claim indices off a shared
/// atomic counter, so unevenly sized jobs balance themselves; the output
/// is independent of the schedule.
pub(crate) fn parallel_map<T, F>(n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, None, job)
}

/// The worker-thread count [`CfModel::fit`] actually uses for `n_jobs`
/// parallel jobs — exposed so benchmarks can report the real pool width
/// instead of guessing from `available_parallelism`.
pub fn fit_worker_threads(n_jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4)
        .min(n_jobs.max(1))
}

/// [`parallel_map`] with an explicit thread override (`None` = machine
/// default).
pub(crate) fn parallel_map_with<T, F>(n: usize, threads: Option<usize>, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n_threads = threads
        .unwrap_or_else(|| fit_worker_threads(n))
        .clamp(1, n.max(1));
    if n_threads <= 1 {
        return (0..n).map(job).collect();
    }
    // Pre-sized slot assembly: each worker writes its result straight into
    // `slots[i]`. The claim off the atomic counter hands index `i` to
    // exactly one worker, so every slot is written at most once and there
    // is no post-join sort or per-worker `(index, value)` staging vector.
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    struct SlotWriter<T>(*mut Option<T>);
    // SAFETY: workers write disjoint slots (each index is claimed by one
    // worker) and the writes happen-before the scope join below.
    unsafe impl<T: Send> Sync for SlotWriter<T> {}
    let writer = SlotWriter(slots.as_mut_ptr());
    let writer = &writer;
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..n_threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = job(i);
                // SAFETY: `i < n` and this worker is the only one that
                // claimed `i`.
                unsafe { writer.0.add(i).write(Some(value)) };
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("claimed slot written"))
        .collect()
}

/// Packs the full-fleet key column of a `(kind, dependent)` layout from
/// the arena's attribute columns. Element `t`'s key is exactly
/// `packed_for_carrier` / `packed_for_pair` of target `t` — the arena
/// holds the same levels as the carrier structs, column-major.
fn pack_key_column(
    arena: &AttrArena,
    codec: &PackedKeyCodec,
    dependent: &[PredictorAttr],
    kind: ParamKind,
) -> Vec<u128> {
    let cols: Vec<&[AttrValue]> = dependent.iter().map(|pa| arena.column(pa.attr)).collect();
    match kind {
        ParamKind::Singular => (0..arena.n_carriers())
            .map(|c| codec.pack_with(|i| cols[i][c]))
            .collect(),
        ParamKind::Pairwise => {
            // Per-position endpoint column: Src positions index through
            // pair_src, Dst through pair_dst.
            let ends: Vec<&[u32]> = dependent
                .iter()
                .map(|pa| match pa.side {
                    Side::Src => arena.pair_src(),
                    Side::Dst => arena.pair_dst(),
                })
                .collect();
            (0..arena.n_pairs())
                .map(|p| codec.pack_with(|i| cols[i][ends[i][p] as usize]))
                .collect()
        }
    }
}

/// Dependency selection for one parameter, honoring the configured
/// selection flavor.
fn select_dependent(
    snapshot: &NetworkSnapshot,
    arena: &AttrArena,
    scope: &Scope,
    param: ParamId,
    config: &CfConfig,
    obs: &Recorder,
) -> Vec<PredictorAttr> {
    if config.marginal_selection {
        crate::dependency::select_dependent_marginal_with_obs_in(
            arena,
            snapshot,
            scope,
            param,
            config.alpha,
            obs,
        )
    } else {
        crate::dependency::select_dependent_with_obs_in(
            arena,
            snapshot,
            scope,
            param,
            config.alpha,
            obs,
        )
    }
}

/// The `(param, value)` slot of a removed-target record.
fn value_for(values: &[(ParamId, ValueIdx)], param: ParamId) -> ValueIdx {
    values
        .iter()
        .find(|(p, _)| *p == param)
        .map(|(_, v)| *v)
        .expect("removal records carry every parameter of their kind")
}

/// Brings one parameter's key column up to date with the post-batch
/// arena, doing the least possible work:
///
/// * shape unchanged → the old column is still exact, keep it;
/// * carrier column → splice: survivors keep indices `0..min(before,
///   after)` (removes pop from the tail, adds append), so only the tail
///   is packed fresh;
/// * pair column → scatter the survivors through the batch's remap and
///   pack only the batch-born pairs;
/// * no old column (deserialized model) → full pack.
///
/// Built columns go through the cache, so parameters sharing a layout —
/// and, with a [`SharedKeyColumns`] passed in, per-market models
/// absorbing the same batch — splice once and share the `Arc`.
#[allow(clippy::too_many_arguments)]
fn refresh_key_column(
    pc: &mut ParamCf,
    kind: ParamKind,
    arena: &AttrArena,
    cache: &KeyColumnCache,
    carriers_changed: bool,
    pairs_changed: bool,
    remap: Option<&Vec<Option<PairIdx>>>,
    added_pairs_all: &[PairIdx],
) {
    if !pc.codec.fits_u128() {
        return; // wide layouts never carry columns
    }
    match kind {
        ParamKind::Singular => {
            let old = match &pc.keys {
                KeyColumn::Carrier(col) => Some(Arc::clone(col)),
                _ => None,
            };
            if old.is_some() && !carriers_changed {
                return;
            }
            let n_after = arena.n_carriers();
            let col = cache.get_or_build(kind, &pc.dependent, || match &old {
                Some(old) => {
                    let keep = old.len().min(n_after);
                    let mut v = Vec::with_capacity(n_after);
                    v.extend_from_slice(&old[..keep]);
                    let cols: Vec<&[AttrValue]> = pc
                        .dependent
                        .iter()
                        .map(|pa| arena.column(pa.attr))
                        .collect();
                    v.extend((keep..n_after).map(|c| pc.codec.pack_with(|i| cols[i][c])));
                    v
                }
                None => pack_key_column(arena, &pc.codec, &pc.dependent, kind),
            });
            pc.keys = KeyColumn::Carrier(col);
        }
        ParamKind::Pairwise => {
            let old = match &pc.keys {
                KeyColumn::Pair(col) => Some(Arc::clone(col)),
                _ => None,
            };
            if old.is_some() && !pairs_changed {
                return;
            }
            let n_pairs_after = arena.n_pairs();
            let col = cache.get_or_build(kind, &pc.dependent, || match (&old, remap) {
                (Some(old), Some(map)) => {
                    debug_assert_eq!(old.len(), map.len(), "remap covers the pre-batch pairs");
                    let mut v = vec![0u128; n_pairs_after];
                    for (q_old, slot) in map.iter().enumerate() {
                        if let Some(q_new) = slot {
                            v[*q_new as usize] = old[q_old];
                        }
                    }
                    let cols: Vec<&[AttrValue]> = pc
                        .dependent
                        .iter()
                        .map(|pa| arena.column(pa.attr))
                        .collect();
                    let ends: Vec<&[u32]> = pc
                        .dependent
                        .iter()
                        .map(|pa| match pa.side {
                            Side::Src => arena.pair_src(),
                            Side::Dst => arena.pair_dst(),
                        })
                        .collect();
                    for &q in added_pairs_all {
                        v[q as usize] = pc
                            .codec
                            .pack_with(|i| cols[i][ends[i][q as usize] as usize]);
                    }
                    v
                }
                _ => pack_key_column(arena, &pc.codec, &pc.dependent, kind),
            });
            pc.keys = KeyColumn::Pair(col);
        }
    }
}

/// Fits one parameter: dependency selection, key-layout construction,
/// key-column materialization (through the shared arena and cache), then
/// vote-table construction.
fn fit_param(
    snapshot: &NetworkSnapshot,
    arena: &AttrArena,
    cache: &KeyColumnCache,
    scope: &Scope,
    param: ParamId,
    config: &CfConfig,
    obs: &Recorder,
) -> ParamCf {
    let span = obs.span("cf.fit/param");
    let dep_span = span.child("dependency");
    let dependent = select_dependent(snapshot, arena, scope, param, config, obs);
    dep_span.close();
    let pc = fit_param_with_dependent(snapshot, arena, cache, scope, param, dependent);
    obs.inc("cf.fit.params");
    obs.add("cf.fit.groups", pc.tables.n_groups() as u64);
    obs.observe("cf.fit.dependent_attrs", pc.dependent.len() as u64);
    drop(span);
    pc
}

/// The build half of [`fit_param`]: key layout, key column (through the
/// shared arena and cache), and vote tables for an already-selected
/// dependent set. The incremental fit calls this directly when a delta
/// batch changed a parameter's dependency selection.
fn fit_param_with_dependent(
    snapshot: &NetworkSnapshot,
    arena: &AttrArena,
    cache: &KeyColumnCache,
    scope: &Scope,
    param: ParamId,
    dependent: Vec<PredictorAttr>,
) -> ParamCf {
    let def = snapshot.catalog.def(param);
    let cards: Vec<u16> = dependent
        .iter()
        .map(|pa| snapshot.schema.radix(pa.attr))
        .collect();
    let codec = PackedKeyCodec::new(&cards);
    let packed = codec.fits_u128();
    let mut pc = ParamCf {
        param,
        dependent,
        codec,
        tables: if packed {
            VoteTables::new()
        } else {
            VoteTables::new_wide()
        },
        default: def.default,
        keys: KeyColumn::None,
    };
    // Only the full-key tables are built: prefix (backoff) groups are
    // contiguous runs of the frozen sorted groups and aggregate on
    // demand, so materializing a table per observation per level — the
    // paper-scale RSS cliff — buys nothing.
    if packed {
        // Column over the whole snapshot (not just the scope): local
        // voting consults out-of-scope neighbors too. Built from the
        // shared arena columns — or shared outright with another
        // parameter that selected the same dependent set.
        let col = cache.get_or_build(def.kind, &pc.dependent, || {
            pack_key_column(arena, &pc.codec, &pc.dependent, def.kind)
        });
        // The tables were just built packed, so a shape mismatch is
        // impossible by construction.
        match def.kind {
            ParamKind::Singular => {
                for &c in &scope.carriers {
                    pc.tables
                        .add_packed(col[c.index()], snapshot.config.value(param, c))
                        .expect("tables built packed");
                }
                pc.keys = KeyColumn::Carrier(col);
            }
            ParamKind::Pairwise => {
                for &q in &scope.pairs {
                    pc.tables
                        .add_packed(col[q as usize], snapshot.config.pair_value(param, q))
                        .expect("tables built packed");
                }
                pc.keys = KeyColumn::Pair(col);
            }
        }
    } else {
        match def.kind {
            ParamKind::Singular => {
                for &c in &scope.carriers {
                    let key = pc.key_for_carrier(&snapshot.carrier(c).attrs);
                    pc.tables
                        .add_wide(&key, snapshot.config.value(param, c))
                        .expect("tables built wide");
                }
            }
            ParamKind::Pairwise => {
                for &q in &scope.pairs {
                    let (j, k) = snapshot.x2.pair(q);
                    let key =
                        pc.key_for_pair(&snapshot.carrier(j).attrs, &snapshot.carrier(k).attrs);
                    pc.tables
                        .add_wide(&key, snapshot.config.pair_value(param, q))
                        .expect("tables built wide");
                }
            }
        }
    }
    pc.tables.freeze();
    pc
}

/// The stable wire format for the fitted parameters: group keys leave the
/// process unpacked and sorted, exactly like the pre-packing layout, with
/// the key-layout cardinalities carried alongside so deserialization can
/// rebuild the packed representation.
mod model_serde {
    use super::*;
    use serde::{Deserializer, Serializer};

    #[derive(Serialize, Deserialize)]
    struct TablesWire {
        /// Sorted `(unpacked key, table)` pairs.
        groups: Vec<(VoteKey, FreqTable)>,
        overall: FreqTable,
    }

    #[derive(Serialize, Deserialize)]
    struct ParamWire {
        param: ParamId,
        dependent: Vec<PredictorAttr>,
        /// Per-position cardinalities of the key layout.
        cards: Vec<u16>,
        tables: TablesWire,
        prefix_tables: Vec<TablesWire>,
        default: ValueIdx,
    }

    fn to_wire(tables: &VoteTables, codec: &PackedKeyCodec, len: usize) -> TablesWire {
        TablesWire {
            groups: tables
                .unpacked_groups(codec, len)
                .into_iter()
                .map(|(k, t)| (k, t.clone()))
                .collect(),
            overall: tables.overall().clone(),
        }
    }

    pub fn serialize<S: Serializer>(params: &[ParamCf], ser: S) -> Result<S::Ok, S::Error> {
        let wires: Vec<ParamWire> = params
            .iter()
            .map(|pc| ParamWire {
                param: pc.param,
                dependent: pc.dependent.clone(),
                cards: pc.codec.cards().to_vec(),
                tables: to_wire(&pc.tables, &pc.codec, pc.dependent.len()),
                // The per-level backoff tables are no longer materialized
                // in memory; the wire format still carries them (derived
                // by merging the full-key groups per prefix — every
                // level's overall distribution equals the full table's),
                // so serialized models are byte-identical to the era that
                // stored them eagerly. Transiently allocates the merged
                // level tables — fine at evaluation scales; a paper-scale
                // model is never serialized.
                prefix_tables: (0..pc.dependent.len())
                    .map(|l| TablesWire {
                        groups: pc
                            .tables
                            .unpacked_prefix_groups(&pc.codec, pc.dependent.len(), l),
                        overall: pc.tables.overall().clone(),
                    })
                    .collect(),
                default: pc.default,
            })
            .collect();
        wires.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<Vec<ParamCf>, D::Error> {
        use serde::Error as _;
        let wires: Vec<ParamWire> = Vec::deserialize(de)?;
        wires
            .into_iter()
            .map(|w| {
                // The layout has one position per dependent attribute; a
                // mismatch means the file was corrupted, and every probe
                // key built from the dependency list would be the wrong
                // width for the stored groups.
                if w.cards.len() != w.dependent.len() {
                    return Err(D::Error::custom(format!(
                        "param {:?}: {} layout cards for {} dependent attributes",
                        w.param,
                        w.cards.len(),
                        w.dependent.len()
                    )));
                }
                let codec = PackedKeyCodec::new(&w.cards);
                // The overall table must be the merge of the group tables
                // (both accumulate exactly the recorded observations).
                // Leave-one-out exclusion subtracts a voter's count from
                // both, so a drifted overall would underflow or trip the
                // majority arithmetic deep in the recommendation chain.
                let mut merged = FreqTable::new();
                for (_, t) in &w.tables.groups {
                    merged.merge(t);
                }
                if merged != w.tables.overall {
                    return Err(D::Error::custom(format!(
                        "param {:?}: overall table is not the merge of its groups",
                        w.param
                    )));
                }
                // `w.prefix_tables` is parsed for wire compatibility but
                // not kept: backoff aggregates the full-key groups on
                // demand, so the levels carry no information the full
                // tables don't.
                let tables =
                    VoteTables::from_unpacked_groups(&codec, w.tables.groups, w.tables.overall)
                        .map_err(|e| D::Error::custom(format!("param {:?}: {e}", w.param)))?;
                Ok(ParamCf {
                    param: w.param,
                    dependent: w.dependent,
                    codec,
                    tables,
                    default: w.default,
                    keys: KeyColumn::None,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auric_netgen::{generate, NetScale, TuningKnobs};

    fn fitted() -> (auric_netgen::GeneratedNetwork, CfModel) {
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let scope = Scope::whole(&net.snapshot);
        let model = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        (net, model)
    }

    #[test]
    fn fit_covers_every_parameter() {
        let (net, model) = fitted();
        assert_eq!(model.params().len(), net.snapshot.catalog.len());
        for pc in model.params() {
            assert!(pc.tables.total() > 0, "{} has no observations", pc.param);
        }
    }

    #[test]
    fn clean_network_global_loo_is_nearly_perfect() {
        // Without tuning noise, every value is a function of attributes,
        // so exact-match voting with LoO must recover almost everything
        // (losses only where a group is a singleton).
        let (net, model) = fitted();
        let snap = &net.snapshot;
        let mut hit = 0usize;
        let mut total = 0usize;
        for p in snap.catalog.singular_ids() {
            let pc = model.param(p);
            for c in &snap.carriers {
                let key = pc.key_for_carrier(&c.attrs);
                let current = snap.config.value(p, c.id);
                let rec = model.recommend_global(p, &key, Some(current));
                total += 1;
                hit += usize::from(rec.value == current);
            }
        }
        let acc = hit as f64 / total as f64;
        assert!(acc > 0.93, "clean-network LoO accuracy {acc}");
    }

    #[test]
    fn carrier_entry_points_agree_with_the_unpacked_key_form() {
        // recommend_global_for_carrier (column fast path) must equal
        // recommend_global over the unpacked key, for fitted and for
        // deserialized (column-less) models alike.
        let (net, model) = fitted();
        let snap = &net.snapshot;
        let json = serde_json::to_string(&model).expect("serialize");
        let thawed: CfModel = serde_json::from_str(&json).expect("deserialize");
        for p in snap.catalog.singular_ids() {
            let pc = model.param(p);
            for c in snap.carriers.iter().step_by(7) {
                let key = pc.key_for_carrier(&c.attrs);
                let current = snap.config.value(p, c.id);
                let via_key = model.recommend_global(p, &key, Some(current));
                assert_eq!(
                    model.recommend_global_for_carrier(snap, p, c.id, Some(current)),
                    via_key
                );
                assert_eq!(
                    thawed.recommend_global_for_carrier(snap, p, c.id, Some(current)),
                    via_key
                );
            }
        }
        for p in snap.catalog.pairwise_ids().take(3) {
            let pc = model.param(p);
            for q in (0..snap.x2.n_pairs() as u32).step_by(13) {
                let (j, k) = snap.x2.pair(q);
                let key = pc.key_for_pair(&snap.carrier(j).attrs, &snap.carrier(k).attrs);
                let current = snap.config.pair_value(p, q);
                let via_key = model.recommend_global(p, &key, Some(current));
                assert_eq!(
                    model.recommend_global_for_pair(snap, p, q, Some(current)),
                    via_key
                );
                assert_eq!(
                    thawed.recommend_global_for_pair(snap, p, q, Some(current)),
                    via_key
                );
            }
        }
    }

    #[test]
    fn local_learner_recovers_pockets() {
        // Plant aggressive pockets; the local learner must beat the global
        // one on pocketed slots.
        let knobs = TuningKnobs {
            pocket_prob: 1.0,
            max_pockets: 6,
            params_per_pocket: (20, 40),
            pocket_radius_km: (3.0, 8.0),
            hidden_pocket_frac: 0.5,
            ..TuningKnobs::none()
        };
        let net = generate(
            &NetScale {
                n_markets: 2,
                enbs_per_market: 14,
                seed: 11,
            },
            &knobs,
        );
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let mut local_hit = 0usize;
        let mut global_hit = 0usize;
        let mut pocket_slots = 0usize;
        for p in snap.catalog.singular_ids() {
            let pc = model.param(p);
            for c in &snap.carriers {
                if !matches!(
                    snap.config.provenance(p, c.id),
                    auric_model::Provenance::Pocket { .. }
                ) {
                    continue;
                }
                pocket_slots += 1;
                let current = snap.config.value(p, c.id);
                let local = model.recommend_local_singular(snap, p, c.id, true);
                let global =
                    model.recommend_global(p, &pc.key_for_carrier(&c.attrs), Some(current));
                local_hit += usize::from(local.value == current);
                global_hit += usize::from(global.value == current);
            }
        }
        assert!(
            pocket_slots > 50,
            "need pocketed slots to compare ({pocket_slots})"
        );
        assert!(
            local_hit > global_hit,
            "local {local_hit} vs global {global_hit} on {pocket_slots} pocket slots"
        );
    }

    #[test]
    fn pairwise_recommendations_work() {
        let (net, model) = fitted();
        let snap = &net.snapshot;
        let p = snap.catalog.pairwise_ids().next().unwrap();
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..snap.x2.n_pairs().min(500) as u32 {
            let current = snap.config.pair_value(p, q);
            let rec = model.recommend_local_pair(snap, p, q, true);
            total += 1;
            hit += usize::from(rec.value == current);
        }
        assert!(total > 0);
        assert!(
            hit as f64 / total as f64 > 0.8,
            "pairwise local accuracy {}/{total}",
            hit
        );
    }

    #[test]
    fn fallback_chain_reaches_default_on_unseen_keys() {
        let (net, model) = fitted();
        let snap = &net.snapshot;
        let p = snap.catalog.singular_ids().next().unwrap();
        let pc = model.param(p);
        // A key that cannot exist (levels past every cardinality; they
        // collapse to the reserved sentinel, which no recorded key holds).
        let bogus: Vec<u16> = pc.dependent.iter().map(|_| u16::MAX).collect();
        let rec = model.recommend_global(p, &bogus, None);
        assert!(
            matches!(rec.basis, Basis::GlobalMajority | Basis::Default),
            "unseen key must not produce a group vote: {rec:?}"
        );
    }

    #[test]
    fn backoff_resolves_rare_combinations_from_ancestor_groups() {
        // Construct a parameter state by hand: key = (attr0, attr1), a
        // big group at (0, 0) and a singleton at (0, 9). Excluding the
        // singleton's own value empties its group; backoff must answer
        // from the (0,) prefix instead of the scope-wide table.
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        // Find a parameter with >= 2 dependent attributes and probe a
        // synthetic key whose full combination was never observed but
        // whose first-attribute prefix was.
        for pc in model.params() {
            if pc.dependent.len() < 2 {
                continue;
            }
            // Take an existing key and mutate its last component to an
            // unseen level.
            let some_key = match snap.catalog.def(pc.param).kind {
                auric_model::ParamKind::Singular => {
                    pc.key_for_carrier(&snap.carrier(CarrierId(0)).attrs)
                }
                _ => continue,
            };
            let mut probe = some_key.clone();
            *probe.last_mut().unwrap() = u16::MAX; // impossible level
            let rec = model.recommend_global(pc.param, &probe, None);
            assert!(
                matches!(rec.basis, Basis::GroupMajority),
                "unseen last component should back off to an ancestor group, got {rec:?}"
            );
            assert!(rec.voters > 0, "backoff answers carry evidence");
            return;
        }
        panic!("no suitable multi-attribute parameter found");
    }

    #[test]
    fn serde_round_trips_the_fitted_model() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let snap = &net.snapshot;
        let scope = Scope::whole(snap);
        let model = CfModel::fit(snap, &scope, CfConfig::default());
        let json = serde_json::to_string(&model).expect("serialize");
        let back: CfModel = serde_json::from_str(&json).expect("deserialize");
        // Same recommendations after the round trip.
        for p in snap.catalog.singular_ids().take(5) {
            for i in (0..snap.n_carriers()).step_by(17) {
                let c = CarrierId::from_index(i);
                let a = model.recommend_local_singular(snap, p, c, true);
                let b = back.recommend_local_singular(snap, p, c, true);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn key_column_cache_survives_a_poisoned_lock() {
        // A fit worker that panics (injected serving faults) can die while
        // holding the cache's entries lock. The map is only mutated
        // between complete `entry` calls, so the poison carries no torn
        // state — later fits through the same cache must keep working,
        // not panic forever on `lock().unwrap()`.
        let net = generate(&NetScale::tiny(), &TuningKnobs::none());
        let scope = Scope::whole(&net.snapshot);
        let cache = SharedKeyColumns::new();
        let first = CfModel::fit_with(
            &net.snapshot,
            &scope,
            CfConfig::default(),
            FitOptions {
                key_cache: Some(cache.clone()),
                ..FitOptions::default()
            },
        );
        let built_before = cache.built();
        assert!(built_before > 0, "first fit populated the cache");
        let c2 = cache.clone();
        std::thread::spawn(move || {
            let _guard = c2.0.entries.lock().unwrap();
            panic!("injected fault while holding the cache lock");
        })
        .join()
        .expect_err("the poisoning thread panics");
        let second = CfModel::fit_with(
            &net.snapshot,
            &scope,
            CfConfig::default(),
            FitOptions {
                key_cache: Some(cache.clone()),
                ..FitOptions::default()
            },
        );
        // The poisoned lock neither panicked nor invalidated the cache:
        // the second fit shared every column instead of rebuilding.
        assert_eq!(cache.built(), built_before);
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap()
        );
    }

    #[test]
    fn wire_format_keeps_groups_as_sorted_unpacked_pairs() {
        // The on-disk JSON must expose group keys as attribute-level
        // arrays (sorted), not packed integers.
        let (net, model) = fitted();
        let json = serde_json::to_string(&model).expect("serialize");
        let value: serde_json::Value = serde_json::from_str(&json).expect("parse");
        let params = value["params"].as_array().expect("params array");
        assert_eq!(params.len(), net.snapshot.catalog.len());
        let mut saw_nonempty_key = false;
        for p in params {
            let n_dep = p["dependent"].as_array().expect("dependent").len();
            assert_eq!(p["cards"].as_array().expect("cards").len(), n_dep);
            let groups = p["tables"]["groups"].as_array().expect("groups");
            let mut prev: Option<Vec<u64>> = None;
            for pair in groups {
                let entry = pair.as_array().expect("pair");
                let key: Vec<u64> = entry[0]
                    .as_array()
                    .expect("unpacked key array")
                    .iter()
                    .map(|v| v.as_u64().expect("level"))
                    .collect();
                assert_eq!(key.len(), n_dep, "key length matches dependency count");
                saw_nonempty_key |= !key.is_empty();
                if let Some(prev) = &prev {
                    assert!(prev < &key, "groups sorted by unpacked key");
                }
                prev = Some(key);
            }
        }
        assert!(saw_nonempty_key, "expected at least one non-trivial key");
    }

    #[test]
    fn fit_is_deterministic_despite_parallelism() {
        let net = generate(&NetScale::tiny(), &TuningKnobs::default());
        let scope = Scope::whole(&net.snapshot);
        let a = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        let b = CfModel::fit(&net.snapshot, &scope, CfConfig::default());
        for (x, y) in a.params().iter().zip(b.params()) {
            assert_eq!(x.dependent, y.dependent);
            assert_eq!(x.tables, y.tables);
        }
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let out = parallel_map(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
        assert_eq!(parallel_map(0, |i| i), Vec::<usize>::new());
    }

    mod keycol_proptests {
        //! Differential proptests: for any random `(kind, dependent)`
        //! layout, the column the shared cache hands out equals a
        //! per-target recompute straight from the carrier structs, and a
        //! repeat request aliases the same physical `Arc`.

        use super::*;
        use auric_model::AttrId;
        use proptest::prelude::*;

        fn shared_net() -> &'static auric_netgen::GeneratedNetwork {
            static NET: std::sync::OnceLock<auric_netgen::GeneratedNetwork> =
                std::sync::OnceLock::new();
            NET.get_or_init(|| generate(&NetScale::tiny(), &TuningKnobs::default()))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn cached_columns_equal_fresh_packs(
                spec in collection::vec((0usize..1024, 0u8..2), 1..7),
                pairwise in 0u8..2,
            ) {
                let net = shared_net();
                let snap = &net.snapshot;
                let arena = AttrArena::from_snapshot(snap);
                let attrs: Vec<AttrId> = snap.schema.attr_ids().collect();
                let kind = if pairwise == 1 {
                    ParamKind::Pairwise
                } else {
                    ParamKind::Singular
                };
                let dependent: Vec<PredictorAttr> = spec
                    .iter()
                    .map(|&(a, s)| PredictorAttr {
                        attr: attrs[a % attrs.len()],
                        side: if matches!(kind, ParamKind::Pairwise) && s == 1 {
                            Side::Dst
                        } else {
                            Side::Src
                        },
                    })
                    .collect();
                let cards: Vec<u16> = dependent
                    .iter()
                    .map(|pa| snap.schema.radix(pa.attr))
                    .collect();
                let codec = PackedKeyCodec::new(&cards);
                if !codec.fits_u128() {
                    // Wide layouts never reach the column cache.
                    return Ok(());
                }
                let cache = KeyColumnCache::default();
                let col = cache.get_or_build(kind, &dependent, || {
                    pack_key_column(&arena, &codec, &dependent, kind)
                });
                match kind {
                    ParamKind::Singular => {
                        prop_assert_eq!(col.len(), snap.n_carriers());
                        for (t, c) in snap.carriers.iter().enumerate() {
                            let fresh = codec.pack_with(|i| c.attrs.get(dependent[i].attr));
                            prop_assert_eq!(col[t], fresh, "carrier {} diverges", t);
                        }
                    }
                    ParamKind::Pairwise => {
                        prop_assert_eq!(col.len(), snap.x2.n_pairs());
                        for q in 0..snap.x2.n_pairs() as u32 {
                            let (j, k) = snap.x2.pair(q);
                            let fresh = codec.pack_with(|i| {
                                let pa = dependent[i];
                                match pa.side {
                                    Side::Src => snap.carrier(j).attrs.get(pa.attr),
                                    Side::Dst => snap.carrier(k).attrs.get(pa.attr),
                                }
                            });
                            prop_assert_eq!(col[q as usize], fresh, "pair {} diverges", q);
                        }
                    }
                }
                let again =
                    cache.get_or_build(kind, &dependent, || panic!("column must be cached"));
                prop_assert!(Arc::ptr_eq(&col, &again), "repeat request must alias");
                prop_assert_eq!(cache.built.load(Ordering::Relaxed), 1);
                prop_assert_eq!(cache.shared.load(Ordering::Relaxed), 1);
            }
        }
    }
}
