//! The voting recommender: exact-match groups over dependent attributes,
//! with a support threshold (§3.2: "amongst the similar carriers, we take
//! a voting approach ... We use a threshold of 75%").

use auric_model::{AttrValue, ValueIdx};
use auric_stats::freq::FreqTable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A group key: the target's levels on the dependent attributes, in the
/// dependency list's order.
pub type VoteKey = Vec<AttrValue>;

/// Per-parameter vote tables: one frequency table per dependent-attribute
/// combination, plus the scope-wide distribution for fallback and
/// diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoteTables {
    /// Serialized as `(key, table)` pairs (JSON map keys must be strings).
    #[serde(with = "groups_serde")]
    groups: HashMap<VoteKey, FreqTable>,
    overall: FreqTable,
}

/// Vec-of-pairs (de)serialization for the group map.
mod groups_serde {
    use super::VoteKey;
    use auric_stats::freq::FreqTable;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    pub fn serialize<S: Serializer>(
        map: &HashMap<VoteKey, FreqTable>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let mut pairs: Vec<(&VoteKey, &FreqTable)> = map.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        pairs.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<HashMap<VoteKey, FreqTable>, D::Error> {
        let pairs: Vec<(VoteKey, FreqTable)> = Vec::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

impl VoteTables {
    /// An empty table set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value` under `key`.
    pub fn add(&mut self, key: VoteKey, value: ValueIdx) {
        self.groups.entry(key).or_default().add(value);
        self.overall.add(value);
    }

    /// Number of distinct groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.overall.total()
    }

    /// The group table for `key`, if any carrier matched it.
    pub fn group(&self, key: &[AttrValue]) -> Option<&FreqTable> {
        self.groups.get(key)
    }

    /// The scope-wide value distribution.
    pub fn overall(&self) -> &FreqTable {
        &self.overall
    }

    /// Votes within `key`'s group at `threshold` support, leave-one-out
    /// excluding one observation of `exclude` (the probe carrier's own
    /// current value during evaluation; `None` for genuinely new
    /// carriers). Returns `(value, support, voters)`.
    pub fn vote(
        &self,
        key: &[AttrValue],
        exclude: Option<ValueIdx>,
        threshold: f64,
    ) -> Option<(ValueIdx, usize, usize)> {
        self.groups
            .get(key)?
            .majority_with_support_excluding(exclude, threshold)
    }

    /// The group's plurality value (no threshold), leave-one-out — the
    /// "maximum support" answer when no value clears the confidence
    /// threshold.
    pub fn group_majority(
        &self,
        key: &[AttrValue],
        exclude: Option<ValueIdx>,
    ) -> Option<(ValueIdx, usize, usize)> {
        self.groups
            .get(key)?
            .majority_with_support_excluding(exclude, 0.0)
    }

    /// Scope-wide majority (no threshold), leave-one-out — the last-resort
    /// data-driven fallback before the rule-book default.
    pub fn overall_majority(&self, exclude: Option<ValueIdx>) -> Option<ValueIdx> {
        self.overall
            .majority_with_support_excluding(exclude, 0.0)
            .map(|(v, _, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> VoteTables {
        let mut t = VoteTables::new();
        for _ in 0..8 {
            t.add(vec![0, 1], 10);
        }
        t.add(vec![0, 1], 20);
        for _ in 0..3 {
            t.add(vec![2, 2], 30);
        }
        t
    }

    #[test]
    fn groups_are_keyed_exactly() {
        let t = tables();
        assert_eq!(t.n_groups(), 2);
        assert_eq!(t.total(), 12);
        assert!(t.group(&[0, 1]).is_some());
        assert!(t.group(&[1, 0]).is_none(), "key order matters");
    }

    #[test]
    fn vote_applies_threshold() {
        let t = tables();
        // 8/9 ≈ 89% support for 10.
        assert_eq!(t.vote(&[0, 1], None, 0.75), Some((10, 8, 9)));
        assert_eq!(t.vote(&[0, 1], None, 0.95), None);
        // Unknown key: no group to vote in.
        assert_eq!(t.vote(&[9, 9], None, 0.5), None);
    }

    #[test]
    fn leave_one_out_changes_the_outcome_at_the_margin() {
        let mut t = VoteTables::new();
        for _ in 0..3 {
            t.add(vec![1], 5);
        }
        t.add(vec![1], 7);
        // Probing the carrier that holds the 7: remaining 3×5 → 100%.
        assert_eq!(t.vote(&[1], Some(7), 0.75), Some((5, 3, 3)));
        // Probing a 5-holder: 2×5 + 1×7 → 2/3 < 75%.
        assert_eq!(t.vote(&[1], Some(5), 0.75), None);
    }

    #[test]
    fn overall_majority_fallback() {
        let t = tables();
        assert_eq!(t.overall_majority(None), Some(10));
        // Excluding doesn't flip a clear majority.
        assert_eq!(t.overall_majority(Some(10)), Some(10));
    }

    #[test]
    fn empty_key_group_is_the_whole_scope() {
        // With no dependent attributes, every observation lands in the
        // empty-key group — voting degenerates to a scope-wide majority
        // with threshold, which is the intended rule-book-like behavior.
        let mut t = VoteTables::new();
        for _ in 0..9 {
            t.add(vec![], 4);
        }
        t.add(vec![], 6);
        assert_eq!(t.vote(&[], None, 0.75), Some((4, 9, 10)));
    }
}
