//! The voting recommender: exact-match groups over dependent attributes,
//! with a support threshold (§3.2: "amongst the similar carriers, we take
//! a voting approach ... We use a threshold of 75%").
//!
//! Group keys are stored *packed*: the dependent attribute levels of one
//! target are laid out as bit fields of a single `u128` (see
//! [`auric_stats::packed::PackedKeyCodec`]), so group lookups hash and
//! compare one integer instead of a heap-allocated `Vec<u16>`. Layouts
//! wider than 128 bits (unreachable under the Table-1 schema, whose worst
//! pairwise layout is ~94 bits) fall back to boxed unpacked keys with
//! identical semantics.
//!
//! Storage has two phases. During a fit, observations accumulate into a
//! hash map. [`VoteTables::freeze`] then converts the map into a `Vec`
//! sorted by packed key — the codec packs position 0 into the top bits,
//! so integer order is lexicographic order and every *prefix* group is a
//! contiguous run of full-key groups, nested across prefix lengths.
//! Hierarchical backoff therefore needs no materialized per-level tables
//! (at paper scale those held one entry per observed prefix per level —
//! tens of gigabytes): [`VoteTables::prefix_aggregate`] binary-searches
//! the run and merges it on demand, which is rare — backoff only runs
//! when a full-key group is empty after leave-one-out exclusion.

use auric_model::{AttrValue, ValueIdx};
use auric_stats::freq::FreqTable;
use auric_stats::packed::{FastHash, PackedKeyCodec};
use std::collections::HashMap;

/// An unpacked group key: the target's levels on the dependent attributes,
/// in the dependency list's order. This remains the *interchange* form
/// (public APIs, serialization); storage and comparison use the packed
/// form.
pub type VoteKey = Vec<AttrValue>;

/// A borrowed group key in either representation.
#[derive(Debug, Clone, Copy)]
pub enum KeyRef<'a> {
    /// Bit-packed key (or prefix-masked packed key).
    Packed(u128),
    /// Unpacked key for layouts wider than 128 bits.
    Wide(&'a [u16]),
}

/// Group storage: packed keys under the fast integer hasher while
/// accumulating, sorted packed keys once frozen, or boxed unpacked keys
/// when the layout does not fit a `u128`.
#[derive(Debug, Clone)]
enum GroupStore {
    Packed(HashMap<u128, FreqTable, FastHash>),
    /// Frozen form: sorted by packed key, so lookups binary-search and
    /// prefix groups are contiguous runs (see the module docs).
    PackedSorted(Vec<(u128, FreqTable)>),
    Wide(HashMap<Box<[u16]>, FreqTable>),
}

/// The error returned when an observation's key representation does not
/// match the table's storage (packed key into wide tables or vice versa).
/// Within one fitted model the codec decides the representation up front,
/// so mixing is a caller bug — but a *deserialized* model can legitimately
/// disagree with a probe built against a different codec (e.g. a layout
/// change between fit and probe), so the mismatch must not panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyShapeMismatch {
    /// Whether the tables store wide keys.
    pub tables_wide: bool,
}

impl std::fmt::Display for KeyShapeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (tables, key) = if self.tables_wide {
            ("wide", "packed")
        } else {
            ("packed", "wide")
        };
        write!(
            f,
            "vote-key representation mismatch: {key} key into {tables} tables"
        )
    }
}

impl std::error::Error for KeyShapeMismatch {}

/// The error returned when deserialized `(key, table)` pairs do not fit
/// the declared key layout. Fitted tables can only produce in-range keys
/// of the layout's exact width, so any of these means the wire bytes were
/// corrupted (or hand-edited) — the load must fail with a typed error
/// rather than panic in `pack` or silently merge colliding groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoteWireError {
    /// A group key's length differs from the layout's position count.
    KeyLength { expected: usize, got: usize },
    /// A key level is outside the position's recorded range `0..card`
    /// (the sentinel `card` is reserved for probes, never recorded).
    LevelOutOfRange {
        position: usize,
        level: u16,
        card: u16,
    },
    /// Two groups share the same key.
    DuplicateKey,
}

impl std::fmt::Display for VoteWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            VoteWireError::KeyLength { expected, got } => {
                write!(
                    f,
                    "vote group key has {got} positions, layout has {expected}"
                )
            }
            VoteWireError::LevelOutOfRange {
                position,
                level,
                card,
            } => write!(
                f,
                "vote group key level {level} at position {position} exceeds cardinality {card}"
            ),
            VoteWireError::DuplicateKey => write!(f, "duplicate vote group key"),
        }
    }
}

impl std::error::Error for VoteWireError {}

impl GroupStore {
    fn get(&self, key: KeyRef<'_>) -> Option<&FreqTable> {
        match (self, key) {
            (GroupStore::Packed(map), KeyRef::Packed(k)) => map.get(&k),
            (GroupStore::PackedSorted(groups), KeyRef::Packed(k)) => groups
                .binary_search_by_key(&k, |&(gk, _)| gk)
                .ok()
                .map(|i| &groups[i].1),
            (GroupStore::Wide(map), KeyRef::Wide(k)) => map.get(k),
            // A probe in the wrong representation can reach here through a
            // deserialized model whose key layout changed between fit and
            // probe. No group can match such a key, so the right answer is
            // "no group" — the recommendation chain then degrades to the
            // scope-wide fallbacks instead of panicking.
            _ => None,
        }
    }

    /// The packed groups as a canonical sorted list, for
    /// representation-independent equality. `None` for wide stores.
    fn sorted_packed(&self) -> Option<Vec<(u128, &FreqTable)>> {
        match self {
            GroupStore::Packed(map) => {
                let mut v: Vec<(u128, &FreqTable)> = map.iter().map(|(&k, t)| (k, t)).collect();
                v.sort_unstable_by_key(|&(k, _)| k);
                Some(v)
            }
            GroupStore::PackedSorted(groups) => Some(groups.iter().map(|(k, t)| (*k, t)).collect()),
            GroupStore::Wide(_) => None,
        }
    }
}

impl PartialEq for GroupStore {
    /// Representation-independent: an accumulating map and its frozen
    /// sorted form holding the same groups are equal. Packed and wide
    /// stores are never equal (their keys are not comparable without a
    /// codec).
    fn eq(&self, other: &Self) -> bool {
        match (self.sorted_packed(), other.sorted_packed()) {
            (Some(a), Some(b)) => a == b,
            (None, None) => {
                let (GroupStore::Wide(a), GroupStore::Wide(b)) = (self, other) else {
                    unreachable!("only wide stores lack a packed form")
                };
                a == b
            }
            _ => false,
        }
    }
}

impl Eq for GroupStore {}

/// Per-parameter vote tables: one frequency table per dependent-attribute
/// combination, plus the scope-wide distribution for fallback and
/// diagnostics.
///
/// Serialization happens at the model level (see `cf::model_serde`), which
/// owns the key layout needed to unpack group keys into the stable
/// sorted-pairs wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteTables {
    groups: GroupStore,
    overall: FreqTable,
}

impl Default for VoteTables {
    fn default() -> Self {
        Self::new()
    }
}

impl VoteTables {
    /// An empty table set with packed keys.
    pub fn new() -> Self {
        Self {
            groups: GroupStore::Packed(HashMap::default()),
            overall: FreqTable::new(),
        }
    }

    /// An empty table set with wide (unpacked) keys, for layouts that do
    /// not fit a `u128`.
    pub fn new_wide() -> Self {
        Self {
            groups: GroupStore::Wide(HashMap::new()),
            overall: FreqTable::new(),
        }
    }

    /// Whether this table set stores wide keys.
    pub fn is_wide(&self) -> bool {
        matches!(self.groups, GroupStore::Wide(_))
    }

    /// Records one observation of `value` under a packed `key`. Fails
    /// without mutating anything if the tables store wide keys. A frozen
    /// table accepts the observation through a sorted insert — O(n) worst
    /// case, correct but meant for incremental trickles, not bulk fits.
    #[inline]
    pub fn add_packed(&mut self, key: u128, value: ValueIdx) -> Result<(), KeyShapeMismatch> {
        match &mut self.groups {
            GroupStore::Packed(map) => map.entry(key).or_default().add(value),
            GroupStore::PackedSorted(groups) => {
                match groups.binary_search_by_key(&key, |&(gk, _)| gk) {
                    Ok(i) => groups[i].1.add(value),
                    Err(i) => {
                        let mut t = FreqTable::new();
                        t.add(value);
                        groups.insert(i, (key, t));
                    }
                }
            }
            GroupStore::Wide(_) => return Err(KeyShapeMismatch { tables_wide: true }),
        }
        self.overall.add(value);
        Ok(())
    }

    /// Records `count` observations of `value` under a packed `key` — the
    /// bulk form of [`VoteTables::add_packed`], built on the saturating
    /// [`FreqTable::add_count`] so a long-running incremental service can
    /// never overflow a counter. Returns `true` when any count clamped at
    /// its maximum (the `cf.delta.count_saturated` signal). Fails without
    /// mutating anything on wide stores.
    pub fn add_packed_count(
        &mut self,
        key: u128,
        value: ValueIdx,
        count: usize,
    ) -> Result<bool, KeyShapeMismatch> {
        if count == 0 {
            return Ok(false);
        }
        let mut saturated = match &mut self.groups {
            GroupStore::Packed(map) => map.entry(key).or_default().add_count(value, count),
            GroupStore::PackedSorted(groups) => {
                match groups.binary_search_by_key(&key, |&(gk, _)| gk) {
                    Ok(i) => groups[i].1.add_count(value, count),
                    Err(i) => {
                        let mut t = FreqTable::new();
                        let s = t.add_count(value, count);
                        groups.insert(i, (key, t));
                        s
                    }
                }
            }
            GroupStore::Wide(_) => return Err(KeyShapeMismatch { tables_wide: true }),
        };
        saturated |= self.overall.add_count(value, count);
        Ok(saturated)
    }

    /// Converts an accumulating packed map into the frozen sorted form
    /// (see the module docs). Idempotent; a no-op on wide stores, whose
    /// prefix queries scan instead.
    pub fn freeze(&mut self) {
        if let GroupStore::Packed(map) = &mut self.groups {
            let mut groups: Vec<(u128, FreqTable)> = std::mem::take(map).into_iter().collect();
            groups.sort_unstable_by_key(|&(k, _)| k);
            self.groups = GroupStore::PackedSorted(groups);
        }
    }

    /// Converts the frozen sorted form back into the accumulating map —
    /// the inverse of [`VoteTables::freeze`], used by the incremental
    /// refit to batch-patch a fitted parameter at O(1) per observation
    /// instead of O(n) sorted inserts. Idempotent; a no-op on wide
    /// stores.
    pub fn thaw(&mut self) {
        if let GroupStore::PackedSorted(groups) = &mut self.groups {
            let map: HashMap<u128, FreqTable, FastHash> =
                std::mem::take(groups).into_iter().collect();
            self.groups = GroupStore::Packed(map);
        }
    }

    /// Removes one observation of `value` under a packed `key` — the
    /// inverse of [`VoteTables::add_packed`]. The group table and the
    /// scope-wide table shrink in lockstep, and a group whose last
    /// observation leaves is excised entirely so no empty table lingers
    /// in the sorted run (a stale empty group used to make
    /// [`VoteTables::prefix_aggregate`] report a hit for a prefix with no
    /// remaining observations). Fails without side effects on wide
    /// stores.
    ///
    /// # Panics
    /// Panics if no observation of `value` under `key` remains — removing
    /// something never recorded is always a caller logic error, matching
    /// [`FreqTable::remove`].
    pub fn remove_packed(&mut self, key: u128, value: ValueIdx) -> Result<(), KeyShapeMismatch> {
        match &mut self.groups {
            GroupStore::Packed(map) => {
                let t = map
                    .get_mut(&key)
                    .unwrap_or_else(|| panic!("removing from vote group {key:#x} never observed"));
                t.remove(value);
                if t.total() == 0 {
                    map.remove(&key);
                }
            }
            GroupStore::PackedSorted(groups) => {
                let i = groups
                    .binary_search_by_key(&key, |&(gk, _)| gk)
                    .unwrap_or_else(|_| panic!("removing from vote group {key:#x} never observed"));
                groups[i].1.remove(value);
                if groups[i].1.total() == 0 {
                    groups.remove(i);
                }
            }
            GroupStore::Wide(_) => return Err(KeyShapeMismatch { tables_wide: true }),
        }
        self.overall.remove(value);
        Ok(())
    }

    /// Records one observation of `value` under a wide `key`. Fails
    /// without mutating anything if the tables store packed keys.
    pub fn add_wide(&mut self, key: &[u16], value: ValueIdx) -> Result<(), KeyShapeMismatch> {
        match &mut self.groups {
            GroupStore::Wide(map) => {
                if let Some(t) = map.get_mut(key) {
                    t.add(value);
                } else {
                    let mut t = FreqTable::new();
                    t.add(value);
                    map.insert(key.into(), t);
                }
            }
            GroupStore::Packed(_) | GroupStore::PackedSorted(_) => {
                return Err(KeyShapeMismatch { tables_wide: false })
            }
        }
        self.overall.add(value);
        Ok(())
    }

    /// Number of distinct groups.
    pub fn n_groups(&self) -> usize {
        match &self.groups {
            GroupStore::Packed(map) => map.len(),
            GroupStore::PackedSorted(groups) => groups.len(),
            GroupStore::Wide(map) => map.len(),
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.overall.total()
    }

    /// The group table for `key`, if any target matched it.
    #[inline]
    pub fn group(&self, key: KeyRef<'_>) -> Option<&FreqTable> {
        self.groups.get(key)
    }

    /// The scope-wide value distribution.
    pub fn overall(&self) -> &FreqTable {
        &self.overall
    }

    /// Votes within `key`'s group at `threshold` support, leave-one-out
    /// excluding one observation of `exclude` (the probe carrier's own
    /// current value during evaluation; `None` for genuinely new
    /// carriers). Returns `(value, support, voters)`.
    #[inline]
    pub fn vote(
        &self,
        key: KeyRef<'_>,
        exclude: Option<ValueIdx>,
        threshold: f64,
    ) -> Option<(ValueIdx, usize, usize)> {
        self.groups
            .get(key)?
            .majority_with_support_excluding(exclude, threshold)
    }

    /// The group's plurality value (no threshold), leave-one-out — the
    /// "maximum support" answer when no value clears the confidence
    /// threshold.
    #[inline]
    pub fn group_majority(
        &self,
        key: KeyRef<'_>,
        exclude: Option<ValueIdx>,
    ) -> Option<(ValueIdx, usize, usize)> {
        self.groups
            .get(key)?
            .majority_with_support_excluding(exclude, 0.0)
    }

    /// Scope-wide majority (no threshold), leave-one-out — the last-resort
    /// data-driven fallback before the rule-book default.
    pub fn overall_majority(&self, exclude: Option<ValueIdx>) -> Option<ValueIdx> {
        self.overall
            .majority_with_support_excluding(exclude, 0.0)
            .map(|(v, _, _)| v)
    }

    /// The merged value distribution of `key`'s length-`l` prefix group —
    /// the union of every full-key group sharing that prefix, built on
    /// demand. `None` when no observation shares the prefix. `key` is the
    /// FULL key; only its first `l` positions are consulted.
    ///
    /// On the frozen sorted form this is a binary search for the
    /// contiguous run plus one merge over it; on the accumulating forms
    /// it degrades to a filtering scan (correct, used only off the fitted
    /// path). A representation-mismatched probe aggregates nothing, like
    /// [`VoteTables::group`].
    pub fn prefix_aggregate(
        &self,
        codec: &PackedKeyCodec,
        key: KeyRef<'_>,
        l: usize,
    ) -> Option<FreqTable> {
        let mut agg = FreqTable::new();
        let mut any = false;
        match (&self.groups, key) {
            (GroupStore::PackedSorted(groups), KeyRef::Packed(k)) => {
                let mask = codec.prefix_mask(l);
                let prefix = k & mask;
                // Monotone predicates: `gk & mask` is non-decreasing in
                // `gk` because the mask selects the top bits.
                let lo = groups.partition_point(|&(gk, _)| gk & mask < prefix);
                let hi = groups.partition_point(|&(gk, _)| gk & mask <= prefix);
                // Zero-total tables carry no observations: merging them
                // is a no-op, but counting them as a hit would turn an
                // emptied-out prefix into Some(empty) — a stale "group
                // exists" answer the backoff chain then trusts.
                for (_, t) in &groups[lo..hi] {
                    if t.total() == 0 {
                        continue;
                    }
                    agg.merge(t);
                    any = true;
                }
            }
            (GroupStore::Packed(map), KeyRef::Packed(k)) => {
                let mask = codec.prefix_mask(l);
                let prefix = k & mask;
                // Deterministic despite map iteration order: merging is
                // commutative and FreqTable is representation-independent.
                for (&gk, t) in map {
                    if gk & mask == prefix && t.total() > 0 {
                        agg.merge(t);
                        any = true;
                    }
                }
            }
            (GroupStore::Wide(map), KeyRef::Wide(k)) => {
                for (gk, t) in map {
                    if gk.get(..l) == k.get(..l) && t.total() > 0 {
                        agg.merge(t);
                        any = true;
                    }
                }
            }
            _ => {}
        }
        any.then_some(agg)
    }

    /// The groups as `(unpacked key, table)` pairs sorted by key — the
    /// stable wire format. `codec` must be the layout the keys were packed
    /// with; `len` is the key length.
    pub fn unpacked_groups(
        &self,
        codec: &PackedKeyCodec,
        len: usize,
    ) -> Vec<(VoteKey, &FreqTable)> {
        let mut pairs: Vec<(VoteKey, &FreqTable)> = match &self.groups {
            GroupStore::Packed(map) => map
                .iter()
                .map(|(&k, t)| (codec.unpack(k, len), t))
                .collect(),
            GroupStore::PackedSorted(groups) => groups
                .iter()
                .map(|(k, t)| (codec.unpack(*k, len), t))
                .collect(),
            GroupStore::Wide(map) => map.iter().map(|(k, t)| (k.to_vec(), t)).collect(),
        };
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs
    }

    /// The length-`l` prefix groups as `(unpacked prefix, merged table)`
    /// pairs sorted by key — what the wire format's per-level backoff
    /// tables serialize as, derived from the full-key groups so the bytes
    /// match the historically materialized per-level tables exactly.
    pub fn unpacked_prefix_groups(
        &self,
        codec: &PackedKeyCodec,
        full_len: usize,
        l: usize,
    ) -> Vec<(VoteKey, FreqTable)> {
        let mut out: Vec<(VoteKey, FreqTable)> = Vec::new();
        for (key, table) in self.unpacked_groups(codec, full_len) {
            let prefix = &key[..l];
            match out.last_mut() {
                Some((last, agg)) if last[..] == *prefix => {
                    agg.merge(table);
                }
                _ => {
                    let mut agg = FreqTable::new();
                    agg.merge(table);
                    out.push((prefix.to_vec(), agg));
                }
            }
        }
        out
    }

    /// Rebuilds a table set from `(unpacked key, table)` pairs under the
    /// given layout — the inverse of [`VoteTables::unpacked_groups`].
    ///
    /// Every key must have exactly `codec.n_positions()` levels, each in
    /// the recorded range `0..cards[i]`, and keys must be unique. These
    /// hold for anything `unpacked_groups` emitted; violating pairs can
    /// only come from a corrupted serialized model, and are rejected with
    /// a typed [`VoteWireError`] instead of panicking inside `pack`.
    pub fn from_unpacked_groups(
        codec: &PackedKeyCodec,
        pairs: Vec<(VoteKey, FreqTable)>,
        overall: FreqTable,
    ) -> Result<Self, VoteWireError> {
        let cards = codec.cards();
        for (k, _) in &pairs {
            if k.len() != cards.len() {
                return Err(VoteWireError::KeyLength {
                    expected: cards.len(),
                    got: k.len(),
                });
            }
            for (i, (&level, &card)) in k.iter().zip(cards).enumerate() {
                if level >= card {
                    return Err(VoteWireError::LevelOutOfRange {
                        position: i,
                        level,
                        card,
                    });
                }
            }
        }
        let groups = if codec.fits_u128() {
            let mut groups: Vec<(u128, FreqTable)> = pairs
                .into_iter()
                .map(|(k, t)| (codec.pack(&k), t))
                .collect();
            groups.sort_unstable_by_key(|&(k, _)| k);
            if groups.windows(2).any(|w| w[0].0 == w[1].0) {
                return Err(VoteWireError::DuplicateKey);
            }
            GroupStore::PackedSorted(groups)
        } else {
            let mut map = HashMap::with_capacity(pairs.len());
            for (k, t) in pairs {
                if map.insert(k.into_boxed_slice(), t).is_some() {
                    return Err(VoteWireError::DuplicateKey);
                }
            }
            GroupStore::Wide(map)
        };
        Ok(Self { groups, overall })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Packs through a two-attribute layout of cardinality 3 each.
    fn codec() -> PackedKeyCodec {
        PackedKeyCodec::new(&[3, 3])
    }

    fn tables() -> (PackedKeyCodec, VoteTables) {
        let codec = codec();
        let mut t = VoteTables::new();
        for _ in 0..8 {
            t.add_packed(codec.pack(&[0, 1]), 10).unwrap();
        }
        t.add_packed(codec.pack(&[0, 1]), 20).unwrap();
        for _ in 0..3 {
            t.add_packed(codec.pack(&[2, 2]), 30).unwrap();
        }
        (codec, t)
    }

    #[test]
    fn groups_are_keyed_exactly() {
        let (codec, t) = tables();
        assert_eq!(t.n_groups(), 2);
        assert_eq!(t.total(), 12);
        assert!(t.group(KeyRef::Packed(codec.pack(&[0, 1]))).is_some());
        assert!(
            t.group(KeyRef::Packed(codec.pack(&[1, 0]))).is_none(),
            "key order matters"
        );
    }

    #[test]
    fn vote_applies_threshold() {
        let (codec, t) = tables();
        let k = KeyRef::Packed(codec.pack(&[0, 1]));
        // 8/9 ≈ 89% support for 10.
        assert_eq!(t.vote(k, None, 0.75), Some((10, 8, 9)));
        assert_eq!(t.vote(k, None, 0.95), None);
        // Unknown key: no group to vote in (out-of-range levels collapse
        // to the sentinel, which is never recorded).
        let unknown = KeyRef::Packed(codec.pack(&[9, 9]));
        assert_eq!(t.vote(unknown, None, 0.5), None);
    }

    #[test]
    fn leave_one_out_changes_the_outcome_at_the_margin() {
        let codec = PackedKeyCodec::new(&[3]);
        let mut t = VoteTables::new();
        for _ in 0..3 {
            t.add_packed(codec.pack(&[1]), 5).unwrap();
        }
        t.add_packed(codec.pack(&[1]), 7).unwrap();
        let k = KeyRef::Packed(codec.pack(&[1]));
        // Probing the carrier that holds the 7: remaining 3×5 → 100%.
        assert_eq!(t.vote(k, Some(7), 0.75), Some((5, 3, 3)));
        // Probing a 5-holder: 2×5 + 1×7 → 2/3 < 75%.
        assert_eq!(t.vote(k, Some(5), 0.75), None);
    }

    #[test]
    fn overall_majority_fallback() {
        let (_, t) = tables();
        assert_eq!(t.overall_majority(None), Some(10));
        // Excluding doesn't flip a clear majority.
        assert_eq!(t.overall_majority(Some(10)), Some(10));
    }

    #[test]
    fn empty_key_group_is_the_whole_scope() {
        // With no dependent attributes, every observation lands in the
        // empty-key group — voting degenerates to a scope-wide majority
        // with threshold, which is the intended rule-book-like behavior.
        let codec = PackedKeyCodec::new(&[]);
        let mut t = VoteTables::new();
        for _ in 0..9 {
            t.add_packed(codec.pack(&[]), 4).unwrap();
        }
        t.add_packed(codec.pack(&[]), 6).unwrap();
        assert_eq!(
            t.vote(KeyRef::Packed(codec.pack(&[])), None, 0.75),
            Some((4, 9, 10))
        );
    }

    #[test]
    fn wide_tables_mirror_packed_semantics() {
        let mut t = VoteTables::new_wide();
        assert!(t.is_wide());
        for _ in 0..8 {
            t.add_wide(&[0, 1], 10).unwrap();
        }
        t.add_wide(&[0, 1], 20).unwrap();
        t.add_wide(&[2, 2], 30).unwrap();
        assert_eq!(t.n_groups(), 2);
        assert_eq!(t.vote(KeyRef::Wide(&[0, 1]), None, 0.75), Some((10, 8, 9)));
        assert_eq!(t.vote(KeyRef::Wide(&[9, 9]), None, 0.5), None);
        assert_eq!(
            t.group_majority(KeyRef::Wide(&[2, 2]), None),
            Some((30, 1, 1))
        );
    }

    #[test]
    fn unpack_round_trip_preserves_tables() {
        let (codec, t) = tables();
        let pairs: Vec<(VoteKey, FreqTable)> = t
            .unpacked_groups(&codec, 2)
            .into_iter()
            .map(|(k, table)| (k, table.clone()))
            .collect();
        assert_eq!(pairs[0].0, vec![0, 1], "pairs are sorted by unpacked key");
        let back = VoteTables::from_unpacked_groups(&codec, pairs, t.overall().clone()).unwrap();
        assert_eq!(back, t);
    }

    /// Corrupted wire pairs (wrong key width, out-of-range level, or
    /// duplicated key) must be rejected with a typed error, never packed.
    #[test]
    fn from_unpacked_groups_rejects_malformed_wire_pairs() {
        let codec = codec();
        let table = {
            let mut t = FreqTable::new();
            t.add(7);
            t
        };
        let overall = table.clone();
        assert_eq!(
            VoteTables::from_unpacked_groups(
                &codec,
                vec![(vec![0, 1, 2], table.clone())],
                overall.clone()
            ),
            Err(VoteWireError::KeyLength {
                expected: 2,
                got: 3
            })
        );
        assert_eq!(
            VoteTables::from_unpacked_groups(
                &codec,
                vec![(vec![0, 3], table.clone())],
                overall.clone()
            ),
            Err(VoteWireError::LevelOutOfRange {
                position: 1,
                level: 3,
                card: 3
            })
        );
        assert_eq!(
            VoteTables::from_unpacked_groups(
                &codec,
                vec![(vec![0, 1], table.clone()), (vec![0, 1], table)],
                overall
            ),
            Err(VoteWireError::DuplicateKey)
        );
    }

    /// Regression: probing packed tables with a wide key (or vice versa)
    /// used to hit `unreachable!`. It must instead behave like an unknown
    /// key so the recommendation chain can fall back.
    #[test]
    fn representation_mismatch_probe_is_a_miss_not_a_panic() {
        let (codec, packed) = tables();
        assert_eq!(packed.group(KeyRef::Wide(&[0, 1])), None);
        assert_eq!(packed.vote(KeyRef::Wide(&[0, 1]), None, 0.5), None);
        assert_eq!(packed.group_majority(KeyRef::Wide(&[0, 1]), None), None);

        let mut wide = VoteTables::new_wide();
        wide.add_wide(&[0, 1], 10).unwrap();
        let k = KeyRef::Packed(codec.pack(&[0, 1]));
        assert_eq!(wide.group(k), None);
        assert_eq!(wide.vote(k, None, 0.0), None);
        assert_eq!(wide.group_majority(k, None), None);
    }

    /// Regression: a mismatched add must fail cleanly and leave both the
    /// group store and the overall table untouched.
    #[test]
    fn representation_mismatch_add_is_an_error_without_side_effects() {
        let (codec, mut packed) = tables();
        let before = packed.clone();
        assert_eq!(
            packed.add_wide(&[0, 1], 10),
            Err(KeyShapeMismatch { tables_wide: false })
        );
        assert_eq!(packed, before, "failed add must not touch overall totals");

        let mut wide = VoteTables::new_wide();
        let err = wide.add_packed(codec.pack(&[0, 1]), 10).unwrap_err();
        assert_eq!(err, KeyShapeMismatch { tables_wide: true });
        assert_eq!(wide.total(), 0);
        assert_eq!(wide.n_groups(), 0);
        assert!(err.to_string().contains("representation mismatch"));
    }

    /// Freezing is a pure re-layout: every query surface — equality
    /// itself, group lookups, votes, prefix aggregation, the wire form —
    /// must answer identically before and after.
    #[test]
    fn freeze_preserves_every_query_surface() {
        let (codec, unfrozen) = tables();
        let mut frozen = unfrozen.clone();
        frozen.freeze();
        assert_eq!(frozen, unfrozen, "equality is representation-independent");
        assert_eq!(frozen.n_groups(), unfrozen.n_groups());
        assert_eq!(frozen.total(), unfrozen.total());
        for key in [[0u16, 1], [2, 2], [1, 0]] {
            let k = KeyRef::Packed(codec.pack(&key));
            assert_eq!(frozen.group(k), unfrozen.group(k), "group {key:?}");
            assert_eq!(frozen.vote(k, None, 0.75), unfrozen.vote(k, None, 0.75));
            for l in 0..=key.len() {
                assert_eq!(
                    frozen.prefix_aggregate(&codec, k, l),
                    unfrozen.prefix_aggregate(&codec, k, l),
                    "prefix_aggregate {key:?} at level {l}"
                );
            }
        }
        assert_eq!(
            frozen.unpacked_groups(&codec, 2),
            unfrozen.unpacked_groups(&codec, 2)
        );
        // Idempotent.
        let twice = {
            let mut t = frozen.clone();
            t.freeze();
            t
        };
        assert_eq!(twice, frozen);
    }

    /// Removing observations shrinks the group and the overall table in
    /// lockstep, excising groups whose last observation leaves — on both
    /// the accumulating and the frozen store.
    #[test]
    fn remove_packed_excises_empty_groups() {
        for freeze_first in [false, true] {
            let (codec, mut t) = tables();
            if freeze_first {
                t.freeze();
            }
            let k = codec.pack(&[2, 2]);
            for _ in 0..3 {
                t.remove_packed(k, 30).unwrap();
            }
            assert_eq!(t.n_groups(), 1, "emptied group must be excised");
            assert_eq!(t.total(), 9);
            assert_eq!(t.group(KeyRef::Packed(k)), None);
            // The emptied group's prefix no longer aggregates anything.
            let mut frozen = t.clone();
            frozen.freeze();
            assert_eq!(
                frozen.prefix_aggregate(&codec, KeyRef::Packed(k), 1),
                None,
                "removed-out prefix must be a miss, not a stale empty table"
            );
            // Add-after-remove lands in a fresh group.
            t.add_packed(k, 31).unwrap();
            assert_eq!(t.n_groups(), 2);
            assert_eq!(t.vote(KeyRef::Packed(k), None, 0.75), Some((31, 1, 1)));
        }
    }

    #[test]
    #[should_panic(expected = "never observed")]
    fn remove_packed_from_unknown_group_panics() {
        let (codec, mut t) = tables();
        t.remove_packed(codec.pack(&[1, 0]), 10).unwrap();
    }

    /// `remove_packed` against wide tables fails cleanly, like the
    /// mismatched adds.
    #[test]
    fn remove_packed_on_wide_tables_is_an_error_without_side_effects() {
        let mut wide = VoteTables::new_wide();
        wide.add_wide(&[0, 1], 10).unwrap();
        let before = wide.clone();
        assert_eq!(
            wide.remove_packed(7, 10),
            Err(KeyShapeMismatch { tables_wide: true })
        );
        assert_eq!(wide, before);
    }

    /// thaw is the exact inverse of freeze: a thaw/patch/freeze cycle
    /// equals patching the accumulating map directly.
    #[test]
    fn thaw_round_trips_and_supports_patching() {
        let (codec, mut t) = tables();
        t.freeze();
        let frozen = t.clone();
        t.thaw();
        assert_eq!(t, frozen, "thaw preserves contents");
        // Patch while thawed, then freeze: identical to a fresh fit of
        // the patched stream.
        t.remove_packed(codec.pack(&[0, 1]), 20).unwrap();
        t.add_packed(codec.pack(&[1, 1]), 40).unwrap();
        t.freeze();
        let mut fresh = VoteTables::new();
        for _ in 0..8 {
            fresh.add_packed(codec.pack(&[0, 1]), 10).unwrap();
        }
        for _ in 0..3 {
            fresh.add_packed(codec.pack(&[2, 2]), 30).unwrap();
        }
        fresh.add_packed(codec.pack(&[1, 1]), 40).unwrap();
        fresh.freeze();
        assert_eq!(t, fresh);
        // Idempotent on both ends.
        let mut twice = t.clone();
        twice.thaw();
        twice.thaw();
        twice.freeze();
        twice.freeze();
        assert_eq!(twice, t);
    }

    /// The bulk add equals `count` single adds on both store forms, and
    /// reports saturation instead of overflowing.
    #[test]
    fn add_packed_count_matches_repeated_adds_and_saturates() {
        for freeze_first in [false, true] {
            let (codec, mut bulk) = tables();
            let (_, mut single) = tables();
            if freeze_first {
                bulk.freeze();
                single.freeze();
            }
            let k = codec.pack(&[1, 2]);
            assert!(!bulk.add_packed_count(k, 12, 4).unwrap());
            for _ in 0..4 {
                single.add_packed(k, 12).unwrap();
            }
            bulk.freeze();
            single.freeze();
            assert_eq!(bulk, single);
            // Zero count is a no-op.
            let before = bulk.clone();
            assert!(!bulk.add_packed_count(k, 12, 0).unwrap());
            assert_eq!(bulk, before);
            // A count that would push past usize::MAX clamps and reports.
            assert!(bulk.add_packed_count(k, 12, usize::MAX).unwrap());
            assert_eq!(bulk.total(), usize::MAX);
            assert_eq!(bulk.overall().count(12), usize::MAX);
        }
        // Wide stores reject the packed bulk form without side effects.
        let mut wide = VoteTables::new_wide();
        wide.add_wide(&[0, 1], 10).unwrap();
        let before = wide.clone();
        assert_eq!(
            wide.add_packed_count(7, 10, 2),
            Err(KeyShapeMismatch { tables_wide: true })
        );
        assert_eq!(wide, before);
    }

    /// A prefix run holding a single group aggregates to exactly that
    /// group's table — identity, not a distorted merge.
    #[test]
    fn singleton_run_prefix_is_identity() {
        let (codec, mut t) = tables();
        t.freeze();
        let k = KeyRef::Packed(codec.pack(&[2, 2]));
        let agg = t.prefix_aggregate(&codec, k, 1).expect("run exists");
        assert_eq!(&agg, t.group(k).unwrap());
    }

    /// The full-length "prefix" is the group itself, and level 0 merges
    /// everything into the overall distribution.
    #[test]
    fn prefix_aggregate_degenerate_levels() {
        let (codec, mut t) = tables();
        t.freeze();
        let k = KeyRef::Packed(codec.pack(&[0, 1]));
        assert_eq!(t.prefix_aggregate(&codec, k, 2).as_ref(), t.group(k));
        assert_eq!(t.prefix_aggregate(&codec, k, 0).as_ref(), Some(t.overall()));
        // A prefix nothing was recorded under aggregates nothing.
        let miss = KeyRef::Packed(codec.pack(&[1, 0]));
        assert_eq!(t.prefix_aggregate(&codec, miss, 1), None);
    }

    mod packed_wide_differential {
        //! Differential proptest suite: on any random key stream, packed
        //! and wide tables must agree on every query surface and on the
        //! sorted unpacked wire form.
        use super::*;
        use proptest::prelude::*;

        /// Mixed-radix decomposition of `raw` into an in-range key under
        /// `cards` — the vendored proptest has no `prop_flat_map`, so the
        /// layout-dependent key is derived from a free integer instead.
        fn key_from_raw(cards: &[u16], raw: u64) -> Vec<u16> {
            let mut rest = raw;
            cards
                .iter()
                .map(|&c| {
                    let digit = (rest % c as u64) as u16;
                    rest /= c as u64;
                    digit
                })
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn packed_and_wide_tables_agree(
                cards in collection::vec(2u16..6, 1..4),
                raw_stream in collection::vec((0u64..1_000_000, 0u16..5), 1..40),
            ) {
                let codec = PackedKeyCodec::new(&cards);
                prop_assert!(codec.fits_u128());
                let stream: Vec<(Vec<u16>, ValueIdx)> = raw_stream
                    .iter()
                    .map(|&(raw, v)| (key_from_raw(&cards, raw), v))
                    .collect();
                let mut packed = VoteTables::new();
                let mut wide = VoteTables::new_wide();
                for (key, value) in &stream {
                    packed.add_packed(codec.pack(key), *value).unwrap();
                    wide.add_wide(key, *value).unwrap();
                }
                prop_assert_eq!(packed.n_groups(), wide.n_groups());
                prop_assert_eq!(packed.total(), wide.total());

                // Every observed key agrees across thresholds and
                // leave-one-out exclusions. Excluding a value absent from
                // the table is a contract violation (it panics), so each
                // probe only excludes values actually recorded in that
                // key's group.
                for (key, value) in &stream {
                    let pk = KeyRef::Packed(codec.pack(key));
                    let wk = KeyRef::Wide(key);
                    for exclude in [None, Some(*value)] {
                        for threshold in [0.0, 0.5, 0.75, 1.0] {
                            prop_assert_eq!(
                                packed.vote(pk, exclude, threshold),
                                wide.vote(wk, exclude, threshold),
                                "vote key={:?} exclude={:?} threshold={}",
                                key, exclude, threshold
                            );
                        }
                        prop_assert_eq!(
                            packed.group_majority(pk, exclude),
                            wide.group_majority(wk, exclude)
                        );
                        prop_assert_eq!(
                            packed.overall_majority(exclude),
                            wide.overall_majority(exclude)
                        );
                    }
                }

                // Identical wire form: same sorted keys, same tables.
                let len = cards.len();
                let pw = packed.unpacked_groups(&codec, len);
                let ww = wide.unpacked_groups(&codec, len);
                prop_assert_eq!(pw, ww);
            }

            /// On-demand prefix aggregation over the frozen sorted store
            /// must equal per-level tables built eagerly from the same
            /// stream — the storage scheme the fitted path replaced.
            #[test]
            fn prefix_aggregate_matches_eagerly_built_level_tables(
                cards in collection::vec(2u16..6, 1..4),
                raw_stream in collection::vec((0u64..1_000_000, 0u16..5), 1..40),
            ) {
                let codec = PackedKeyCodec::new(&cards);
                let n = cards.len();
                let mut full = VoteTables::new();
                let mut eager: Vec<VoteTables> =
                    (0..=n).map(|_| VoteTables::new()).collect();
                for &(raw, value) in &raw_stream {
                    let key = key_from_raw(&cards, raw);
                    let k = codec.pack(&key);
                    full.add_packed(k, value).unwrap();
                    for (l, t) in eager.iter_mut().enumerate() {
                        t.add_packed(codec.prefix(k, l), value).unwrap();
                    }
                }
                full.freeze();
                for &(raw, _) in &raw_stream {
                    let key = key_from_raw(&cards, raw);
                    let k = codec.pack(&key);
                    for (l, level) in eager.iter().enumerate() {
                        let agg = full
                            .prefix_aggregate(&codec, KeyRef::Packed(k), l)
                            .expect("observed key: every prefix level is populated");
                        let table = level
                            .group(KeyRef::Packed(codec.prefix(k, l)))
                            .expect("eager level table holds the prefix");
                        prop_assert_eq!(
                            &agg, table,
                            "level {} of key {:?} diverges", l, key
                        );
                    }
                }
                // An unobserved prefix aggregates nothing at any level it
                // is genuinely absent from.
                for (l, level) in eager.iter().enumerate() {
                    for probe in 0..50u64 {
                        let key = key_from_raw(&cards, probe);
                        let k = codec.pack(&key);
                        let eager_hit =
                            level.group(KeyRef::Packed(codec.prefix(k, l))).cloned();
                        let agg = full.prefix_aggregate(&codec, KeyRef::Packed(k), l);
                        prop_assert_eq!(agg, eager_hit, "probe {:?} level {}", key, l);
                    }
                }
            }

            /// Interleaved add/remove deltas against the frozen store
            /// must keep every prefix level in agreement with eagerly
            /// maintained per-level tables — including prefixes whose
            /// last observation was removed (they must turn into misses,
            /// not stale empty tables).
            #[test]
            fn prefix_aggregate_matches_eager_under_interleaved_deltas(
                cards in collection::vec(2u16..6, 1..4),
                ops in collection::vec((0u64..1_000_000, 0u16..5, 0u8..3), 1..60),
            ) {
                let codec = PackedKeyCodec::new(&cards);
                let n = cards.len();
                let mut full = VoteTables::new();
                full.freeze(); // exercise the frozen add/remove path
                let mut eager: Vec<VoteTables> =
                    (0..=n).map(|_| VoteTables::new()).collect();
                // Live observations, so removes always target something
                // actually recorded.
                let mut live: Vec<(u128, u16)> = Vec::new();
                for &(raw, value, op) in &ops {
                    let is_remove = op == 0 && !live.is_empty();
                    if is_remove {
                        let (k, v) = live.swap_remove(raw as usize % live.len());
                        full.remove_packed(k, v).unwrap();
                        for (l, t) in eager.iter_mut().enumerate() {
                            t.remove_packed(codec.prefix(k, l), v).unwrap();
                        }
                    } else {
                        let k = codec.pack(&key_from_raw(&cards, raw));
                        full.add_packed(k, value).unwrap();
                        for (l, t) in eager.iter_mut().enumerate() {
                            t.add_packed(codec.prefix(k, l), value).unwrap();
                        }
                        live.push((k, value));
                    }
                }
                prop_assert_eq!(full.total(), live.len());
                // Probe both observed keys and arbitrary ones.
                let probes: Vec<u128> = live
                    .iter()
                    .map(|&(k, _)| k)
                    .chain((0..40).map(|raw| codec.pack(&key_from_raw(&cards, raw))))
                    .collect();
                for k in probes {
                    for (l, level) in eager.iter().enumerate() {
                        let agg = full.prefix_aggregate(&codec, KeyRef::Packed(k), l);
                        let eager_hit =
                            level.group(KeyRef::Packed(codec.prefix(k, l))).cloned();
                        prop_assert_eq!(
                            agg, eager_hit,
                            "key {:#x} level {} diverges after deltas", k, l
                        );
                    }
                }
            }
        }
    }
}
